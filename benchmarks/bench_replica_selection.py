"""Ablation: clairvoyant EFT vs observable replica-selection policies.

The paper's EFT needs exact service times (clairvoyance).  Real stores
use observable signals — least-outstanding-requests, or C3-style
queue/latency scoring (refs [29, 30] of the paper).  This bench
quantifies the clairvoyance gap across service-time distributions,
including the heavy-tailed one where tail latency actually bites.
"""

import numpy as np
import pytest

from repro.core import RandomAssign, eft_schedule
from repro.core.nonclairvoyant import C3Like, LeastOutstanding
from repro.experiments.common import TextTable
from repro.simulation import WorkloadSpec, generate_workload, shuffled_case


@pytest.mark.ablation
def test_replica_selection_policies(run_once, scale):
    m, k = 15, 3
    n = 6000 if scale == "full" else 2500
    pop = shuffled_case(m, 1.0, rng=3)

    def campaign():
        table = TextTable(
            title=f"Replica selection under 40% load (m={m}, k={k}, shuffled s=1)",
            headers=["size dist", "EFT-Min (clairvoyant)", "LOR", "C3-like", "Random"],
        )
        for dist in ("unit", "exp", "pareto"):
            rows = {"eft": [], "lor": [], "c3": [], "rand": []}
            for rep in range(3):
                spec = WorkloadSpec(
                    m=m, n=n, lam=0.4 * m, k=k, strategy="overlapping", size_dist=dist
                )
                inst = generate_workload(spec, rng=rep, popularity=pop)
                rows["eft"].append(eft_schedule(inst, tiebreak="min").max_flow)
                rows["lor"].append(LeastOutstanding(m).run(inst).max_flow)
                rows["c3"].append(C3Like(m).run(inst).max_flow)
                rows["rand"].append(RandomAssign(m, rng=rep).run(inst).max_flow)
            table.add_row(
                dist,
                float(np.median(rows["eft"])),
                float(np.median(rows["lor"])),
                float(np.median(rows["c3"])),
                float(np.median(rows["rand"])),
            )
        return table

    table = run_once(campaign)
    print()
    print(table.to_text())
    for row in table.rows:
        dist, eft, lor, c3, rand = row
        # the clairvoyant baseline should never be (much) worse than the
        # observable policies, and load-aware policies beat random
        assert eft <= min(lor, c3) * 1.5 + 1
        assert min(lor, c3) <= rand * 1.5 + 1
