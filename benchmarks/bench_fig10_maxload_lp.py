"""Figure 10 — max-load LP sweep over (s, k) for both strategies.

``quick``: 11x8 grid, 25 permutations (~paper shapes, seconds).
``full``: the paper's 21x15 grid with 100 permutations.
"""

import numpy as np
import pytest

from repro.experiments import fig10


@pytest.mark.paper
def test_fig10_maxload_sweep(run_once, scale):
    if scale == "full":
        kwargs = dict(m=15, n_permutations=100)  # paper grid by default
    else:
        kwargs = dict(
            m=15,
            s_values=np.arange(0.0, 5.01, 0.5),
            k_values=np.array([1, 2, 3, 4, 6, 8, 11, 15]),
            n_permutations=25,
        )
    result = run_once(fig10.run, **kwargs)
    print()
    print(result.to_text())
    ratio = result.sweep.ratio()
    # Paper shapes: overlapping never worse; equal at s=0 and k=m;
    # peak gain ~1.5 somewhere in the mid-k, s~1-1.5 region.
    assert np.all(ratio >= 1 - 1e-9)
    assert np.allclose(ratio[0], 1.0)
    assert np.allclose(ratio[:, -1], 1.0)
    assert 1.35 < result.peak_gain < 1.75
    assert 3 <= result.peak_at[1] <= 9
