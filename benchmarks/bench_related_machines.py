"""Table 1 context bench: Greedy vs Slow-Fit on related machines.

Table 1 cites Greedy (≥ Ω(log m)) and Slow-Fit (≥ Ω(m)) for max-flow
on related machines — complementary failure modes that motivate
Double-Fit.  This bench makes the environment runnable: a two-tier
cluster serving a bursty stream with occasional huge tasks, where
Greedy clogs the fast machines with small work while Slow-Fit keeps
them free (and pays elsewhere).
"""

import numpy as np
import pytest

from repro.core import Instance
from repro.experiments.common import TextTable
from repro.related import GreedyRelated, SlowFitRelated, SpeedCluster


def _bursty_instance(m: int, n: int, rng_seed: int) -> Instance:
    rng = np.random.default_rng(rng_seed)
    releases = np.sort(rng.uniform(0, n / (2 * m), size=n))
    works = rng.uniform(0.5, 1.5, size=n)
    big = rng.choice(n, size=max(1, n // 20), replace=False)
    works[big] = rng.uniform(10, 20, size=big.size)
    return Instance.build(m, releases=releases, procs=works)


@pytest.mark.ablation
def test_greedy_vs_slowfit(run_once):
    m, n = 8, 400
    cluster = SpeedCluster.two_tier(m, fast=2, speedup=8.0)

    def campaign():
        table = TextTable(
            title=f"Related machines (Q): Greedy vs Slow-Fit, two-tier cluster m={m}",
            headers=["algorithm", "median Fmax", "mean flow", "doublings"],
        )
        for name, factory in (
            ("Greedy", lambda: GreedyRelated(cluster)),
            ("Slow-Fit", lambda: SlowFitRelated(cluster)),
        ):
            fmaxes, means, doublings = [], [], []
            for seed in range(5):
                sched = None
                scheduler = factory()
                sched = scheduler.run(_bursty_instance(m, n, seed))
                fmaxes.append(sched.max_flow)
                means.append(sched.mean_flow)
                doublings.append(getattr(scheduler, "doublings", 0))
            table.add_row(
                name,
                float(np.median(fmaxes)),
                float(np.mean(means)),
                int(np.median(doublings)),
            )
        return table

    table = run_once(campaign)
    print()
    print(table.to_text())
    assert len(table.rows) == 2
    assert all(row[1] > 0 for row in table.rows)
