"""Failure-injection ablation: replication strategy vs machine outage.

Injects a machine outage (drain-then-reboot maintenance window) into a
moderate-load workload and measures the tail-latency damage under each
replication strategy.  Overlapping replication spreads the failed
machine's load over neighbours in *different* groups; the disjoint
strategy confines it to the victim's own group, which saturates —
another practical argument for the ring scheme beyond Figure 10.
"""

import numpy as np
import pytest

from repro.core import eft_schedule
from repro.experiments.common import TextTable
from repro.simulation import WorkloadSpec, generate_workload, inject_outage, uniform_case


@pytest.mark.ablation
def test_outage_resilience(run_once, scale):
    m, k = 15, 3
    n = 8000 if scale == "full" else 3000
    pop = uniform_case(m)
    outage_len = 60.0

    def campaign():
        table = TextTable(
            title=f"Outage resilience at 60% load (m={m}, k={k}, {outage_len:g}-unit outage)",
            headers=["strategy", "baseline Fmax", "Fmax with outage", "degradation"],
        )
        for strategy in ("overlapping", "disjoint"):
            base_vals, out_vals = [], []
            for rep in range(3):
                spec = WorkloadSpec(m=m, n=n, lam=0.6 * m, k=k, strategy=strategy)
                inst = generate_workload(spec, rng=rep, popularity=pop)
                base_vals.append(eft_schedule(inst, tiebreak="min").max_flow)
                hurt = inject_outage(inst, machine=5, start=10.0, duration=outage_len)
                outage_tid = max(t.tid for t in hurt)
                sched = eft_schedule(hurt, tiebreak="min")
                # tail latency of the *requests* — the maintenance task
                # itself does not count
                out_vals.append(
                    max(a.flow for a in sched if a.task.tid != outage_tid)
                )
            base = float(np.median(base_vals))
            out = float(np.median(out_vals))
            table.add_row(strategy, base, out, round(out / base, 2))
        return table

    table = run_once(campaign)
    print()
    print(table.to_text())
    by_name = {row[0]: row for row in table.rows}
    # outages always hurt...
    for row in table.rows:
        assert row[2] >= row[1] - 1e-9
    # ...and the ring absorbs them better than the partition
    assert by_name["overlapping"][2] <= by_name["disjoint"][2] + 1e-9
