"""Table 1 — context table of known max-flow results.

Renders the registry with closed forms evaluated at the paper's
reference cluster size (m = 15) and checks internal consistency.
"""

import pytest

from repro.experiments import table1


@pytest.mark.paper
def test_table1_render(benchmark):
    table = benchmark(table1.run, 15)
    print()
    print(table.to_text())
    assert len(table.rows) >= 10
