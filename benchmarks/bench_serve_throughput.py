"""Serving-layer ablation — sustained loopback throughput vs offered load.

Runs the full serving stack (frontend, protocol, dispatcher, workers)
over an in-process unix-socket loopback at 70%, 90% and 100% offered
load and reports the achieved request rate, tail flow and shed
fraction per point.  Every run must uphold the no-drops invariant:
each submitted request is acknowledged, and none is lost to a bug.
"""

import pytest

from repro.serve import ServeConfig, build_drive_instance, percentile, run_loopback_sync

M = 4
PROC = 0.004  # virtual units == wall seconds at time_scale=1


def _point(load: float, n: int):
    """One loopback run at the given offered load (load = rate*proc/m)."""
    rate = load * M / PROC
    instance = build_drive_instance(
        source="spec", m=M, n=n, rate=rate, k=2, proc=PROC, seed=2026
    )
    config = ServeConfig(m=M, scheduler="eft-min")
    report = run_loopback_sync(instance, config, target_rate=rate)
    return rate, report


@pytest.mark.ablation
def test_serve_throughput_under_load(run_once, scale):
    n = 1200 if scale == "full" else 300
    loads = [0.7, 0.9, 1.0]

    def sweep():
        return [(load,) + _point(load, n) for load in loads]

    rows = run_once(sweep)
    print()
    print(f"loopback serving throughput (m={M}, proc={PROC:g}, n={n} per point)")
    print(f"{'load':>6} {'target rps':>12} {'achieved rps':>13} "
          f"{'p99 est flow':>13} {'shed %':>8}")
    for load, rate, report in rows:
        shed_pct = 100.0 * report.n_shed / report.n_sent if report.n_sent else 0.0
        print(
            f"{load:>6.0%} {rate:>12.0f} {report.achieved_rate:>13.1f} "
            f"{percentile(report.est_flows, 0.99):>13.6g} {shed_pct:>8.2f}"
        )
    for load, rate, report in rows:
        assert report.n_errors == 0, f"load {load:.0%}: requests dropped by a bug"
        assert report.n_acked == report.n_sent == n
        assert report.server_stats["completed"] == report.n_dispatched
    # Higher offered load must not lower the achieved request rate
    # much: the driver is open-loop, so pacing tracks the target.
    achieved = [report.achieved_rate for _, _, report in rows]
    assert achieved == sorted(achieved), "achieved rate should grow with offered load"
