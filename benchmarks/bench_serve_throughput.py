"""Serving-layer ablation — sustained loopback throughput vs offered load.

Runs the full serving stack (frontend, protocol, dispatcher, workers)
over an in-process unix-socket loopback at 70%, 90% and 100% offered
load and reports the achieved request rate, tail flow and shed
fraction per point.  Every run must uphold the no-drops invariant:
each submitted request is acknowledged, and none is lost to a bug.

The sharded variant drives the same disjoint workload against 1 and 4
dispatcher shards (one server process per shard, client-side plan
routing) and must show higher fleet throughput at 4 shards while
keeping the assignment digest byte-identical — Theorem 6's composition
means sharding buys capacity without changing a single decision.

Both benchmarks append their rows to ``BENCH_serve.json`` at the repo
root (machine-readable mirror of the printed tables).
"""

import json
import math
from pathlib import Path

import pytest

from repro.serve import (
    ServeConfig,
    build_drive_instance,
    percentile,
    plan_for_instance,
    run_loopback_sync,
    run_sharded_loopback_sync,
)

M = 4
PROC = 0.004  # virtual units == wall seconds at time_scale=1

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _p99(flows):
    return percentile(flows, 0.99) if flows else math.nan


def _write_bench_json(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` into BENCH_serve.json."""
    data = {}
    if BENCH_JSON.is_file():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _point(load: float, n: int):
    """One loopback run at the given offered load (load = rate*proc/m)."""
    rate = load * M / PROC
    instance = build_drive_instance(
        source="spec", m=M, n=n, rate=rate, k=2, proc=PROC, seed=2026
    )
    config = ServeConfig(m=M, scheduler="eft-min")
    report = run_loopback_sync(instance, config, target_rate=rate)
    return rate, report


@pytest.mark.ablation
def test_serve_throughput_under_load(run_once, scale):
    n = 1200 if scale == "full" else 300
    loads = [0.7, 0.9, 1.0]

    def sweep():
        return [(load,) + _point(load, n) for load in loads]

    rows = run_once(sweep)
    print()
    print(f"loopback serving throughput (m={M}, proc={PROC:g}, n={n} per point)")
    print(f"{'load':>6} {'target rps':>12} {'achieved rps':>13} "
          f"{'p99 est flow':>13} {'shed %':>8}")
    points = []
    for load, rate, report in rows:
        shed_pct = 100.0 * report.n_shed / report.n_sent if report.n_sent else 0.0
        print(
            f"{load:>6.0%} {rate:>12.0f} {report.achieved_rate:>13.1f} "
            f"{_p99(report.est_flows):>13.6g} {shed_pct:>8.2f}"
        )
        points.append(
            {
                "load": load,
                "target_rps": rate,
                "achieved_rps": report.achieved_rate,
                "p99_est_flow": _p99(report.est_flows),
                "shed_pct": shed_pct,
            }
        )
    _write_bench_json(
        "loopback_throughput",
        {"m": M, "proc": PROC, "n": n, "scale": scale, "points": points},
    )
    for load, rate, report in rows:
        assert report.n_errors == 0, f"load {load:.0%}: requests dropped by a bug"
        assert report.n_acked == report.n_sent == n
        assert report.server_stats["completed"] == report.n_dispatched
    # Higher offered load must not lower the achieved request rate
    # much: the driver is open-loop, so pacing tracks the target.
    achieved = [report.achieved_rate for _, _, report in rows]
    assert achieved == sorted(achieved), "achieved rate should grow with offered load"


SHARD_M, SHARD_K = 8, 2
SHARD_COUNTS = [1, 4]


@pytest.mark.ablation
def test_sharded_serve_scales_throughput(run_once, scale):
    n = 2000 if scale == "full" else 600
    rate = 50_000.0  # far beyond one frontend's capacity: measure the ceiling
    instance = build_drive_instance(
        source="spec",
        m=SHARD_M,
        n=n,
        rate=rate,
        k=SHARD_K,
        strategy="disjoint",
        proc=PROC,
        seed=2026,
    )

    def sweep():
        out = []
        for shards in SHARD_COUNTS:
            plan = plan_for_instance(instance, shards)
            out.append(
                (shards, run_sharded_loopback_sync(instance, shards, plan=plan, target_rate=rate))
            )
        return out

    rows = run_once(sweep)
    print()
    print(
        f"sharded serving throughput (m={SHARD_M}, k={SHARD_K} disjoint, "
        f"proc={PROC:g}, n={n}, offered {rate:.0f} rps)"
    )
    print(f"{'shards':>7} {'achieved rps':>13} {'p99 est flow':>13} {'digest':>18}")
    points = []
    for shards, report in rows:
        print(
            f"{shards:>7} {report.achieved_rate:>13.1f} "
            f"{_p99(report.est_flows):>13.6g} {report.assignments_digest[:16]:>18}"
        )
        points.append(
            {
                "shards": shards,
                "achieved_rps": report.achieved_rate,
                "p99_est_flow": _p99(report.est_flows),
                "assignments_sha256": report.assignments_digest,
            }
        )
    by_shards = dict(rows)
    single, fleet = by_shards[SHARD_COUNTS[0]], by_shards[SHARD_COUNTS[-1]]
    speedup = fleet.achieved_rate / single.achieved_rate if single.achieved_rate else math.nan
    print(f"speedup at {SHARD_COUNTS[-1]} shards: {speedup:.2f}x")
    _write_bench_json(
        "sharded_throughput",
        {
            "m": SHARD_M,
            "k": SHARD_K,
            "n": n,
            "scale": scale,
            "target_rps": rate,
            "points": points,
            "speedup": speedup,
        },
    )
    for shards, report in rows:
        assert report.n_errors == 0, f"{shards} shards: requests dropped by a bug"
        assert report.n_acked == report.n_sent == n
    # Theorem 6: a disjoint plan shards the stream without changing one
    # decision — the digest is the proof, the throughput is the payoff.
    digests = {report.assignments_digest for _, report in rows}
    assert len(digests) == 1, "sharding changed placements on a disjoint plan"
    assert fleet.achieved_rate > single.achieved_rate, (
        f"expected >1x scaling from {SHARD_COUNTS[-1]} shards, got {speedup:.2f}x"
    )
