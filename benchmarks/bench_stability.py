"""Extension bench: the LP capacity line as a dynamic phase boundary.

Below the line the max flow plateaus with the horizon; above it, work
accumulates and Fmax grows linearly — connecting Section 7.2's static
LP analysis to Section 7.4's dynamic simulations.
"""

import pytest

from repro.experiments import stability


@pytest.mark.paper
def test_stability_phase_boundary(run_once, scale):
    ns = (1000, 2000, 4000, 8000) if scale == "full" else (500, 1000, 2000, 4000)
    table = run_once(stability.run, m=15, k=3, ns=ns, repeats=3)
    print()
    print(table.to_text())
    stable_row, unstable_row = table.rows
    stable_slope = float(stable_row[-1])
    unstable_slope = float(unstable_row[-1])
    # unstable growth dominates stable drift by an order of magnitude
    assert unstable_slope > 10 * max(stable_slope, 1e-6)
    # unstable Fmax roughly doubles when n doubles (linear growth)
    assert unstable_row[-2] > 1.5 * unstable_row[-3]
