"""Figure 11 — Fmax vs average load for EFT-Min/EFT-Max under both
replication strategies and the three popularity cases.

``quick``: 3 000 tasks, 3 repeats, coarse load grid.
``full``: the paper's 10 000 tasks, 10 repeats, full grid.
"""

import pytest

from repro.experiments import fig11


@pytest.mark.paper
def test_fig11_simulation(run_once, scale):
    if scale == "full":
        kwargs = dict(m=15, k=3, n=10_000, repeats=10)
    else:
        kwargs = dict(
            m=15,
            k=3,
            n=3000,
            repeats=3,
            loads={
                "uniform": (20, 50, 80, 90),
                "shuffled": (10, 25, 40, 50),
                "worst": (10, 20, 30, 40),
            },
        )
    result = run_once(fig11.run, **kwargs)
    print()
    print(result.to_text())

    # Red lines match the paper's facet annotations.
    lines = result.max_load_lines
    assert abs(lines["uniform"]["overlapping"] - 100) < 1
    assert abs(lines["worst"]["overlapping"] - 59) < 2
    assert abs(lines["worst"]["disjoint"] - 36) < 2

    # Shapes: Fmax grows with load; overlapping beats disjoint at the
    # top of every facet.
    for case in ("uniform", "shuffled", "worst"):
        for strategy in ("overlapping", "disjoint"):
            series = result.series(case, strategy, "EFT-Min")
            assert series[-1][1] >= series[0][1]
        ov = dict(result.series(case, "overlapping", "EFT-Min"))
        dj = dict(result.series(case, "disjoint", "EFT-Min"))
        top = max(ov)
        assert ov[top] <= dj[top] + 1e-9
