"""Ablation: the three max-load solvers (LP vs max-flow vs Hall).

DESIGN.md requires the LP to be cross-checked by independent methods;
this bench compares their runtimes and confirms agreement at m = 15
(the exponential Hall enumeration is the reference, viable only at
small m).
"""

import pytest

from repro.maxload import max_load_flow, max_load_hall, max_load_lp
from repro.simulation import shuffled_case

POP = shuffled_case(15, 1.0, rng=42)


@pytest.mark.ablation
def test_lp_solver(benchmark):
    sol = benchmark(max_load_lp, POP, "overlapping", 3)
    assert sol.lam > 0


@pytest.mark.ablation
def test_flow_solver(benchmark):
    lam = benchmark(max_load_flow, POP, "overlapping", 3)
    assert lam == pytest.approx(max_load_lp(POP, "overlapping", 3).lam, abs=1e-5)


@pytest.mark.ablation
def test_hall_solver(benchmark):
    lam = benchmark(max_load_hall, POP, "overlapping", 3)
    assert lam == pytest.approx(max_load_lp(POP, "overlapping", 3).lam, rel=1e-6)
