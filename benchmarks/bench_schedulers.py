"""Load sweep of the scheduler zoo.

Races every zoo policy over shared seeded workloads at 70/90/100%
cluster load on m=50 and records flow metrics, preemption counts and
dispatch throughput per policy.  This is the capacity-planning view of
the zoo: what each policy buys (SRPT's mean flow, Speed-EFT's fast
tier) and what it costs (preemption events, setup charges, per-task
decision time).  Rows merge into ``BENCH_schedulers.json`` at the repo
root — regenerate the checked-in numbers with::

    REPRO_BENCH_SCALE=full python -m pytest \
        benchmarks/bench_schedulers.py -k sweep -s
"""

import json
import time
from pathlib import Path

import pytest

from repro.schedulers import get_scheduler
from repro.schedulers.compare import DEFAULT_POLICIES
from repro.simulation import Simulator, WorkloadSpec, generate_workload

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_schedulers.json"

M = 50
LOADS = (0.7, 0.9, 1.0)


def _write_bench_json(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` into BENCH_schedulers.json."""
    data = {}
    if BENCH_JSON.is_file():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _workload(n: int, load: float):
    spec = WorkloadSpec(
        m=M, n=n, lam=load * M, k=3, strategy="overlapping", size_dist="exp"
    )
    return generate_workload(spec, rng=0)


def _timed_cell(policy: str, inst):
    sim = Simulator(get_scheduler(policy, M, seed=0), backend="reference")
    sim.add_instance(inst)
    t0 = time.perf_counter()
    res = sim.run()
    elapsed = time.perf_counter() - t0
    return res, elapsed


@pytest.fixture(scope="module")
def bench_workload():
    return _workload(20_000, 0.9)


@pytest.mark.parametrize("policy", DEFAULT_POLICIES)
def test_policy_dispatch_throughput(benchmark, bench_workload, policy):
    """Per-policy engine throughput on the shared m=50 workload."""

    def run():
        sim = Simulator(get_scheduler(policy, M, seed=0), backend="reference")
        sim.add_instance(bench_workload)
        return sim.run()

    result = benchmark(run)
    assert result.n_completed == bench_workload.n


@pytest.mark.ablation
def test_zoo_load_sweep(run_once, scale):
    """The zoo table: every policy at 70/90/100% load on m=50."""
    n = 200_000 if scale == "full" else 40_000

    def sweep():
        rows = []
        for load in LOADS:
            inst = _workload(n, load)
            for policy in DEFAULT_POLICIES:
                res, elapsed = _timed_cell(policy, inst)
                rows.append(
                    {
                        "policy": policy,
                        "load": load,
                        "mean_flow": round(res.mean_flow, 6),
                        "max_flow": round(res.max_flow, 6),
                        "n_preempted": res.n_preempted,
                        "utilization": round(res.utilization, 4),
                        "wall_s": round(elapsed, 3),
                        "tasks_per_s": round(n / elapsed),
                    }
                )
        return rows

    rows = run_once(sweep)
    print()
    print(f"scheduler zoo sweep (m={M}, n={n}, k=3, scale={scale})")
    print(
        f"{'load':<6} {'policy':<11} {'mean_flow':>11} {'max_flow':>11} "
        f"{'preempt':>8} {'tasks/s':>10}"
    )
    for r in rows:
        print(
            f"{r['load']:<6.2f} {r['policy']:<11} {r['mean_flow']:>11.4f} "
            f"{r['max_flow']:>11.4f} {r['n_preempted']:>8} {r['tasks_per_s']:>10}"
        )
    by_cell = {(r["policy"], r["load"]): r for r in rows}
    for load in LOADS:
        # the zoo's provable ordering, now at benchmark scale
        assert (
            by_cell[("srpt-ps", load)]["mean_flow"]
            <= by_cell[("eft-min", load)]["mean_flow"] + 1e-9
        )
        assert by_cell[("srpt-ps", load)]["n_preempted"] > 0
        assert by_cell[("eft-min", load)]["n_preempted"] == 0
    _write_bench_json(
        f"zoo_sweep_{scale}",
        {"m": M, "n": n, "k": 3, "scale": scale, "rows": rows},
    )
