"""Figure 3/4 — EFT-Min trace on the Theorem 8 adversary (m=6, k=3)."""

import numpy as np
import pytest

from repro.experiments import fig03


@pytest.mark.paper
def test_fig03_trace(run_once):
    result = run_once(fig03.run, m=6, k=3)
    print()
    print(result.to_text())
    assert result.fmax == 4.0  # m - k + 1
    assert result.converged_at is not None
    assert np.allclose(result.profiles[-1], result.stable)
