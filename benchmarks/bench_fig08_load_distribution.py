"""Figure 8 — per-machine load under the three popularity cases."""

import pytest

from repro.experiments import fig08


@pytest.mark.paper
def test_fig08_load_distribution(benchmark):
    table = benchmark(fig08.run, 6, 1.0, 7)
    print()
    print(table.to_text())
    # Worst-case hot machine at ~2.449 (m=6, s=1, lambda=m), as drawn.
    worst = [float(x) for x in table.rows[1][1:-1]]
    assert abs(worst[0] - 2.449) < 0.01
