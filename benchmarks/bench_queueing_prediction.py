"""Analysis bench: queueing theory vs simulation.

Predicts the disjoint-strategy Figure 11 curve with Erlang-C machinery
and compares against the measured simulation, checking that (a) the
divergence point matches the LP/stability capacity line and (b) the
finite predictions are within the M/M-vs-M/D model error band.
"""

import numpy as np
import pytest

from repro.analysis import predict_disjoint_curve, stability_limit
from repro.core import eft_schedule
from repro.experiments.common import TextTable
from repro.maxload import max_load_lp
from repro.simulation import WorkloadSpec, generate_workload, worst_case


@pytest.mark.ablation
def test_prediction_vs_simulation(run_once, scale):
    m, k = 15, 3
    n = 8000 if scale == "full" else 3000
    pop = worst_case(m, 1.0)
    limit_pct = 100 * stability_limit(pop, k) / m  # = LP red line
    loads = [10, 20, 30]

    def campaign():
        table = TextTable(
            title=f"Queueing prediction vs simulation (disjoint, worst case s=1, m={m}, k={k})",
            headers=["load %", "predicted Fmax", "simulated Fmax (median of 3)"],
        )
        pred = predict_disjoint_curve(pop, k, loads, n=n)
        for load in loads:
            sims = []
            for rep in range(3):
                spec = WorkloadSpec(m=m, n=n, lam=load / 100 * m, k=k, strategy="disjoint")
                inst = generate_workload(spec, rng=rep, popularity=pop)
                sims.append(eft_schedule(inst, tiebreak="min").max_flow)
            table.add_row(load, round(pred[float(load)], 2), float(np.median(sims)))
        return table

    table = run_once(campaign)
    print()
    print(table.to_text())
    print(f"stability limit {limit_pct:.1f}% == LP max load "
          f"{max_load_lp(pop, 'disjoint', k).load_percent:.1f}%")
    assert limit_pct == pytest.approx(max_load_lp(pop, "disjoint", k).load_percent)
    for load, pred_v, sim_v in table.rows:
        assert pred_v / 4 <= sim_v <= pred_v * 4  # model error band
