"""Future-work ablation: candidate replication strategies.

The paper's conclusion asks for a strategy with good average *and*
worst-case behaviour.  This bench scores the paper's two strategies
plus three candidates on both axes and checks the headline finding:
the mirrored (alternating-direction) interval layout keeps the
overlapping strategy's capacity while blunting the Theorem 8 cascade.
"""

import pytest

from repro.explore import adversarial_probe, evaluate_strategies
from repro.explore.strategies import MirroredIntervals
from repro.psets import OverlappingIntervals


@pytest.mark.ablation
def test_strategy_exploration(run_once, scale):
    perms = 40 if scale == "full" else 12
    sim_tasks = 6000 if scale == "full" else 1500
    table = run_once(
        evaluate_strategies, m=15, k=3, n_permutations=perms, sim_tasks=sim_tasks
    )
    print()
    print(table.to_text())
    by_name = {row[0]: row for row in table.rows}
    # overlapping dominates disjoint on capacity (the paper's finding)
    assert by_name["overlapping"][2] >= by_name["disjoint"][2]
    # mirrored keeps (almost) the same capacity...
    assert by_name["mirrored"][2] >= by_name["overlapping"][2] - 3
    # ...with a strictly smaller adversarial probe
    assert by_name["mirrored"][5] < by_name["overlapping"][5]


@pytest.mark.ablation
def test_probe_collapse_comparison(run_once):
    m, k = 12, 3

    def probe_both():
        return (
            adversarial_probe(OverlappingIntervals(m, k), steps=4 * m**2),
            adversarial_probe(MirroredIntervals(m, k), steps=4 * m**2),
        )

    over, mirrored = run_once(probe_both)
    print(f"\nTheorem 8 probe (m={m}, k={k}): overlapping Fmax={over:g} "
          f"(= m-k+1={m - k + 1}), mirrored Fmax={mirrored:g}")
    assert over == m - k + 1
    assert mirrored < over
