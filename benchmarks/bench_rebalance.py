"""Rebalance ablation — static placements vs LP-driven re-replication.

Races three arms on the *same* seeded hotspot-shift stream (a Zipf
popularity whose hot region rotates half-way around the ring mid-run):
a static overlapping placement, a static disjoint placement, and the
adaptive controller that re-solves the Equation (15) max-load LP on a
cadence and widens the hottest intervals when the observed work rate
approaches :math:`\\lambda^*`.  The statics are tuned for the first
regime and drown after the shift; the controller must beat both on p99
flow — the tentpole claim of the rebalance subsystem.

A second benchmark injects a machine outage on top of the shift and
checks the controller still converges (the run completes, placements
stay deterministic per seed) while the fault drains through the
engine's failure rule.

Both benchmarks merge their rows into ``BENCH_rebalance.json`` at the
repo root (machine-readable mirror of the printed tables).
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.faults import FaultSchedule
from repro.rebalance import RebalanceConfig, run_rebalance
from repro.rebalance.units import default_spec

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_rebalance.json"

CONFIG = RebalanceConfig(cadence=25.0, window=50.0, headroom=0.75, warmup=2.0, max_k=5)


def _write_bench_json(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` into BENCH_rebalance.json."""
    data = {}
    if BENCH_JSON.is_file():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _arms(spec):
    return [
        ("static-overlapping", replace(spec, strategy="overlapping"), "static"),
        ("static-disjoint", replace(spec, strategy="disjoint"), "static"),
        ("adaptive", replace(spec, strategy="overlapping"), "adaptive"),
    ]


def _row(name: str, result) -> dict:
    return {
        "policy": name,
        "p50": result.flow["p50"],
        "p99": result.flow["p99"],
        "max": result.flow["max"],
        "n_rebalances": result.n_rebalances,
        "n_migrated": result.n_migrated,
        "assignments_sha256": result.digest,
    }


def _print_rows(rows: list[dict]) -> None:
    print(f"{'policy':<20} {'p50':>9} {'p99':>9} {'max':>9} {'rebal':>6} {'moved':>6}")
    for r in rows:
        print(
            f"{r['policy']:<20} {r['p50']:>9.3f} {r['p99']:>9.3f} "
            f"{r['max']:>9.3f} {r['n_rebalances']:>6d} {r['n_migrated']:>6d}"
        )


@pytest.mark.ablation
def test_rebalance_beats_static_on_hotspot_shift(run_once, scale):
    n = 8000 if scale == "full" else 3000
    spec = default_spec({"m": 12, "n": n, "k": 2, "s": 1.5})

    def sweep():
        return [
            (name, run_rebalance(arm_spec, policy=policy, config=CONFIG, seed=0))
            for name, arm_spec, policy in _arms(spec)
        ]

    results = run_once(sweep)
    rows = [_row(name, r) for name, r in results]
    print()
    print(f"hotspot-shift rebalance (m={spec.m}, n={n}, k={spec.k}, s=1.5)")
    _print_rows(rows)
    _write_bench_json(
        "hotspot_shift",
        {"m": spec.m, "n": n, "k": spec.k, "s": 1.5, "scale": scale, "points": rows},
    )
    by_name = {name: r for name, r in results}
    adaptive = by_name["adaptive"]
    # The tentpole claim: the controller beats BOTH statics on p99.
    for static in ("static-overlapping", "static-disjoint"):
        assert adaptive.flow["p99"] < by_name[static].flow["p99"], (
            f"adaptive p99 {adaptive.flow['p99']:.3f} does not beat "
            f"{static} p99 {by_name[static].flow['p99']:.3f}"
        )
    # ...by actually rebalancing, not by luck.
    assert adaptive.n_rebalances > 0
    assert by_name["static-overlapping"].n_rebalances == 0


@pytest.mark.ablation
def test_rebalance_survives_outage(run_once, scale):
    n = 6000 if scale == "full" else 2400
    spec = default_spec({"m": 12, "n": n, "k": 2, "s": 1.5})
    # One machine rides out a maintenance window across the shift.
    horizon = n / spec.rate.rate(0.0)
    faults = FaultSchedule.build([(3, 0.3 * horizon, 0.5 * horizon)])

    def sweep():
        return [
            (name, run_rebalance(arm_spec, policy=policy, config=CONFIG, seed=0, faults=faults))
            for name, arm_spec, policy in _arms(spec)
        ]

    results = run_once(sweep)
    rows = [_row(name, r) for name, r in results]
    print()
    print(
        f"hotspot shift + outage on machine 3 over "
        f"[{0.3 * horizon:.0f}, {0.5 * horizon:.0f}) (m={spec.m}, n={n})"
    )
    _print_rows(rows)
    _write_bench_json(
        "hotspot_shift_with_outage",
        {
            "m": spec.m,
            "n": n,
            "k": spec.k,
            "scale": scale,
            "faults": json.loads(faults.to_json()),
            "points": rows,
        },
    )
    by_name = {name: r for name, r in results}
    adaptive = by_name["adaptive"]
    # Every task still lands exactly once, deterministically per seed.
    for _, r in results:
        assert r.n == n
    rerun = run_rebalance(
        replace(spec, strategy="overlapping"),
        policy="adaptive",
        config=CONFIG,
        seed=0,
        faults=faults,
    )
    assert rerun.digest == adaptive.digest, "adaptive run not deterministic under faults"
    # The controller keeps reacting through the outage...
    assert adaptive.n_rebalances > 0
    # ...and still beats the worse of the two statics on p99.
    worst_static = max(
        by_name["static-overlapping"].flow["p99"],
        by_name["static-disjoint"].flow["p99"],
    )
    assert adaptive.flow["p99"] < worst_static
