"""Empirical competitive ratios of EFT vs exact optima (the
experimental counterpart of the Table 2 guarantees)."""

import pytest

from repro.experiments import ratios


@pytest.mark.paper
def test_ratio_study(run_once, scale):
    trials = 40 if scale == "full" else 15
    table = run_once(ratios.run, m=8, k=3, n=40, trials=trials, rng_seed=5)
    print()
    print(table.to_text())
    unrestricted, disjoint, overlapping = table.rows
    assert float(unrestricted[2]) <= 3 - 2 / 8 + 1e-9  # Theorem 1
    assert float(disjoint[2]) <= 3 - 2 / 3 + 1e-9  # Corollary 1
