"""Ablation: tie-break policy (Section 7.4's EFT-Min vs EFT-Max,
extended with Rand and LeastLoaded).

DESIGN.md calls out the tie-break policy as the one EFT design choice
the paper studies; this bench quantifies its effect in two regimes:

* the Worst-case popularity workload (paper: EFT-Max slightly better
  under overlapping replication because it avoids the popular side);
* the Theorem 8 adversary (Min collapses to m-k+1, Max escapes).
"""

import numpy as np
import pytest

from repro.adversaries import EFTIntervalAdversary
from repro.core import EFT, eft_schedule
from repro.experiments.common import TextTable
from repro.simulation import WorkloadSpec, generate_workload, worst_case

POLICIES = ("min", "max", "rand", "least_loaded")


@pytest.mark.ablation
def test_tiebreak_on_worst_case_workload(run_once):
    m, k, n = 15, 3, 4000
    pop = worst_case(m, 1.0)

    def campaign():
        table = TextTable(
            title="Ablation: tie-break policy, Worst-case s=1, overlapping k=3, load 45%",
            headers=["policy", "median Fmax", "mean flow"],
        )
        for policy in POLICIES:
            fmaxes, means = [], []
            for rep in range(5):
                spec = WorkloadSpec(m=m, n=n, lam=0.45 * m, k=k, strategy="overlapping")
                inst = generate_workload(spec, rng=rep, popularity=pop)
                sched = eft_schedule(inst, tiebreak=policy, rng=rep)
                fmaxes.append(sched.max_flow)
                means.append(sched.mean_flow)
            table.add_row(policy, float(np.median(fmaxes)), float(np.mean(means)))
        return table

    table = run_once(campaign)
    print()
    print(table.to_text())
    values = {row[0]: row[1] for row in table.rows}
    # Paper: EFT-Max <= EFT-Min under worst-case bias (it avoids the
    # hot low-index machines when breaking ties).
    assert values["max"] <= values["min"] + 0.5


@pytest.mark.ablation
def test_tiebreak_on_adversary(run_once):
    m, k = 8, 3

    def campaign():
        table = TextTable(
            title=f"Ablation: tie-break policy on the Theorem 8 adversary (m={m}, k={k})",
            headers=["policy", "Fmax", "bound m-k+1"],
        )
        for policy in POLICIES:
            result = EFTIntervalAdversary(m, k, steps=m**3).run(
                lambda mm: EFT(mm, tiebreak=policy, rng=0)
            )
            table.add_row(policy, result.fmax, m - k + 1)
        return table

    table = run_once(campaign)
    print()
    print(table.to_text())
    values = {row[0]: row[1] for row in table.rows}
    assert values["min"] == m - k + 1  # Theorem 8
    assert values["max"] == 1.0  # Max escapes the plain instance
