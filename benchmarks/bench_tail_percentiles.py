"""Extension bench: tail-latency percentile breakdown.

The paper's motivating problem (Section 1) is the latency *tail*.
This bench regenerates the percentile table across strategies and
policies and checks the qualitative claim: the median is insensitive,
the p99/max carry all the damage.
"""

import pytest

from repro.experiments import tails


@pytest.mark.paper
def test_tail_percentiles(run_once, scale):
    n = 8000 if scale == "full" else 3000
    table = run_once(tails.run, m=15, k=3, n=n, load=0.45, repeats=3)
    print()
    print(table.to_text())
    rows = {(r[0], r[1]): r for r in table.rows}
    over = rows[("overlapping", "EFT-Min")]
    disj = rows[("disjoint", "EFT-Min")]
    # medians are close...
    assert abs(over[2] - disj[2]) <= 1.0
    # ...but the disjoint tail is clearly worse
    assert disj[4] > over[4]
    assert disj[5] > over[5]
    # percentiles are ordered within every row
    for row in table.rows:
        assert row[2] <= row[3] <= row[4] <= row[5]
