"""Benchmark-suite configuration.

Every benchmark regenerates one paper table/figure (or an ablation) and
prints the resulting rows, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction report.  Heavy experiment campaigns run
once per benchmark (``pedantic`` with one round); micro-benchmarks of
the hot paths use the default calibration.

Scale knobs: set ``REPRO_BENCH_SCALE=full`` in the environment to run
the paper-scale versions (Figure 10's 100-permutation sweep, Figure
11's 10 000-task campaign); the default ``quick`` scale preserves every
qualitative shape at a fraction of the runtime.
"""

import os

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "paper: regenerates a paper table/figure")
    config.addinivalue_line("markers", "ablation: design-choice ablation benchmark")


@pytest.fixture(scope="session")
def scale() -> str:
    """``quick`` (default) or ``full`` (paper-scale)."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture
def run_once(benchmark):
    """Run a heavy experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
