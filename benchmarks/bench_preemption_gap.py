"""Ablation: the price of the paper's non-preemptive model.

Compares exact preemptive vs non-preemptive optima on random small
instances, and preemptive-FIFO vs SRPT online, quantifying (a) how
much atomic requests cost in the worst case and (b) why the max-flow
objective prefers FIFO-like policies even when preemption is free.
"""

import numpy as np
import pytest

from repro.core import Instance
from repro.experiments.common import TextTable
from repro.offline import optimal_fmax, optimal_preemptive_fmax
from repro.simulation import PreemptiveEngine, fifo_priority, srpt_priority


@pytest.mark.ablation
def test_preemption_gap(run_once):
    def campaign():
        rng = np.random.default_rng(8)
        table = TextTable(
            title="Price of non-preemption (m=2, n=7, exact optima, 8 instances)",
            headers=["instance", "preemptive OPT", "non-preemptive OPT", "gap"],
        )
        gaps = []
        for i in range(8):
            releases = np.sort(rng.uniform(0, 4, size=7))
            procs = rng.uniform(0.3, 3.0, size=7)
            inst = Instance.build(2, releases=releases, procs=procs)
            pre = optimal_preemptive_fmax(inst)
            non = optimal_fmax(inst)
            gaps.append(non / pre)
            table.add_row(i, round(pre, 3), round(non, 3), round(non / pre, 3))
        table.notes.append(f"median gap {np.median(gaps):.3f}")
        return table

    table = run_once(campaign)
    print()
    print(table.to_text())
    for row in table.rows:
        assert row[2] >= row[1] - 1e-6  # preemption never hurts


@pytest.mark.ablation
def test_srpt_vs_fifo_tradeoff(run_once):
    def campaign():
        rng = np.random.default_rng(3)
        table = TextTable(
            title="Online preemptive policies (m=3, bursty exp sizes, 5 runs)",
            headers=["policy", "median Fmax", "median mean flow", "preemptions"],
        )
        stats = {"FIFO": ([], [], []), "SRPT": ([], [], [])}
        for seed in range(5):
            r = np.random.default_rng(seed)
            releases = np.sort(r.uniform(0, 30, size=90))
            procs = r.exponential(1.0, size=90) + 0.05
            inst = Instance.build(3, releases=releases, procs=procs)
            for name, prio in (("FIFO", fifo_priority), ("SRPT", srpt_priority)):
                res = PreemptiveEngine(prio).run(inst)
                stats[name][0].append(res.max_flow)
                stats[name][1].append(res.mean_flow)
                stats[name][2].append(res.preemptions)
        for name, (fm, mf, pr) in stats.items():
            table.add_row(
                name, float(np.median(fm)), float(np.median(mf)), int(np.median(pr))
            )
        return table

    table = run_once(campaign)
    print()
    print(table.to_text())
    by = {row[0]: row for row in table.rows}
    assert by["SRPT"][2] <= by["FIFO"][2] + 1e-9  # SRPT wins the mean
    assert by["FIFO"][1] <= by["SRPT"][1] + 1e-9  # FIFO wins the max
