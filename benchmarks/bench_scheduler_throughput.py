"""Micro-benchmarks of the scheduling hot paths.

Dispatch throughput is the scalability argument for immediate dispatch
(Section 1): EFT decides in O(k) per task.  These benches track the
per-task cost of the analytic driver, the event-driven engine, and the
offline solvers.
"""

import pytest

from repro.core import EFT, eft_schedule, fifo_schedule
from repro.offline import optimal_unit_fmax
from repro.simulation import Simulator, WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(m=15, n=5000, lam=0.5 * 15, k=3, strategy="overlapping")
    return generate_workload(spec, rng=0)


@pytest.fixture(scope="module")
def small_unit_workload():
    spec = WorkloadSpec(m=6, n=60, lam=3.0, k=3, strategy="disjoint")
    inst = generate_workload(spec, rng=1)
    # integral releases for the exact solver
    from repro.core import Instance, Task

    tasks = tuple(
        Task(tid=t.tid, release=float(int(t.release)), proc=1.0, machines=t.machines)
        for t in inst
    )
    return Instance(m=6, tasks=tasks)


def test_eft_dispatch_throughput(benchmark, workload):
    """Analytic EFT over 5000 tasks, m=15, k=3."""
    result = benchmark(eft_schedule, workload, "min")
    assert len(result) == 5000


def test_array_eft_throughput(benchmark, workload):
    """The array fast path on the same workload (ablation vs the
    reference implementation above)."""
    from repro.core import array_eft_fmax

    fmax = benchmark(array_eft_fmax, workload, "min")
    assert fmax == eft_schedule(workload, "min").max_flow


def test_fifo_event_loop_throughput(benchmark, workload):
    """Event-driven FIFO on the unrestricted projection of the same
    workload."""
    unrestricted = workload.with_machine_sets([None] * workload.n)
    result = benchmark(fifo_schedule, unrestricted, "min")
    assert len(result) == 5000


def test_engine_throughput(benchmark, workload):
    """Full event-driven engine (3 events per task)."""

    def run():
        sim = Simulator(EFT(15, tiebreak="min"))
        sim.add_instance(workload)
        return sim.run()

    result = benchmark(run)
    assert result.n_completed == 5000


def test_unit_opt_solver(benchmark, small_unit_workload):
    """Exact matching-based optimum on a 60-task instance."""
    value = benchmark(optimal_unit_fmax, small_unit_workload)
    assert value >= 1
