"""Micro-benchmarks of the scheduling hot paths.

Dispatch throughput is the scalability argument for immediate dispatch
(Section 1): EFT decides in O(k) per task.  These benches track the
per-task cost of the analytic driver, the event-driven engine (both
backends), and the offline solvers.

The headline ablation is :func:`test_array_backend_speedup`: the same
million-task workload through ``Simulator(backend="reference")`` (the
object-per-event loop) and ``Simulator(backend="array")`` (the
vectorized fast-forward), asserting bit-identical results and at least
a 10x wall-clock speedup.  Rows merge into ``BENCH_throughput.json``
at the repo root (machine-readable mirror of the printed table) —
regenerate the checked-in numbers with::

    REPRO_BENCH_SCALE=full python -m pytest \
        benchmarks/bench_scheduler_throughput.py -k speedup -s
"""

import json
import time
from pathlib import Path

import pytest

from repro.core import EFT, eft_schedule, fifo_schedule
from repro.offline import optimal_unit_fmax
from repro.simulation import Simulator, WorkloadSpec, generate_workload

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: the acceptance floor for the vectorized engine at m=100, n=1M
SPEEDUP_FLOOR = 10.0


def _write_bench_json(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` into BENCH_throughput.json."""
    data = {}
    if BENCH_JSON.is_file():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(m=15, n=5000, lam=0.5 * 15, k=3, strategy="overlapping")
    return generate_workload(spec, rng=0)


@pytest.fixture(scope="module")
def small_unit_workload():
    spec = WorkloadSpec(m=6, n=60, lam=3.0, k=3, strategy="disjoint")
    inst = generate_workload(spec, rng=1)
    # integral releases for the exact solver
    from repro.core import Instance, Task

    tasks = tuple(
        Task(tid=t.tid, release=float(int(t.release)), proc=1.0, machines=t.machines)
        for t in inst
    )
    return Instance(m=6, tasks=tasks)


def test_eft_dispatch_throughput(benchmark, workload):
    """Analytic EFT over 5000 tasks, m=15, k=3."""
    result = benchmark(eft_schedule, workload, "min")
    assert len(result) == 5000


def test_array_eft_throughput(benchmark, workload):
    """The array fast path on the same workload (ablation vs the
    reference implementation above)."""
    from repro.core import array_eft_fmax

    fmax = benchmark(array_eft_fmax, workload, "min")
    assert fmax == eft_schedule(workload, "min").max_flow


def test_fifo_event_loop_throughput(benchmark, workload):
    """Event-driven FIFO on the unrestricted projection of the same
    workload."""
    unrestricted = workload.with_machine_sets([None] * workload.n)
    result = benchmark(fifo_schedule, unrestricted, "min")
    assert len(result) == 5000


def test_engine_throughput(benchmark, workload):
    """Full event-driven engine, reference loop (3 events per task)."""

    def run():
        sim = Simulator(EFT(15, tiebreak="min"), backend="reference")
        sim.add_instance(workload)
        return sim.run()

    result = benchmark(run)
    assert result.n_completed == 5000


def test_engine_array_backend_throughput(benchmark, workload):
    """Full engine through the vectorized fast-forward."""

    def run():
        sim = Simulator(EFT(15, tiebreak="min"), backend="array")
        sim.add_instance(workload)
        result = sim.run()
        assert sim.backend_used == "array", sim.fallback_reason
        return result

    result = benchmark(run)
    assert result.n_completed == 5000


def test_unit_opt_solver(benchmark, small_unit_workload):
    """Exact matching-based optimum on a 60-task instance."""
    value = benchmark(optimal_unit_fmax, small_unit_workload)
    assert value >= 1


def _timed_run(instance, backend: str):
    sim = Simulator(EFT(instance.m, tiebreak="min"), backend=backend)
    sim.add_instance(instance)
    t0 = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - t0
    assert sim.backend_used == backend, sim.fallback_reason
    return result, elapsed


@pytest.mark.ablation
def test_array_backend_speedup(run_once, scale):
    """The tentpole claim: the array backend replays the reference
    engine bit-identically at >= 10x throughput (m=100, 1M tasks at
    full scale)."""
    n = 1_000_000 if scale == "full" else 250_000
    m, k = 100, 3
    spec = WorkloadSpec(m=m, n=n, lam=0.7 * m, k=k, strategy="overlapping")
    inst = generate_workload(spec, rng=0)

    def race():
        ref, t_ref = _timed_run(inst, "reference")
        arr, t_arr = _timed_run(inst, "array")
        return ref, t_ref, arr, t_arr

    ref, t_ref, arr, t_arr = run_once(race)
    speedup = t_ref / t_arr
    print()
    print(f"engine throughput (m={m}, n={n}, k={k}, scale={scale})")
    print(f"{'backend':<12} {'wall s':>9} {'tasks/s':>12}")
    print(f"{'reference':<12} {t_ref:>9.3f} {n / t_ref:>12.0f}")
    print(f"{'array':<12} {t_arr:>9.3f} {n / t_arr:>12.0f}")
    print(f"speedup: {speedup:.1f}x")
    # bit-identical, not approximately equal
    assert arr.max_flow == ref.max_flow
    assert arr.mean_flow == ref.mean_flow
    assert arr.makespan == ref.makespan
    assert arr.n_completed == ref.n_completed == n
    assert arr.utilization == ref.utilization
    _write_bench_json(
        f"engine_speedup_{scale}",
        {
            "m": m,
            "n": n,
            "k": k,
            "scale": scale,
            "reference_s": round(t_ref, 3),
            "array_s": round(t_arr, 3),
            "reference_tasks_per_s": round(n / t_ref),
            "array_tasks_per_s": round(n / t_arr),
            "speedup": round(speedup, 2),
            "floor": SPEEDUP_FLOOR,
            "max_flow": arr.max_flow,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"array backend speedup {speedup:.1f}x is below the "
        f"{SPEEDUP_FLOOR:.0f}x floor at m={m}, n={n}"
    )
