"""Table 2 — this paper's competitive-ratio bounds, realised by
running every adversary against its algorithm class.

``quick`` scale uses m = 16 with p = 1000 (log-bound adversaries land
within 1% of their asymptote); ``full`` uses p = 100 000.
"""

import pytest

from repro.experiments import table2


@pytest.mark.paper
def test_table2_bounds(run_once, scale):
    p = 100_000.0 if scale == "full" else 1000.0
    table = run_once(table2.run, m=16, k=3, p=p)
    print()
    print(table.to_text())
    # every lower-bound row must achieve >= 95% of its theory value
    for row in table.rows:
        structure, algo, kind, theory, achieved, ref = row
        if kind == ">=":
            assert float(achieved) >= 0.95 * float(theory), row
        else:
            assert float(achieved) <= float(theory) + 1e-9, row
