"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro table1
    python -m repro table2 --m 16 --k 3 --p 1000
    python -m repro fig03 --m 6 --k 3
    python -m repro fig08
    python -m repro fig10 --quick -j 4
    python -m repro fig11 --quick -j 4
    python -m repro campaign fig11 --quick -j 4 --out results/campaigns
    python -m repro campaign fig11 --quick -j 4 --metrics results/fig11.metrics.json
    python -m repro campaign fig11 --quick -j 4 --timeout 120 --retries 2 --out results/campaigns
    python -m repro campaign fig11 --quick -j 4 --out results/campaigns --resume
    python -m repro faulted --m 8 --k 2 --mtbf 60 --mttr 5 --policy restart
    python -m repro replay results/campaigns/fig11/eft-min.trace.jsonl
    python -m repro replay --golden eft-min-m4 --scheduler eft-max
    python -m repro rebalance --m 12 --n 4000 --policy compare
    python -m repro rebalance --policy adaptive --events results/rebalance.trace.jsonl
    python -m repro replay results/rebalance.trace.jsonl
    python -m repro serve --socket /tmp/repro.sock --m 4 --slo 0.1
    python -m repro serve-sharded --socket /tmp/repro.sock --m 6 --shards 3 --align-k 2
    python -m repro route --m 6 --shards 3 --strategy overlapping --k 2 --set 3,4
    python -m repro drive --socket /tmp/repro.sock --rate 200 --n 500 --shutdown
    python -m repro bench-serve --m 4 --rate 400 --n 250 --proc 0.005 --seed 42
    python -m repro bench-serve --m 8 --shards 4 --strategy disjoint --rate 2000 --n 2000
    python -m repro ratios
    python -m repro explore --m 15 --k 3
    python -m repro tails --load 0.45
    python -m repro stability
    python -m repro verify
    python -m repro all --out results/
    python -m repro demo

``--quick`` runs reduced-scale versions of the two heavy campaigns
(Figures 10 and 11); without it they run at paper scale.  ``--jobs/-j``
fans independent campaign units out over worker processes with output
identical to the serial run; ``campaign`` additionally caches unit
results under ``results/.cache/`` (re-runs only execute missing units)
and writes a run manifest, and ``replay`` re-executes a recorded
workload trace through any scheduler.  ``--metrics PATH`` (on
``campaign``, ``fig10`` and ``fig11``) writes a canonical
:mod:`repro.obs` metrics snapshot — byte-identical for any ``-j`` —
validatable with ``python -m repro.obs.validate PATH``.

The serving verbs run the dispatch algorithms live (:mod:`repro.serve`):
``serve`` starts the service on a unix socket or TCP port, ``drive``
replays a generated workload against it open-loop at its Poisson
pacing, and ``bench-serve`` runs both ends in one process over a
loopback socket — placements are deterministic per seed, so two
``bench-serve`` runs with the same arguments print the same
``assignments sha256`` line.

``rebalance`` (:mod:`repro.rebalance`) runs a dynamic hotspot-shift
workload under static placements and under the LP-driven adaptive
controller — ``--policy compare`` races all three arms on the same
seeded stream, ``--events PATH`` records every placement decision as a
versioned trace that ``replay`` re-runs and byte-compares.

The sharded tier (:mod:`repro.serve.shard`): ``serve-sharded`` runs N
dispatcher shards behind the interval-aware router on one endpoint,
``route`` prints a shard plan and where a processing set would land,
and ``bench-serve --shards N`` runs one real server process per shard
with client-side routing — on a disjoint plan the merged digest equals
the single-server one (Theorem 6), while throughput scales.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Bounding the Flow Time in Online Scheduling "
        "with Structured Processing Sets' (Canon, Dugois, Marchal, 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="known results on max-flow (context table)")
    p.add_argument("--m", type=int, default=15)

    p = sub.add_parser("table2", help="this paper's bounds, realised by the adversaries")
    p.add_argument("--m", type=int, default=16)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--p", type=float, default=1000.0, help="adversary task length")

    p = sub.add_parser("fig03", help="EFT-Min trace on the Theorem 8 adversary")
    p.add_argument("--m", type=int, default=6)
    p.add_argument("--k", type=int, default=3)

    p = sub.add_parser("fig08", help="load distributions under popularity bias")
    p.add_argument("--m", type=int, default=6)
    p.add_argument("--s", type=float, default=1.0)

    p = sub.add_parser("fig10", help="max-load LP sweep (both strategies)")
    p.add_argument("--m", type=int, default=15)
    p.add_argument("--quick", action="store_true", help="coarse grid, 25 permutations")
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("-j", "--jobs", type=int, default=1, help="worker processes (identical output)")
    p.add_argument("--metrics", default=None, metavar="PATH", help="write a metrics snapshot JSON")

    p = sub.add_parser("fig11", help="Fmax vs load simulation campaign")
    p.add_argument("--m", type=int, default=15)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--quick", action="store_true", help="3000 tasks, 3 repeats")
    p.add_argument("--seed", type=int, default=2022)
    p.add_argument("-j", "--jobs", type=int, default=1, help="worker processes (identical output)")
    p.add_argument("--metrics", default=None, metavar="PATH", help="write a metrics snapshot JSON")

    p = sub.add_parser(
        "campaign",
        help="run an experiment campaign with parallel workers, on-disk caching and a manifest",
    )
    p.add_argument("name", choices=["fig10", "fig11"], help="which campaign to run")
    p.add_argument("--quick", action="store_true", help="reduced scale (as fig10/fig11 --quick)")
    p.add_argument("-j", "--jobs", type=int, default=None, help="worker processes (default: all cores)")
    p.add_argument("--m", type=int, default=15)
    p.add_argument("--k", type=int, default=3, help="replication factor (fig11)")
    p.add_argument("--n", type=int, default=None, help="tasks per run (fig11; overrides scale)")
    p.add_argument("--repeats", type=int, default=None, help="runs per point (fig11; overrides scale)")
    p.add_argument("--permutations", type=int, default=None, help="permutations per row (fig10; overrides scale)")
    p.add_argument("--seed", type=int, default=None, help="base seed (default: the figure's)")
    p.add_argument("--cache-dir", default=None, help="unit result cache (default: results/.cache)")
    p.add_argument("--no-cache", action="store_true", help="always execute, never read/write the cache")
    p.add_argument("--out", default=None, help="directory for the rendered result + manifest")
    p.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a canonical metrics snapshot JSON (byte-identical for any -j)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock budget; hung units are killed and marked failed",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run failed units up to N times (exponential backoff, deterministic jitter)",
    )
    p.add_argument(
        "--backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="base retry delay (doubles per attempt; default 0.25)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run: verify the manifest under --out matches "
        "this spec, then re-run against the cache (completed units are hits)",
    )

    p = sub.add_parser(
        "faulted",
        help="degraded mode: EFT under seeded chaos machine failures vs the fault-free baseline",
    )
    p.add_argument("--m", type=int, default=8)
    p.add_argument("--k", type=int, default=2, help="replication factor")
    p.add_argument("--n", type=int, default=400, help="number of tasks")
    p.add_argument("--load", type=float, default=0.5, help="average cluster load")
    p.add_argument("--mtbf", type=float, default=60.0, help="mean time between failures per machine")
    p.add_argument("--mttr", type=float, default=5.0, help="mean time to repair")
    p.add_argument(
        "--policy",
        default="restart",
        choices=["restart", "resume"],
        help="in-flight tasks on a failed machine: restart elsewhere or resume at recovery",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--metrics", default=None, metavar="PATH", help="write a metrics snapshot JSON")

    p = sub.add_parser("replay", help="replay a recorded workload trace through a scheduler")
    p.add_argument("trace", nargs="?", default=None, help="path to a .trace.jsonl file")
    p.add_argument("--golden", default=None, help="name of a built-in golden trace instead of a path")
    p.add_argument(
        "--scheduler",
        default=None,
        help="any registered zoo policy, e.g. eft-min|srpt-ps|nc-setup|speed-eft "
        "(see compare-schedulers --list; default: the recorded one)",
    )
    p.add_argument("--seed", type=int, default=0, help="seed for randomised schedulers")

    p = sub.add_parser(
        "vec-check",
        help="replay every golden fixture through the vectorized array backend "
        "and assert byte-identity with the checked-in traces",
    )
    p.add_argument(
        "--backend",
        default="array",
        choices=["array", "auto", "reference"],
        help="Simulator backend to regenerate through (default: array)",
    )
    p.add_argument(
        "--golden",
        default=None,
        help="check a single golden case instead of all of them",
    )

    p = sub.add_parser(
        "rebalance",
        help="dynamic hotspot-shift workload: static placements vs LP-driven adaptive re-replication",
    )
    p.add_argument("--m", type=int, default=12)
    p.add_argument("--n", type=int, default=4000, help="number of requests")
    p.add_argument("--k", type=int, default=2, help="initial replication factor")
    p.add_argument("--s", type=float, default=1.5, help="Zipf shape of the hotspot popularity")
    p.add_argument("--lam", type=float, default=None,
                   help="constant arrival rate (default 0.55*m)")
    p.add_argument("--shift-at", type=float, default=None, dest="shift_at",
                   help="virtual time of the hotspot rotation (default mid-run)")
    p.add_argument("--rotation", type=int, default=None,
                   help="ring rotation applied at the shift (default m//2)")
    p.add_argument("--proc", type=float, default=1.0, help="processing time (virtual units)")
    p.add_argument("--strategy", default="overlapping", choices=["overlapping", "disjoint"],
                   help="initial placement family")
    p.add_argument("--policy", default="compare", choices=["compare", "static", "adaptive"],
                   help="compare races static-overlapping/static-disjoint/adaptive on one stream")
    p.add_argument(
        "--scheduler",
        default="eft-min",
        help="any registered zoo policy (see compare-schedulers --list)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cadence", type=float, default=25.0, help="virtual time between controller checks")
    p.add_argument("--window", type=float, default=50.0, help="popularity estimation window")
    p.add_argument("--headroom", type=float, default=0.75,
                   help="trigger fraction: rebalance when work rate > headroom * lambda*")
    p.add_argument("--warmup", type=float, default=2.0,
                   help="virtual-time penalty charged to each newly added replica")
    p.add_argument("--max-k", type=int, default=None, dest="max_k",
                   help="cap on any home's replica count (default: m)")
    p.add_argument("--max-rounds", type=int, default=8, dest="max_rounds",
                   help="greedy widen rounds per check")
    p.add_argument("--faults", default=None, metavar="PATH",
                   help="repro-faults JSON schedule to kill/revive machines mid-run")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="write the versioned rebalance trace (adaptive arm) as JSONL")

    def _endpoint_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--socket", default=None, metavar="PATH", help="unix socket endpoint")
        p.add_argument("--host", default="127.0.0.1", help="TCP host (with --port)")
        p.add_argument("--port", type=int, default=None, help="TCP port endpoint")

    def _workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--source", default="spec", choices=["spec", "kv"],
                       help="workload generator: WorkloadSpec or KeyValueStore request stream")
        p.add_argument("--m", type=int, default=4)
        p.add_argument("--n", type=int, default=200, help="number of requests")
        p.add_argument("--rate", type=float, default=100.0, help="Poisson arrivals per virtual unit")
        p.add_argument("--k", type=int, default=2, help="replication factor")
        p.add_argument("--strategy", default="overlapping", choices=["overlapping", "disjoint"])
        p.add_argument("--proc", type=float, default=0.01, help="processing time (virtual units)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--time-scale", type=float, default=1.0,
                       help="wall seconds per virtual time unit")

    p = sub.add_parser("serve", help="run the live dispatch service until a client sends shutdown")
    _endpoint_args(p)
    p.add_argument("--m", type=int, default=4)
    p.add_argument(
        "--scheduler",
        default="eft-min",
        help="any registered zoo policy (see compare-schedulers --list)",
    )
    p.add_argument("--seed", type=int, default=0, help="seed for randomised schedulers")
    p.add_argument("--slo", type=float, default=None,
                   help="shed requests whose estimated flow exceeds this (virtual units)")
    p.add_argument("--max-queue", type=int, default=None,
                   help="shed when every eligible machine has this many requests queued")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="wall seconds per virtual time unit")
    p.add_argument("--on-unavailable", default="park", choices=["park", "shed"],
                   help="requests whose whole machine set is down: hold or reject")
    p.add_argument("--snapshot", default=None, metavar="PATH",
                   help="write a canonical metrics snapshot here periodically and at exit")
    p.add_argument("--snapshot-every", type=float, default=1.0,
                   help="seconds between snapshots (with --snapshot)")
    p.add_argument("--faults", default=None, metavar="PATH",
                   help="repro-faults JSON schedule to kill/revive workers at runtime")
    p.add_argument("--journal", default=None, metavar="DIR",
                   help="write-ahead journal directory: every state transition is logged "
                   "before acking, and a restart with the same --journal recovers the "
                   "dispatcher exactly (crash-safe serve)")
    p.add_argument("--journal-fsync", default="commit", choices=["commit", "batch", "never"],
                   help="journal durability: fsync per committed op, per batch, or never")
    p.add_argument("--journal-snapshot-every", type=int, default=0, metavar="N",
                   help="compact the journal with a snapshot every N records (0: never)")

    p = sub.add_parser(
        "serve-sharded",
        help="run N dispatcher shards behind the interval-aware router on one endpoint",
    )
    _endpoint_args(p)
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--shards", type=int, default=2, help="number of dispatcher shards")
    p.add_argument("--align-k", type=int, default=None,
                   help="align shard boundaries to disjoint replication groups of this k "
                   "(zero cross-talk, Theorem 6); default: even intervals")
    p.add_argument(
        "--scheduler",
        default="eft-min",
        help="any registered zoo policy, per shard (see compare-schedulers --list)",
    )
    p.add_argument("--seed", type=int, default=0, help="base seed (shard s uses seed+s)")
    p.add_argument("--slo", type=float, default=None,
                   help="shard-local: shed requests whose estimated flow exceeds this")
    p.add_argument("--max-queue", type=int, default=None,
                   help="shard-local: shed when every eligible machine has this many queued")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="wall seconds per virtual time unit")
    p.add_argument("--on-unavailable", default="park", choices=["park", "shed"],
                   help="requests whose whole machine set is down fleet-wide: hold or reject")
    p.add_argument("--snapshot", default=None, metavar="PATH",
                   help="write the canonical fleet-rollup metrics snapshot here periodically")
    p.add_argument("--snapshot-every", type=float, default=1.0,
                   help="seconds between snapshots (with --snapshot)")
    p.add_argument("--faults", default=None, metavar="PATH",
                   help="repro-faults JSON schedule to kill/revive machines through the router")

    p = sub.add_parser(
        "route",
        help="print a shard plan: intervals, handoff sets, where a processing set lands",
    )
    p.add_argument("--m", type=int, default=6)
    p.add_argument("--shards", type=int, default=2, help="number of dispatcher shards")
    p.add_argument("--align-k", type=int, default=None,
                   help="align shard boundaries to disjoint replication groups of this k")
    p.add_argument("--strategy", default=None, choices=["overlapping", "disjoint"],
                   help="classify this replication family against the plan")
    p.add_argument("--k", type=int, default=2, help="replication factor (with --strategy)")
    p.add_argument("--set", default=None, metavar="J1,J2,...",
                   help="route this processing set (comma-separated 1-based machines)")

    p = sub.add_parser("drive", help="replay a generated workload against a running service")
    _endpoint_args(p)
    _workload_args(p)
    p.add_argument("--shutdown", action="store_true", help="shut the server down afterwards")

    p = sub.add_parser(
        "bench-serve",
        help="serve + drive over an in-process loopback socket (deterministic per seed)",
    )
    _workload_args(p)
    p.add_argument(
        "--scheduler",
        default="eft-min",
        help="any registered zoo policy (see compare-schedulers --list)",
    )
    p.add_argument("--slo", type=float, default=None,
                   help="shed requests whose estimated flow exceeds this (virtual units)")
    p.add_argument("--max-queue", type=int, default=None,
                   help="shed when every eligible machine has this many requests queued")
    p.add_argument("--faults", default=None, metavar="PATH",
                   help="repro-faults JSON schedule to kill/revive workers at runtime")
    p.add_argument("--metrics", default=None, metavar="PATH", help="write a metrics snapshot JSON")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="run N real server processes with client-side shard routing "
                   "(N=1 is the fair single-server baseline; disjoint plans keep the "
                   "digest identical to an unsharded run)")
    p.add_argument("--chaos", action="store_true",
                   help="with --shards: journalled servers under a supervisor, driven "
                   "through a seeded chaos proxy by the resilient client")
    p.add_argument("--chaos-seed", type=int, default=0, help="chaos fault-stream seed")
    p.add_argument("--chaos-drop", type=float, default=0.02,
                   help="per-frame probability of dropping the connection")
    p.add_argument("--chaos-truncate", type=float, default=0.01,
                   help="per-frame probability of a partial write then close")
    p.add_argument("--chaos-corrupt", type=float, default=0.02,
                   help="per-frame probability of flipping one body byte")
    p.add_argument("--chaos-duplicate", type=float, default=0.05,
                   help="per-frame probability of delivering the frame twice")
    p.add_argument("--chaos-latency", type=float, default=0.0,
                   help="upper bound (s) of a uniform per-frame delay")
    p.add_argument("--kill-shard", type=int, default=None, metavar="SID",
                   help="with --chaos: SIGKILL this shard's server mid-drive and let "
                   "the supervisor recover it from its journal")
    p.add_argument("--kill-after", type=float, default=0.5, metavar="FRAC",
                   help="when to kill, as a fraction of the workload's release span")
    p.add_argument("--recovery-out", default=None, metavar="PATH",
                   help="with --chaos: write recovery-time + fault stats JSON here")

    p = sub.add_parser(
        "compare-schedulers",
        help="run the scheduler zoo head-to-head on a shared seeded workload grid",
    )
    p.add_argument("--m", type=int, default=10)
    p.add_argument("--n", type=int, default=300, help="tasks per load point")
    p.add_argument("--k", type=int, default=3, help="replication factor")
    p.add_argument("--loads", default="0.7,0.9",
                   help="comma-separated cluster load points")
    p.add_argument("--policies", default="eft-min,srpt-ps,nc-setup,speed-eft",
                   help="comma-separated registry names (any registered policy)")
    p.add_argument("--strategy", default="overlapping", choices=["overlapping", "disjoint"])
    p.add_argument("--case", default="uniform", choices=["uniform", "worst", "shuffled"])
    p.add_argument("--size-dist", default="exp", dest="size_dist",
                   choices=["unit", "exp", "pareto", "uniform"],
                   help="request size distribution (non-unit keeps SRPT distinct from FIFO)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-faults", action="store_true", dest="no_faults",
                   help="disable the seeded chaos fault injection")
    p.add_argument("--mtbf", type=float, default=15.0, help="chaos mean time between failures")
    p.add_argument("--mttr", type=float, default=3.0, help="chaos mean time to repair")
    p.add_argument("--traces", default=None, metavar="DIR",
                   help="write one versioned trace per (policy, load) cell here")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the metric rows as JSON")
    p.add_argument("--list", action="store_true",
                   help="list the registered policies and exit")

    p = sub.add_parser("ratios", help="EFT vs exact OPT on random instances")
    p.add_argument("--m", type=int, default=8)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--trials", type=int, default=20)

    p = sub.add_parser("explore", help="future work: candidate replication strategies")
    p.add_argument("--m", type=int, default=15)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--s", type=float, default=1.0)

    p = sub.add_parser("tails", help="flow-time percentile breakdown (tail latency)")
    p.add_argument("--m", type=int, default=15)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--load", type=float, default=0.45)
    p.add_argument("--size-dist", default="unit", choices=["unit", "exp", "pareto", "uniform"])

    p = sub.add_parser("stability", help="LP capacity line as a dynamic phase boundary")
    p.add_argument("--m", type=int, default=15)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--strategy", default="disjoint", choices=["disjoint", "overlapping"])

    sub.add_parser("verify", help="self-check: verify every theorem claim empirically")

    p = sub.add_parser("all", help="run every experiment (quick scale) and write results to a directory")
    p.add_argument("--out", default="results", help="output directory")

    sub.add_parser("demo", help="30-second tour: EFT vs the adversary vs OPT")
    return parser


def _run_table1(args) -> str:
    from .experiments import table1

    return table1.run(args.m).to_text()


def _run_table2(args) -> str:
    from .experiments import table2

    return table2.run(m=args.m, k=args.k, p=args.p).to_text()


def _run_fig03(args) -> str:
    from .experiments import fig03

    return fig03.run(m=args.m, k=args.k).to_text()


def _run_fig08(args) -> str:
    from .experiments import fig08

    return fig08.run(m=args.m, s=args.s).to_text()


def _fig10_scale(args) -> dict:
    """Keyword arguments of ``fig10.build_campaign`` for the CLI scale."""
    kw = dict(m=args.m, rng_seed=args.seed if args.seed is not None else 1234)
    if args.quick:
        kw.update(
            s_values=np.arange(0.0, 5.01, 0.5),
            k_values=np.array(sorted({k for k in (1, 2, 3, 4, 6, 8, 11, args.m) if k <= args.m})),
            n_permutations=25,
        )
    else:
        kw.update(n_permutations=100)
    return kw


def _fig11_scale(args) -> dict:
    """Keyword arguments of ``fig11.build_campaign`` for the CLI scale."""
    kw = dict(m=args.m, k=getattr(args, "k", 3), rng_seed=args.seed if args.seed is not None else 2022)
    if args.quick:
        kw.update(n=3000, repeats=3)
    else:
        kw.update(n=10_000, repeats=10)
    return kw


def _write_figure_metrics(result, args, figure: str) -> str:
    """Write ``result.metrics()`` to ``args.metrics``; returns a
    status line for the CLI output."""
    from .obs import write_metrics

    path = write_metrics(result.metrics(), args.metrics, meta={"figure": figure})
    return f"metrics: {path}"


def _run_fig10(args) -> str:
    from .experiments import fig10

    result = fig10.run(n_jobs=args.jobs, **_fig10_scale(args))
    lines = [result.to_text()]
    if args.metrics:
        lines.append(_write_figure_metrics(result, args, "fig10"))
    return "\n".join(lines)


def _run_fig11(args) -> str:
    from .experiments import fig11

    result = fig11.run(n_jobs=args.jobs, **_fig11_scale(args))
    lines = [result.to_text()]
    if args.metrics:
        lines.append(_write_figure_metrics(result, args, "fig11"))
    return "\n".join(lines)


def _run_campaign(args) -> tuple[str, int]:
    """The ``campaign`` subcommand: build the spec, run it with
    caching and resilience options, render the figure, write result +
    manifest.

    Exit codes: 0 on success, 1 if any unit failed (summary on
    stderr), 2 on a ``--resume`` precondition error, 130 after SIGINT
    (a valid partial manifest is flushed first — the resume point).
    """
    from pathlib import Path

    from .campaigns import (
        CampaignInterrupted,
        ResultCache,
        RetryPolicy,
        build_manifest,
        load_manifest,
        run_campaign,
        write_manifest,
    )
    from .experiments import fig10, fig11

    if args.name == "fig10":
        kw = _fig10_scale(args)
        if args.permutations is not None:
            kw["n_permutations"] = args.permutations
        spec, assemble = fig10.build_campaign(**kw)
    else:
        kw = _fig11_scale(args)
        if args.n is not None:
            kw["n"] = args.n
        if args.repeats is not None:
            kw["repeats"] = args.repeats
        spec, assemble = fig11.build_campaign(**kw)

    cache = None if args.no_cache else ResultCache(args.cache_dir or "results/.cache")
    manifest_path = Path(args.out) / f"{args.name}.manifest.json" if args.out else None

    if args.resume:
        # Resuming means "finish that run": the manifest must exist and
        # describe this exact spec; executed units then hit the cache.
        if manifest_path is None or cache is None:
            print("campaign --resume requires --out and a cache (no --no-cache)", file=sys.stderr)
            return "", 2
        if not manifest_path.exists():
            print(f"campaign --resume: no manifest at {manifest_path}", file=sys.stderr)
            return "", 2
        prev = load_manifest(manifest_path)
        if prev.spec_hash != spec.spec_hash():
            print(
                f"campaign --resume: manifest {manifest_path} is for spec "
                f"{prev.spec_hash}, current arguments give {spec.spec_hash()} "
                "— pass the same scale flags as the interrupted run",
                file=sys.stderr,
            )
            return "", 2

    def _flush(campaign, lines):
        if manifest_path is not None:
            manifest_path.parent.mkdir(parents=True, exist_ok=True)
            write_manifest(build_manifest(campaign), manifest_path)
            lines.append(f"wrote {manifest_path}")

    try:
        campaign = run_campaign(
            spec,
            n_jobs=args.jobs,
            cache=cache,
            raise_on_error=False,
            timeout=args.timeout,
            retry=RetryPolicy(retries=args.retries, backoff=args.backoff),
        )
    except CampaignInterrupted as interrupt:
        # Flush the partial manifest so `--resume` has its resume point.
        campaign = interrupt.result
        lines = [campaign.summary()]
        _flush(campaign, lines)
        print("interrupted — resume with: "
              f"repro campaign {args.name} ... --resume", file=sys.stderr)
        return "\n".join(lines), 130

    lines = []
    if campaign.n_failed:
        # No figure from partial data: report, persist, exit non-zero.
        lines.append(campaign.summary())
        _flush(campaign, lines)
        print(campaign.summary(), file=sys.stderr)
        for o in campaign.failures():
            print(f"  FAILED {o.unit.label or o.unit_hash} "
                  f"({o.attempts} attempt(s)): {o.error}", file=sys.stderr)
        return "\n".join(lines), 1

    text = assemble(campaign.results()).to_text()
    lines = [text, "", campaign.summary()]
    if args.metrics:
        from .obs import campaign_metrics, write_metrics

        # Derived purely from the unit results in unit order, so the
        # snapshot is byte-identical for any -j and any cache state.
        registry = campaign_metrics(spec, campaign.results())
        path = write_metrics(
            registry,
            args.metrics,
            meta={"campaign": spec.name, "spec_hash": spec.spec_hash()},
        )
        lines.append(f"metrics: {path}")
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{args.name}.txt").write_text(text + "\n")
        lines.append(f"wrote {out / (args.name + '.txt')}")
        _flush(campaign, lines)
    return "\n".join(lines), 0


def _run_faulted(args) -> str:
    from .experiments import faulted

    result = faulted.run(
        m=args.m,
        k=args.k,
        n=args.n,
        load=args.load,
        mtbf=args.mtbf,
        mttr=args.mttr,
        policy=args.policy,
        seed=args.seed,
    )
    lines = [result.to_text()]
    if args.metrics:
        lines.append(_write_figure_metrics(result, args, "faulted"))
    return "\n".join(lines)


def _sniff_trace_format(path: str) -> str | None:
    """Read the ``format`` field of a trace file's header line, or
    ``None`` when the file does not start with a JSON header."""
    import json
    from pathlib import Path

    try:
        with Path(path).open() as fh:
            header = json.loads(fh.readline())
    except (OSError, ValueError):
        return None
    return header.get("format") if isinstance(header, dict) else None


def _replay_rebalance(args) -> str | tuple[str, int]:
    """``replay`` on a rebalance trace: re-run the recorded experiment
    from the header meta and byte-compare the fresh trace."""
    from .rebalance import load_rebalance_trace, replay_rebalance

    if args.scheduler is not None:
        raise SystemExit(
            "replay: --scheduler does not apply to rebalance traces — the "
            "recorded scheduler is part of the determinism contract"
        )
    trace = load_rebalance_trace(args.trace)
    result, identical = replay_rebalance(trace)
    lines = [
        f"rebalance trace: {args.trace} (m={trace.m}, policy={trace.policy}, "
        f"scheduler={trace.scheduler}, seed={trace.seed})",
        f"events: {trace.n_events} check(s), {trace.n_triggered} triggered, "
        f"final placement version {trace.final_version}",
        f"replayed  p99={result.flow['p99']:.6g}  max={result.flow['max']:.6g}  "
        f"digest={result.digest[:16]}",
        f"byte-identical replay: {'yes' if identical else 'no'}",
    ]
    return "\n".join(lines) if identical else ("\n".join(lines), 1)


def _run_replay(args) -> str | tuple[str, int]:
    """The ``replay`` subcommand: load a trace, re-run its workload
    through a scheduler and compare against the recorded placements.
    Rebalance traces (sniffed from the header) re-run the whole
    recorded experiment and byte-compare instead."""
    from .campaigns import goldens as goldens_mod
    from .campaigns import load_trace, make_scheduler, replay_into

    if (args.trace is None) == (args.golden is None):
        raise SystemExit("replay: provide exactly one of a trace path or --golden NAME")
    if args.trace is not None:
        from .rebalance.events import REBALANCE_TRACE_FORMAT

        if _sniff_trace_format(args.trace) == REBALANCE_TRACE_FORMAT:
            return _replay_rebalance(args)
    if args.golden is not None:
        trace = goldens_mod.load_golden(args.golden)
        source = f"golden {args.golden}"
    else:
        trace = load_trace(args.trace)
        source = args.trace
    recorded = trace.schedule()
    name = args.scheduler or (trace.scheduler or "eft-min")
    scheduler = make_scheduler(name, trace.m, seed=args.seed)
    replayed = replay_into(scheduler, trace)
    match = recorded.same_placements(replayed)
    lines = [
        f"trace: {source} (m={trace.m}, n={trace.n}, recorded by {trace.scheduler or 'unknown'})",
        f"replayed with: {scheduler.name}",
        f"recorded  Fmax={recorded.max_flow:.6g}  mean flow={recorded.mean_flow:.6g}",
        f"replayed  Fmax={replayed.max_flow:.6g}  mean flow={replayed.mean_flow:.6g}",
        f"placements match recorded trace: {'yes' if match else 'no'}",
    ]
    return "\n".join(lines)


def _run_vec_check(args) -> str | tuple[str, int]:
    """The ``vec-check`` subcommand: the array-engine byte-identity
    gate.  Regenerates every golden fixture through
    ``Simulator(backend=...)`` and compares the serialised trace
    byte-for-byte against the checked-in file; any drift (including a
    broken silent fallback for the EFT-Rand golden) exits non-zero."""
    from .campaigns import goldens as goldens_mod
    from .simulation import Simulator
    from .simulation.workload import WorkloadSpec, generate_workload

    names = [args.golden] if args.golden else sorted(goldens_mod.GOLDEN_CASES)
    lines = [f"array-engine byte-identity check (backend={args.backend})"]
    failed = 0
    for name in names:
        case = goldens_mod.GOLDEN_CASES[name]
        scheduler = case.make_scheduler()
        sim = Simulator(scheduler, backend=args.backend)
        sim.add_instance(case.make_instance())
        sim.run()
        engine = sim.backend_used or "?"
        note = f" ({sim.fallback_reason})" if sim.fallback_reason else ""
        try:
            goldens_mod.check_golden(name, backend=args.backend)
        except goldens_mod.GoldenMismatch as exc:
            failed += 1
            lines.append(f"  {name:<22} FAIL via {engine}{note}: {exc}")
        else:
            lines.append(f"  {name:<22} ok   via {engine}{note}")
    # Cross-backend parity on a fresh workload, beyond the fixtures.
    spec = WorkloadSpec(m=10, n=600, lam=0.6 * 10, k=3, strategy="overlapping")
    inst = generate_workload(spec, rng=42)
    results = {}
    for backend in ("reference", args.backend):
        from .core import EFT

        sim = Simulator(EFT(10, tiebreak="min"), backend=backend)
        sim.add_instance(inst)
        results[backend] = sim.run()
    ref, alt = results["reference"], results[args.backend]
    parity = (
        ref.max_flow == alt.max_flow
        and ref.mean_flow == alt.mean_flow
        and ref.schedule.same_placements(alt.schedule, tol=0.0)
    )
    if not parity:
        failed += 1
    lines.append(
        f"  {'fresh-workload parity':<22} {'ok' if parity else 'FAIL'}   "
        f"(m=10, n=600, bit-exact fields)"
    )
    lines.append(f"{len(names) + 1 - failed}/{len(names) + 1} checks passed")
    return ("\n".join(lines), 0 if failed == 0 else 1)


def _run_rebalance(args) -> str:
    """The ``rebalance`` subcommand: run the hotspot-shift scenario
    under one policy or race all three arms on the same stream."""
    from dataclasses import replace
    from pathlib import Path

    from .rebalance import RebalanceConfig, dumps_rebalance_trace, run_rebalance
    from .rebalance.units import default_spec

    params = {
        "m": args.m,
        "n": args.n,
        "k": args.k,
        "s": args.s,
        "strategy": args.strategy,
        "proc": args.proc,
    }
    if args.lam is not None:
        params["lam"] = args.lam
    if args.shift_at is not None:
        params["shift_at"] = args.shift_at
    if args.rotation is not None:
        params["rotation"] = args.rotation
    spec = default_spec(params)
    config = RebalanceConfig(
        cadence=args.cadence,
        window=args.window,
        headroom=args.headroom,
        warmup=args.warmup,
        max_k=args.max_k,
        max_rounds=args.max_rounds,
    )
    faults = _load_faults(args.faults)

    shift_at = spec.popularity.shifts[0][0] if getattr(spec.popularity, "shifts", None) else None
    lines = [
        f"hotspot-shift workload: m={spec.m} n={spec.n} k={spec.k} "
        f"s={args.s:g} lam={spec.rate.rate(0.0):g}"
        + (f" shift@{shift_at:g}" if shift_at is not None else ""),
    ]
    if args.policy == "compare":
        arms = [
            ("static-overlapping", replace(spec, strategy="overlapping"), "static"),
            ("static-disjoint", replace(spec, strategy="disjoint"), "static"),
            ("adaptive", replace(spec, strategy="overlapping"), "adaptive"),
        ]
    else:
        arms = [(args.policy, spec, args.policy)]
    results = {
        name: run_rebalance(
            arm_spec,
            policy=policy,
            config=config,
            scheduler=args.scheduler,
            seed=args.seed,
            faults=faults,
        )
        for name, arm_spec, policy in arms
    }
    lines.append(
        f"{'policy':<20} {'p50':>8} {'p95':>8} {'p99':>8} {'max':>8} "
        f"{'rebal':>6} {'moved':>6}"
    )
    for name, r in results.items():
        lines.append(
            f"{name:<20} {r.flow['p50']:>8.3f} {r.flow['p95']:>8.3f} "
            f"{r.flow['p99']:>8.3f} {r.flow['max']:>8.3f} "
            f"{r.n_rebalances:>6d} {r.n_migrated:>6d}"
        )
    if args.policy == "compare":
        adaptive = results["adaptive"]
        best_static = min(
            results["static-overlapping"].flow["p99"],
            results["static-disjoint"].flow["p99"],
        )
        wins = adaptive.flow["p99"] < best_static
        lines.append(f"adaptive beats both static p99: {'yes' if wins else 'no'}")
    traced = results.get("adaptive") or next(iter(results.values()))
    lines.append(f"assignments sha256 ({traced.policy}): {traced.digest}")
    if args.events:
        path = Path(args.events)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dumps_rebalance_trace(traced.trace))
        lines.append(f"events: {path}")
    return "\n".join(lines)


def _check_endpoint(verb: str, args) -> None:
    if (args.socket is None) == (args.port is None):
        raise SystemExit(f"{verb}: provide exactly one endpoint — --socket PATH or --port N")


def _load_faults(path: str | None):
    if path is None:
        return None
    from pathlib import Path

    from .faults.schedule import FaultSchedule

    return FaultSchedule.from_json(Path(path).read_text())


#: exit code of ``serve``/``serve-sharded`` on an already-bound
#: endpoint — distinct from generic failure so wrappers can tell
#: "pick another socket" from "the service crashed".
EXIT_ADDRESS_IN_USE = 4


def _run_serve(args):
    import asyncio
    import json

    from .serve import AddressInUseError, ServeConfig, serve

    _check_endpoint("serve", args)
    config = ServeConfig(
        m=args.m,
        scheduler=args.scheduler,
        seed=args.seed,
        slo=args.slo,
        max_queue_depth=args.max_queue,
        time_scale=args.time_scale,
        on_unavailable=args.on_unavailable,
        snapshot_path=args.snapshot,
        snapshot_every=args.snapshot_every,
        journal_dir=args.journal,
        journal_fsync=args.journal_fsync,
        journal_snapshot_every=args.journal_snapshot_every,
    )
    try:
        stats = asyncio.run(
            serve(
                config,
                socket_path=args.socket,
                host=args.host if args.socket is None else None,
                port=args.port,
                faults=_load_faults(args.faults),
            )
        )
    except AddressInUseError as exc:
        return f"serve: {exc}", EXIT_ADDRESS_IN_USE
    return "final stats:\n" + json.dumps(stats, indent=2, sort_keys=True)


def _run_serve_sharded(args):
    import asyncio
    import json

    from .serve import AddressInUseError, ShardServeConfig, serve_sharded

    _check_endpoint("serve-sharded", args)
    config = ShardServeConfig(
        m=args.m,
        shards=args.shards,
        scheduler=args.scheduler,
        seed=args.seed,
        align_k=args.align_k,
        slo=args.slo,
        max_queue_depth=args.max_queue,
        time_scale=args.time_scale,
        on_unavailable=args.on_unavailable,
        snapshot_path=args.snapshot,
        snapshot_every=args.snapshot_every,
    )
    try:
        stats = asyncio.run(
            serve_sharded(
                config,
                socket_path=args.socket,
                host=args.host if args.socket is None else None,
                port=args.port,
                faults=_load_faults(args.faults),
            )
        )
    except AddressInUseError as exc:
        return f"serve-sharded: {exc}", EXIT_ADDRESS_IN_USE
    return "final stats:\n" + json.dumps(stats, indent=2, sort_keys=True)


def _run_route(args) -> str:
    from .serve import ShardPlan

    if args.align_k is not None:
        plan = ShardPlan.aligned(args.m, args.align_k, args.shards)
    else:
        plan = ShardPlan.even(args.m, args.shards)
    lines = [plan.describe()]
    if args.strategy is not None:
        from .psets.replication import get_strategy

        strat = get_strategy(args.strategy, args.m, args.k)
        family = [strat.replicas(u) for u in range(1, args.m + 1)]
        if plan.is_disjoint_for(family):
            lines.append(
                f"{args.strategy}(k={args.k}): disjoint on this plan — "
                "zero cross-talk (Theorem 6 composition)"
            )
        else:
            handoff = plan.handoff_sets(family)
            sets = ", ".join("{" + ",".join(map(str, sorted(s))) + "}" for s in handoff)
            lines.append(
                f"{args.strategy}(k={args.k}): {len(handoff)} handoff set(s) "
                f"straddle a boundary: {sets}"
            )
    if args.set is not None:
        try:
            s = frozenset(int(x) for x in args.set.split(","))
        except ValueError as exc:
            raise SystemExit(f"route: malformed --set {args.set!r}: {exc}") from exc
        r = plan.route(s)
        if r.is_local:
            lines.append(f"set {sorted(s)} -> shard {r.owner} (local)")
        else:
            frags = ", ".join(f"shard {sid}: {sorted(f)}" for sid, f in r.fragments)
            lines.append(f"set {sorted(s)} -> owner shard {r.owner}; fragments: {frags}")
    return "\n".join(lines)


def _run_drive(args) -> str:
    import asyncio

    from .serve import build_drive_instance, drive

    _check_endpoint("drive", args)
    instance = build_drive_instance(
        source=args.source,
        m=args.m,
        n=args.n,
        rate=args.rate,
        k=args.k,
        strategy=args.strategy,
        proc=args.proc,
        seed=args.seed,
    )
    report = asyncio.run(
        drive(
            instance,
            socket_path=args.socket,
            host=args.host if args.socket is None else None,
            port=args.port,
            time_scale=args.time_scale,
            target_rate=args.rate,
            shutdown=args.shutdown,
        )
    )
    return report.to_text()


def _run_bench_serve(args) -> str:
    from .serve import ServeConfig, build_drive_instance, run_loopback_sync

    instance = build_drive_instance(
        source=args.source,
        m=args.m,
        n=args.n,
        rate=args.rate,
        k=args.k,
        strategy=args.strategy,
        proc=args.proc,
        seed=args.seed,
    )
    if args.chaos and args.shards is None:
        raise SystemExit("bench-serve --chaos requires --shards")
    if args.shards is not None:
        if args.slo is not None or args.max_queue is not None or args.faults or args.metrics:
            raise SystemExit(
                "bench-serve --shards does not support --slo/--max-queue/--faults/--metrics"
            )
        from .serve import plan_for_instance, run_sharded_loopback_sync

        plan = plan_for_instance(instance, args.shards)
        if args.chaos:
            import json

            from .chaos import ChaosConfig
            from .serve import run_chaos_loopback_sync

            result = run_chaos_loopback_sync(
                instance,
                args.shards,
                scheduler=args.scheduler,
                seed=args.seed,
                time_scale=args.time_scale,
                target_rate=args.rate,
                plan=plan,
                chaos=ChaosConfig(
                    seed=args.chaos_seed,
                    p_drop=args.chaos_drop,
                    p_truncate=args.chaos_truncate,
                    p_corrupt=args.chaos_corrupt,
                    p_duplicate=args.chaos_duplicate,
                    latency=args.chaos_latency,
                ),
                kill_shard=args.kill_shard,
                kill_after=args.kill_after,
            )
            lines = [plan.describe(), result.to_text()]
            if args.recovery_out:
                with open(args.recovery_out, "w", encoding="utf-8") as fh:
                    json.dump(result.to_json(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                lines.append(f"recovery stats: {args.recovery_out}")
            return "\n".join(lines)
        report = run_sharded_loopback_sync(
            instance,
            args.shards,
            scheduler=args.scheduler,
            seed=args.seed,
            time_scale=args.time_scale,
            target_rate=args.rate,
            plan=plan,
        )
        return "\n".join([plan.describe(), report.to_text()])
    config = ServeConfig(
        m=args.m,
        scheduler=args.scheduler,
        seed=args.seed,
        slo=args.slo,
        max_queue_depth=args.max_queue,
        time_scale=args.time_scale,
    )
    report = run_loopback_sync(
        instance,
        config,
        target_rate=args.rate,
        faults=_load_faults(args.faults),
        metrics_path=args.metrics,
    )
    lines = [report.to_text()]
    if args.metrics:
        lines.append(f"metrics: {args.metrics}")
    return "\n".join(lines)


def _run_ratios(args) -> str:
    from .experiments import ratios

    return ratios.run(m=args.m, k=args.k, trials=args.trials).to_text()


def _run_explore(args) -> str:
    from .explore import evaluate_strategies

    return evaluate_strategies(m=args.m, k=args.k, s=args.s).to_text()


def _run_tails(args) -> str:
    from .experiments import tails

    return tails.run(
        m=args.m, k=args.k, load=args.load, size_dist=args.size_dist
    ).to_text()


def _run_stability(args) -> str:
    from .experiments import stability

    return stability.run(m=args.m, k=args.k, strategy=args.strategy).to_text()


def _run_verify(args) -> str:
    from .experiments import verify

    return verify.run().to_text()


def _run_all(args) -> str:
    """Regenerate every table/figure at quick scale into --out."""
    from pathlib import Path

    from .experiments import fig03, fig08, fig10, fig11, ratios, stability, table1, table2, tails, verify

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    jobs = {
        "table1.txt": lambda: table1.run(15).to_text(),
        "table2.txt": lambda: table2.run(m=16, k=3, p=1000).to_text(),
        "fig03.txt": lambda: fig03.run().to_text(),
        "fig08.txt": lambda: fig08.run().to_text(),
        "fig10.txt": lambda: fig10.run(
            m=15,
            s_values=np.arange(0.0, 5.01, 0.5),
            k_values=np.array([1, 2, 3, 4, 6, 8, 11, 15]),
            n_permutations=25,
        ).to_text(),
        "fig11.txt": lambda: fig11.run(m=15, k=3, n=3000, repeats=3).to_text(),
        "ratios.txt": lambda: ratios.run().to_text(),
        "tails.txt": lambda: tails.run().to_text(),
        "stability.txt": lambda: stability.run().to_text(),
        "verify.txt": lambda: verify.run().to_text(),
    }
    lines = []
    for name, job in jobs.items():
        text = job()
        (out / name).write_text(text + "\n")
        lines.append(f"wrote {out / name}")
    return "\n".join(lines)


def _run_demo(args) -> str:
    from .adversaries import EFTIntervalAdversary, optimal_adversary_schedule
    from .core import EFT, Instance, eft_schedule, render_gantt

    lines = []
    inst = Instance.build(
        4,
        releases=[0, 0, 0, 1, 1, 2],
        procs=1.0,
        machine_sets=[{1, 2}, {1, 2}, {2, 3}, {3, 4}, {1, 2}, {2, 3}],
    )
    sched = eft_schedule(inst, tiebreak="min")
    lines.append("EFT-Min on six replicated requests (m=4, k=2):")
    lines.append(render_gantt(sched))
    m, k = 6, 3
    result = EFTIntervalAdversary(m, k).run(lambda mm: EFT(mm, tiebreak="min"))
    lines.append("")
    lines.append(
        f"Theorem 8 adversary (m={m}, k={k}): EFT-Min forced to Fmax = "
        f"{result.fmax:g} = m-k+1, while the optimum keeps every flow at 1:"
    )
    lines.append(render_gantt(optimal_adversary_schedule(m, k, 4), until=5))
    return "\n".join(lines)


def _run_compare_schedulers(args) -> str:
    import json as _json
    from pathlib import Path

    from .schedulers import CompareConfig, list_schedulers, run_compare

    if args.list:
        lines = ["registered policies:"]
        for info in list_schedulers():
            flags = []
            if info["preemptive"]:
                flags.append("preemptive")
            if not info["clairvoyant"]:
                flags.append("non-clairvoyant")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            lines.append(f"  {info['name']:<12} {info['summary']}{suffix}")
        return "\n".join(lines)
    config = CompareConfig(
        m=args.m,
        n=args.n,
        k=args.k,
        loads=tuple(float(x) for x in args.loads.split(",") if x),
        policies=tuple(x.strip() for x in args.policies.split(",") if x.strip()),
        strategy=args.strategy,
        case=args.case,
        size_dist=args.size_dist,
        seed=args.seed,
        faults=not args.no_faults,
        mtbf=args.mtbf,
        mttr=args.mttr,
    )
    trace_dir = Path(args.traces) if args.traces else None
    out = run_compare(config, trace_dir=trace_dir)
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(
                {"config": vars(args) | {}, "rows": out["rows"], "sanity": out["sanity"]},
                indent=2,
                sort_keys=True,
                default=str,
            )
            + "\n"
        )
    return out["text"]


_HANDLERS = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig03": _run_fig03,
    "fig08": _run_fig08,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "campaign": _run_campaign,
    "faulted": _run_faulted,
    "replay": _run_replay,
    "vec-check": _run_vec_check,
    "rebalance": _run_rebalance,
    "serve": _run_serve,
    "serve-sharded": _run_serve_sharded,
    "route": _run_route,
    "drive": _run_drive,
    "bench-serve": _run_bench_serve,
    "compare-schedulers": _run_compare_schedulers,
    "ratios": _run_ratios,
    "explore": _run_explore,
    "tails": _run_tails,
    "stability": _run_stability,
    "verify": _run_verify,
    "all": _run_all,
    "demo": _run_demo,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Handlers return either the output text (exit 0) or a
    ``(text, code)`` pair — ``campaign`` uses the latter to signal
    failed units (1), resume errors (2) and interruption (130)."""
    args = build_parser().parse_args(argv)
    output = _HANDLERS[args.command](args)
    code = 0
    if isinstance(output, tuple):
        output, code = output
    if output:
        print(output)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
