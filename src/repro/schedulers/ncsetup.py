"""NC-Setup — non-clairvoyant scheduling with per-machine setup times.

Mäcker et al. (PAPERS.md) study online machine minimisation and
max-flow with *setup times*: a machine must pay a fixed setup
:math:`s` before serving work it is not configured for.  In the serve
tier this models **replica cache warmup** — a replica newly added to a
key's processing set serves its first request from cold storage.

The policy is non-clairvoyant (``clairvoyant = False``): it never
reads ``task.proc`` to decide.  It ranks eligible machines by the
observable pair *(outstanding requests, cold penalty)*:

.. math::

    \\text{score}(j) = q_j + [j \\text{ cold for } T_i] \\cdot s

with ties broken by index — a least-outstanding-requests rule that
charges cold machines ``s`` phantom requests' worth of reluctance.
The *system* model: the first task of each key group on a machine pays
``setup`` extra service time (the warmup), recorded through the
``exec_time`` hook so the analytic books, the engine, and the serve
tier all see the realised times.

Warm state is keyed ``(machine, task.key)``; unkeyed tasks share one
pseudo-key (the machine warms once).  A rebalance that widens replica
sets invalidates the warm state of the added machines via
:meth:`NCSetup.on_replicas_added` — the
:meth:`repro.serve.dispatcher.Dispatcher.apply_placement` integration —
so migration is not free.
"""

from __future__ import annotations

from ..core.nonclairvoyant import _OutstandingTracker
from ..core.task import Task

__all__ = ["NCSetup"]


class NCSetup(_OutstandingTracker):
    """Non-clairvoyant least-outstanding dispatch with setup times."""

    clairvoyant = False

    def __init__(self, m: int, setup: float = 1.0) -> None:
        super().__init__(m)
        if setup < 0:
            raise ValueError("setup must be non-negative")
        self.setup = float(setup)
        #: keys each machine is warm for (has served at least once)
        self.warm: dict[int, set] = {j: set() for j in range(1, m + 1)}
        #: total setup time paid so far (observability)
        self.setup_paid = 0.0
        self.name = f"NC-Setup(s={self.setup:g})"

    @staticmethod
    def _key_of(task: Task):
        # Unkeyed tasks share one pseudo-key: the machine warms once.
        return task.key if task.key is not None else ()

    def is_warm(self, machine: int, task: Task) -> bool:
        """Whether ``machine`` is configured (cache-warm) for ``task``."""
        return self._key_of(task) in self.warm[machine]

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        eligible = sorted(task.eligible(self.m))
        counts = self.outstanding(task.release)
        machine = min(
            eligible,
            key=lambda j: (counts[j] + (0.0 if self.is_warm(j, task) else self.setup), j),
        )
        return machine, frozenset(eligible)

    def exec_time(self, task: Task, machine: int) -> float:
        """Realised service: ``proc`` plus the warmup on a cold
        machine; marks the machine warm and records the in-flight
        completion for the outstanding counts."""
        dur = task.proc
        if not self.is_warm(machine, task):
            dur += self.setup
            self.setup_paid += self.setup
            self.warm[machine].add(self._key_of(task))
        start = max(task.release, self.completions[machine])
        self._record_dispatch(machine, start + dur)
        return dur

    # -- rebalance integration --------------------------------------------
    def on_replicas_added(self, machines, now: float) -> None:
        """A rebalance widened replica sets onto ``machines``: their
        caches are cold again, so the next task of every key pays the
        warmup on them."""
        for j in machines:
            if j in self.warm:
                self.warm[j].clear()
