"""Speed-EFT — speed-aware earliest finish time on related machines.

Bansal & Kulkarni (and Bansal & Cloostermans, Table 1's ``Q`` rows)
study flow time on related machines.  :class:`SpeedEFT` promotes the
``repro.related`` Greedy scheduler to a first-class zoo policy: it
*is* :class:`~repro.related.GreedyRelated` — same lowering path, same
core :class:`~repro.core.dispatch.ImmediateDispatchScheduler` driver,
speeds expressed solely through the ``exec_time`` hook — wrapped in a
registry-friendly constructor.

``task.proc`` is interpreted as *work*; the realised execution time on
machine :math:`j` is :math:`w_i / s_j`.  Placement minimises the
finish time :math:`\\max(r_i, C_j) + w_i/s_j` (ties: faster machine,
then lower index), which with unit speeds coincides with EFT-Min.
The default cluster is a two-tier fleet — a quarter of the machines
run at ``speedup`` — the smallest configuration where speed-awareness
visibly beats speed-blind EFT.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..related.model import SpeedCluster
from ..related.schedulers import GreedyRelated

__all__ = ["SpeedEFT"]


class SpeedEFT(GreedyRelated):
    """Speed-aware EFT (Greedy on related machines) for the registry.

    Parameters
    ----------
    m:
        Number of machines.
    speeds:
        Optional explicit speed vector (length ``m``) or a
        :class:`~repro.related.SpeedCluster`.  Default: two-tier with
        ``max(1, m // 4)`` machines at ``speedup``, the rest at 1.
    speedup:
        Fast-tier speed of the default cluster.
    """

    def __init__(
        self,
        m: int,
        speeds: Sequence[float] | SpeedCluster | None = None,
        speedup: float = 4.0,
    ) -> None:
        if speeds is None:
            cluster = SpeedCluster.two_tier(m, fast=max(1, m // 4), speedup=speedup)
        elif isinstance(speeds, SpeedCluster):
            cluster = speeds
        else:
            cluster = SpeedCluster(np.asarray(speeds, dtype=float))
        if cluster.m != m:
            raise ValueError(f"speeds have m={cluster.m}, scheduler wants m={m}")
        super().__init__(cluster)
        self.name = "Speed-EFT"
