"""The ``SchedulingPolicy`` contract — what a zoo policy must provide.

Every policy in the registry is an
:class:`~repro.core.dispatch.ImmediateDispatchScheduler`: the paper's
Immediate Dispatch property (Section 3) is the one structural
assumption the whole stack — simulator, serve tier, shard router,
fault injection, campaigns — is built on.  The base class is the
contract; this module documents the hooks and provides a structural
checker the registry applies at registration time.

Required surface (provided or overridden on the base class)
-----------------------------------------------------------

``choose(task) -> (machine, tie_set)``
    The placement decision.  ``machine`` must be in ``task.eligible(m)``
    (the driver enforces it); ``tie_set`` is the reported candidate set
    (EFT's :math:`U'_i` of Equation (2); baselines report the full
    eligible set).

``exec_time(task, machine) -> float``
    The realised service time of the task on the chosen machine.
    Identical machines return ``task.proc``; related machines divide
    work by speed; setup-time models add a warmup penalty on cold
    machines.  Called exactly once per dispatch, *after* ``choose`` —
    implementations may update warm/feedback state here.  When the
    result differs from ``task.proc`` the driver records it in the
    sparse ``_service`` book, and both the analytic ``schedule()`` and
    the engine build *derived* instances over realised times.

``preemptive`` (class attribute, default ``False``)
    Whether the engine should preempt running tasks.  Preemptive
    policies must also provide::

        preempt_key(task, remaining, now) -> orderable

    an orderable priority the engine *minimises* over a machine's
    queued-plus-running tasks at every PREEMPT re-evaluation
    (``remaining`` is the task's remaining service time).  The engine
    preempts only on a strictly smaller key, so equal-priority tasks
    never thrash.  Preemption is machine-local: a preempted task keeps
    its machine assignment and its residual work cannot migrate.

``clairvoyant`` (class attribute, default ``True``)
    Whether ``choose`` reads ``task.proc``.  Non-clairvoyant policies
    decide from observable state only; they may still use the realised
    processing time inside ``exec_time`` (the *system* experiences the
    service time either way).

Optional surface
----------------

``on_replicas_added(machines, now)``
    Called by :meth:`repro.serve.dispatcher.Dispatcher.apply_placement`
    when a rebalance widens replica sets onto ``machines``.  Setup-time
    policies invalidate their warm state here so newly-widened replicas
    pay the warmup penalty again.

``name`` (instance or class attribute)
    Human-readable policy name, recorded in trace headers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dispatch import ImmediateDispatchScheduler

__all__ = ["PolicyInfo", "check_policy", "policy_info"]


@dataclass(frozen=True, slots=True)
class PolicyInfo:
    """Static description of a registered policy (for ``list`` output
    and the comparison table header)."""

    key: str
    #: display name of a freshly built instance (``scheduler.name``)
    display: str
    preemptive: bool
    clairvoyant: bool
    summary: str


def check_policy(cls: type) -> None:
    """Structural contract check applied at registration time.

    Raises :class:`TypeError` on violations — a policy that is not an
    ``ImmediateDispatchScheduler``, or a preemptive policy without a
    callable ``preempt_key``.
    """
    if not (isinstance(cls, type) and issubclass(cls, ImmediateDispatchScheduler)):
        raise TypeError(
            f"{cls!r} is not an ImmediateDispatchScheduler subclass; "
            "the zoo contract requires the immediate-dispatch driver"
        )
    if getattr(cls, "preemptive", False) and not callable(
        getattr(cls, "preempt_key", None)
    ):
        raise TypeError(
            f"{cls.__name__} declares preemptive=True but has no callable "
            "preempt_key(task, remaining, now)"
        )


def policy_info(key: str, scheduler: ImmediateDispatchScheduler, summary: str = "") -> PolicyInfo:
    """Describe a built scheduler instance."""
    return PolicyInfo(
        key=key,
        display=getattr(scheduler, "name", type(scheduler).__name__),
        preemptive=bool(getattr(scheduler, "preemptive", False)),
        clairvoyant=bool(getattr(scheduler, "clairvoyant", True)),
        summary=summary,
    )
