"""Head-to-head policy comparison on a shared workload grid.

``repro compare-schedulers`` (and the campaign units of
:mod:`repro.schedulers.units`) run every requested zoo policy over the
*same* seeded instances — the apples-to-apples setup the SRPT and
related-machines baselines in PAPERS.md call for — and emit:

* a canonical fixed-width comparison table (deterministic bytes for a
  given config: seeded workloads, seeded chaos faults, no wall-clock
  inputs anywhere);
* one versioned trace per ``(policy, load)`` cell — the policy's
  *analytic* fault-free placements in the standard
  :mod:`repro.campaigns.trace` format, replayable and diffable;
* a sanity line for the zoo's one provable cross-policy ordering:
  on the identical-machines fault-free case, SRPT-PS mean flow ≤
  EFT-Min mean flow (per-machine preemptive SRPT is optimal for mean
  completion time, and both policies dispatch identically) — the
  ``make zoo-smoke`` gate greps for it.

Simulated metrics (mean/max flow, preemptions, requeues) come from the
reference engine with the configured chaos fault schedule active; the
traces are recorded fault-free so they stay valid
:class:`~repro.core.schedule.Schedule` artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..campaigns.spec import stable_seed
from ..campaigns.trace import dump, record
from ..faults.schedule import chaos_schedule
from ..simulation.engine import Simulator
from ..simulation.workload import WorkloadSpec, generate_workload
from .registry import get_scheduler

__all__ = ["CompareConfig", "compare_cell", "run_compare", "render_table"]

#: Default zoo roster of the comparison grid (EFT plus the three new
#: policies of the subsystem; any registry name is accepted).
DEFAULT_POLICIES: tuple[str, ...] = ("eft-min", "srpt-ps", "nc-setup", "speed-eft")


@dataclass(frozen=True)
class CompareConfig:
    """Grid parameters of one comparison run."""

    m: int = 10
    n: int = 300
    k: int = 3
    loads: tuple[float, ...] = (0.7, 0.9)
    policies: tuple[str, ...] = DEFAULT_POLICIES
    strategy: str = "overlapping"
    case: str = "uniform"
    #: non-unit sizes by default: SRPT sequencing only differs from
    #: FIFO when remaining work varies.
    size_dist: str = "exp"
    seed: int = 0
    #: chaos fault injection (seeded MTBF/MTTR schedule) on the
    #: simulated metrics; traces are always recorded fault-free.
    faults: bool = True
    mtbf: float = 15.0
    mttr: float = 3.0
    fault_machines: int = 2

    def workload_spec(self, load: float) -> WorkloadSpec:
        """The shared workload of one load point (``lam`` chosen so the
        cluster load :math:`\\lambda \\bar p / m` equals ``load``)."""
        return WorkloadSpec(
            m=self.m,
            n=self.n,
            lam=load * self.m,
            k=self.k,
            strategy=self.strategy,
            case=self.case,
            size_dist=self.size_dist,
        )


def _instance_for(config: CompareConfig, load: float):
    """The one shared instance of a load point (same bytes for every
    policy — the comparison's whole point)."""
    seed = stable_seed("compare-workload", config.seed, config.m, config.n, f"{load:g}")
    return generate_workload(config.workload_spec(load), rng=seed)


def _faults_for(config: CompareConfig, load: float, horizon: float):
    if not config.faults:
        return None
    seed = stable_seed("compare-faults", config.seed, f"{load:g}")
    machines = list(range(1, min(config.fault_machines, config.m) + 1))
    return chaos_schedule(
        config.m,
        horizon=horizon,
        mtbf=config.mtbf,
        mttr=config.mttr,
        seed=seed,
        machines=machines,
    )


def compare_cell(
    config: CompareConfig, policy: str, load: float, trace_dir: Path | None = None
) -> dict[str, Any]:
    """Run one ``(policy, load)`` cell; returns the metrics row.

    The simulated run uses the configured chaos faults; the optional
    trace is the policy's analytic fault-free schedule over the same
    instance (a valid, replayable artefact either way).
    """
    inst = _instance_for(config, load)
    horizon = max((t.release for t in inst), default=0.0) + 1.0
    seed = stable_seed("compare-policy", config.seed, policy, f"{load:g}")
    sim = Simulator(
        get_scheduler(policy, config.m, seed=seed),
        faults=_faults_for(config, load, horizon),
    )
    sim.add_instance(inst)
    res = sim.run()
    row: dict[str, Any] = {
        "policy": policy,
        "load": load,
        "mean_flow": res.mean_flow,
        "max_flow": res.max_flow,
        "makespan": res.makespan,
        "n_completed": res.n_completed,
        "n_preempted": res.n_preempted,
        "n_requeued": res.n_requeued,
        "utilization": res.utilization,
    }
    if trace_dir is not None:
        sched = get_scheduler(policy, config.m, seed=seed)
        sched.run(inst)
        trace = record(
            sched.schedule(),
            scheduler=getattr(sched, "name", policy),
            meta={
                "experiment": "compare-schedulers",
                "policy": policy,
                "load": load,
                "seed": config.seed,
                "m": config.m,
                "n": config.n,
            },
        )
        path = Path(trace_dir) / f"compare_{policy}_load{load:g}.trace.jsonl"
        dump(trace, path)
        row["trace"] = str(path)
    return row


def sanity_check(config: CompareConfig) -> dict[str, Any]:
    """The provable ordering: fault-free identical machines, SRPT-PS
    mean flow ≤ EFT-Min mean flow on the shared instance of the first
    load point."""
    load = config.loads[0]
    inst = _instance_for(config, load)
    flows = {}
    for policy in ("srpt-ps", "eft-min"):
        sim = Simulator(get_scheduler(policy, config.m, seed=0))
        sim.add_instance(inst)
        flows[policy] = sim.run().mean_flow
    ok = flows["srpt-ps"] <= flows["eft-min"] + 1e-9
    return {
        "srpt_mean_flow": flows["srpt-ps"],
        "eft_mean_flow": flows["eft-min"],
        "ok": ok,
    }


_COLUMNS = (
    ("load", 6),
    ("policy", 11),
    ("mean_flow", 12),
    ("max_flow", 12),
    ("makespan", 12),
    ("done", 6),
    ("preempt", 8),
    ("requeue", 8),
    ("util", 7),
)


def render_table(rows: list[Mapping[str, Any]]) -> str:
    """Fixed-width canonical table (stable bytes for equal rows)."""
    header = "  ".join(name.ljust(width) for name, width in _COLUMNS)
    lines = [header, "-" * len(header)]
    for r in rows:
        cells = (
            f"{r['load']:.2f}".ljust(6),
            str(r["policy"]).ljust(11),
            f"{r['mean_flow']:.6f}".rjust(12),
            f"{r['max_flow']:.6f}".rjust(12),
            f"{r['makespan']:.6f}".rjust(12),
            str(r["n_completed"]).rjust(6),
            str(r["n_preempted"]).rjust(8),
            str(r["n_requeued"]).rjust(8),
            f"{r['utilization']:.4f}".rjust(7),
        )
        lines.append("  ".join(cells))
    return "\n".join(lines)


def run_compare(
    config: CompareConfig, trace_dir: Path | None = None
) -> dict[str, Any]:
    """Run the whole grid; returns ``{"rows", "table", "sanity", ...}``.

    Rows are ordered load-major, policy in config order — the
    deterministic layout the table and the smoke target rely on.
    """
    rows = [
        compare_cell(config, policy, load, trace_dir=trace_dir)
        for load in config.loads
        for policy in config.policies
    ]
    sanity = sanity_check(config)
    table = render_table(rows)
    lines = [table, ""]
    lines.append(
        "sanity identical-machines fault-free: "
        f"srpt-ps mean flow {sanity['srpt_mean_flow']:.6f} <= "
        f"eft-min mean flow {sanity['eft_mean_flow']:.6f}: "
        + ("OK" if sanity["ok"] else "VIOLATED")
    )
    return {
        "rows": rows,
        "table": table,
        "sanity": sanity,
        "text": "\n".join(lines),
    }
