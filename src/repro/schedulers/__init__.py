"""The scheduler zoo: pluggable policies behind one registry.

Every policy is an
:class:`~repro.core.dispatch.ImmediateDispatchScheduler` (the
``SchedulingPolicy`` contract of :mod:`~repro.schedulers.contract`),
registered by name in :mod:`~repro.schedulers.registry` and therefore
simulatable, servable (``repro serve --scheduler NAME``), faultable,
shardable, and benchmarkable with no per-policy wiring.  The zoo adds
three policies beyond the paper's EFT family:

* :class:`~repro.schedulers.srpt.SRPTPS` — preemptive SRPT with
  processing-set restrictions (Fox & Moseley);
* :class:`~repro.schedulers.ncsetup.NCSetup` — non-clairvoyant
  dispatch with per-machine setup times modelling replica cache warmup
  (Mäcker et al.);
* :class:`~repro.schedulers.speedeft.SpeedEFT` — speed-aware EFT on
  related machines (Bansal & Cloostermans / Bansal & Kulkarni).

``repro compare-schedulers`` runs the zoo head-to-head on shared
seeded workloads (:mod:`~repro.schedulers.compare`), and
:mod:`~repro.schedulers.units` exposes the same grid as campaign
units.
"""

from .compare import CompareConfig, compare_cell, render_table, run_compare
from .contract import PolicyInfo, check_policy, policy_info
from .ncsetup import NCSetup
from .registry import canonical_name, get_scheduler, list_schedulers, register
from .speedeft import SpeedEFT
from .srpt import SRPTPS

__all__ = [
    "CompareConfig",
    "NCSetup",
    "PolicyInfo",
    "SRPTPS",
    "SpeedEFT",
    "canonical_name",
    "check_policy",
    "compare_cell",
    "get_scheduler",
    "list_schedulers",
    "policy_info",
    "register",
    "render_table",
    "run_compare",
]
