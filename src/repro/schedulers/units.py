"""Campaign units for the scheduler zoo.

One unit per ``(policy, load)`` cell of a comparison grid, pure and
seeded — executable on any campaign worker via the importable kind
``"repro.schedulers.units:compare_unit"`` (no registration needed in
spawned processes).  :func:`build_compare_campaign` lays a
:class:`~repro.campaigns.spec.CampaignSpec` over the same grid the CLI
verb runs inline, so zoo comparisons cache, resume, and parallelise
like every other campaign.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..campaigns.spec import CampaignSpec, Unit, stable_seed
from .compare import CompareConfig, compare_cell

__all__ = ["compare_unit", "build_compare_campaign"]

#: The importable unit kind (survives any worker start method).
COMPARE_UNIT_KIND = "repro.schedulers.units:compare_unit"

_CONFIG_FIELDS = (
    "m",
    "n",
    "k",
    "strategy",
    "case",
    "size_dist",
    "faults",
    "mtbf",
    "mttr",
    "fault_machines",
)


def _config_from_params(params: Mapping[str, Any], seed: int) -> CompareConfig:
    kwargs = {f: params[f] for f in _CONFIG_FIELDS if f in params}
    return CompareConfig(seed=seed, **kwargs)


def compare_unit(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Pure executor of one comparison cell.

    ``params`` carries ``policy``, ``load`` and any
    :class:`~repro.schedulers.compare.CompareConfig` field; ``seed`` is
    the config seed (the cell derives its own sub-seeds), so equal
    units hash equal and cache soundly.
    """
    config = _config_from_params(params, seed)
    return compare_cell(config, str(params["policy"]), float(params["load"]))


def build_compare_campaign(config: CompareConfig, name: str = "compare-schedulers") -> CampaignSpec:
    """One unit per ``(policy, load)`` cell of ``config``'s grid."""
    base_params = {
        f: getattr(config, f) for f in _CONFIG_FIELDS
    }
    units = []
    for load in config.loads:
        for policy in config.policies:
            params = dict(base_params, policy=policy, load=load)
            units.append(
                Unit(
                    kind=COMPARE_UNIT_KIND,
                    params=params,
                    seed=config.seed,
                    label=f"{policy}@{load:g}",
                )
            )
    return CampaignSpec.build(
        name,
        units,
        m=config.m,
        n=config.n,
        loads=list(config.loads),
        policies=list(config.policies),
        seed=config.seed,
    )


def campaign_seed(config: CompareConfig) -> int:
    """A stable seed namespace for ad-hoc grid extensions."""
    return stable_seed("compare-campaign", config.seed, config.m, config.n)
