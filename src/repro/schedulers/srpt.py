"""SRPT-PS — preemptive shortest remaining processing time with
processing-set restrictions.

Fox & Moseley analyse SRPT on identical machines (PAPERS.md): it is
scalable for total flow time, and on a single machine preemptive SRPT
is *optimal* for :math:`\\sum C_j` (hence for mean flow).  This policy
extends it to the paper's structured processing sets:

* **Dispatch** is EFT-Min (Equation (2), lowest-index tie-break): with
  immediate dispatch a task must be bound to a machine at release, and
  the earliest-finishing eligible machine is the natural SRPT-spirited
  binding — the per-machine task *sets* coincide exactly with EFT-Min's.
* **Sequencing** on each machine is preemptive SRPT: whenever new work
  lands on a busy machine, the engine re-evaluates (one PREEMPT event
  per machine per instant, after the whole same-instant release batch)
  and runs the task with the smallest remaining service time; strict
  inequality is required to preempt, so equal remainders never thrash.

Because dispatch matches EFT-Min, the analytic books
(:attr:`completions`, :meth:`schedule`) stay exact — per-machine busy
periods are invariant under work-conserving re-sequencing — and
SRPT-PS's simulated mean flow is deterministically ≤ EFT-Min's on any
fault-free instance (single-machine SRPT optimality applied per
machine).  That ordering is the ``zoo-smoke`` sanity gate.
"""

from __future__ import annotations

from ..core.eft import EFT
from ..core.task import Task

__all__ = ["SRPTPS"]


class SRPTPS(EFT):
    """Preemptive SRPT over EFT-Min dispatch (processing-set aware)."""

    preemptive = True

    def __init__(self, m: int) -> None:
        super().__init__(m, tiebreak="min")
        self.name = "SRPT-PS"

    @staticmethod
    def preempt_key(task: Task, remaining: float, now: float):
        """Smallest remaining work first; release then tid break ties
        deterministically (older task wins, matching FIFO intuition)."""
        return (remaining, task.release, task.tid)
