"""The policy registry: one name → one scheduler factory.

The registry is the zoo's front door: every subsystem that accepts a
``--scheduler NAME`` (serve, bench-serve, rebalance, replay,
compare-schedulers, campaign units) resolves it here, so a policy
registered once is simulatable, servable, faultable, shardable, and
benchmarkable with no further wiring.

Names are canonicalised (case-insensitive, ``_`` → ``-``), and the
recorded display spellings (``EFT-Min``, ``SRPT-PS``, …) round-trip:
``get_scheduler(trace.scheduler_name, m)`` works on any zoo trace.

Built-in policies::

    eft-min | eft-max | eft-rand    EFT (Algorithm 2), paper tie-breaks
    least-work | round-robin | random   baselines
    lor | c3                        non-clairvoyant replica selection
    srpt-ps                         preemptive SRPT, processing sets
    nc-setup                        non-clairvoyant + setup times
    speed-eft                       speed-aware EFT, related machines

Factories take ``(m, seed)``; seed is ignored by deterministic
policies.  :func:`register` checks the policy class against the
:mod:`~repro.schedulers.contract` at registration time.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..core.baselines import LeastWorkAssign, RandomAssign, RoundRobinAssign
from ..core.dispatch import ImmediateDispatchScheduler
from ..core.eft import EFT
from ..core.nonclairvoyant import C3Like, LeastOutstanding
from .contract import check_policy
from .ncsetup import NCSetup
from .speedeft import SpeedEFT
from .srpt import SRPTPS

__all__ = ["register", "get_scheduler", "list_schedulers", "canonical_name"]

#: name -> (factory, policy class, one-line summary)
_REGISTRY: dict[
    str, tuple[Callable[[int, int | None], ImmediateDispatchScheduler], type, str]
] = {}

#: display-name spellings recorded in trace headers -> registry key
_ALIASES: dict[str, str] = {}


def canonical_name(name: str) -> str:
    """Canonical registry key for ``name`` (case/underscore-insensitive,
    display spellings accepted)."""
    key = name.strip().lower().replace("_", "-")
    return _ALIASES.get(key, key)


def register(
    name: str,
    factory: Callable[[int, int | None], ImmediateDispatchScheduler],
    *,
    cls: type,
    summary: str = "",
    aliases: tuple[str, ...] = (),
) -> None:
    """Register a policy factory under ``name``.

    ``factory(m, seed)`` must return a fresh scheduler; ``cls`` is the
    policy class, checked against the contract.  ``aliases`` are extra
    accepted spellings (the display name is always accepted).
    """
    check_policy(cls)
    key = name.strip().lower().replace("_", "-")
    if key in _REGISTRY:
        raise ValueError(f"scheduler {name!r} already registered")
    _REGISTRY[key] = (factory, cls, summary)
    for alias in aliases:
        _ALIASES[alias.strip().lower().replace("_", "-")] = key


def get_scheduler(name: str, m: int, seed: int | None = 0) -> ImmediateDispatchScheduler:
    """Build a fresh scheduler by registry name.

    Accepts canonical keys, display spellings recorded in trace
    headers, and is case/underscore-insensitive.  Raises
    :class:`ValueError` for unknown names (listing the registry).
    """
    key = canonical_name(name)
    entry = _REGISTRY.get(key)
    if entry is None:
        raise ValueError(
            f"unknown scheduler {name!r} (known: {', '.join(sorted(_REGISTRY))})"
        )
    factory, _, _ = entry
    return factory(m, seed)


def list_schedulers() -> list[dict[str, object]]:
    """Describe every registered policy (sorted by key): name,
    display spelling, preemptive/clairvoyant flags, summary."""
    out = []
    for key in sorted(_REGISTRY):
        _, cls, summary = _REGISTRY[key]
        out.append(
            {
                "name": key,
                "class": cls.__name__,
                "preemptive": bool(getattr(cls, "preemptive", False)),
                "clairvoyant": bool(getattr(cls, "clairvoyant", True)),
                "summary": summary,
            }
        )
    return out


def iter_names() -> Iterator[str]:
    """The canonical registry keys, sorted."""
    return iter(sorted(_REGISTRY))


# -- built-ins ---------------------------------------------------------------

register(
    "eft-min",
    lambda m, seed: EFT(m, tiebreak="min"),
    cls=EFT,
    summary="EFT, lowest-index tie-break (Algorithm 3)",
)
register(
    "eft-max",
    lambda m, seed: EFT(m, tiebreak="max"),
    cls=EFT,
    summary="EFT, highest-index tie-break (Section 7.4)",
)
register(
    "eft-rand",
    lambda m, seed: EFT(m, tiebreak="rand", rng=seed),
    cls=EFT,
    summary="EFT, uniform tie-break (Algorithm 4)",
)
register(
    "least-work",
    lambda m, seed: LeastWorkAssign(m),
    cls=LeastWorkAssign,
    summary="least total assigned work baseline",
    aliases=("leastwork",),
)
register(
    "round-robin",
    lambda m, seed: RoundRobinAssign(m),
    cls=RoundRobinAssign,
    summary="cyclic assignment baseline",
    aliases=("roundrobin",),
)
register(
    "random",
    lambda m, seed: RandomAssign(m, rng=seed),
    cls=RandomAssign,
    summary="uniform random eligible machine",
)
register(
    "lor",
    lambda m, seed: LeastOutstanding(m),
    cls=LeastOutstanding,
    summary="least outstanding requests (non-clairvoyant)",
)
register(
    "c3",
    lambda m, seed: C3Like(m),
    cls=C3Like,
    summary="C3-style replica ranking (non-clairvoyant)",
)
register(
    "srpt-ps",
    lambda m, seed: SRPTPS(m),
    cls=SRPTPS,
    summary="preemptive SRPT with processing sets (EFT-Min dispatch)",
    aliases=("srpt",),
)
register(
    "nc-setup",
    lambda m, seed: NCSetup(m),
    cls=NCSetup,
    summary="non-clairvoyant least-outstanding with setup times",
    aliases=("ncsetup", "nc-setup(s=1)"),
)
register(
    "speed-eft",
    lambda m, seed: SpeedEFT(m),
    cls=SpeedEFT,
    summary="speed-aware EFT on related machines (two-tier default)",
    aliases=("speedeft", "greedy(q)"),
)
