"""The Theorem 5 adversary: nested sets vs any online algorithm.

Unit tasks on :math:`m = 2^{\\lfloor \\log_2 m' \\rfloor}` machines,
with a window :math:`F \\ge \\log_2(m) + 2` between phases.  Phase
:math:`k` works on the interval :math:`I(u_k, s_k)` with
:math:`s_k = m/2^k`:

* :math:`G_{1,k}` — :math:`s_k` unit tasks released at
  :math:`t_k = kF` restricted to :math:`I(u_k, s_k)`;
* :math:`G_{2,k}` — for each machine :math:`M_j \\in I(u_k, s_k)`, one
  unit task *only* runnable on :math:`M_j` at each of the times
  :math:`t_k, t_k+1, \\dots, t_k+F-1`.

The next interval is the half of :math:`I(u_k, s_k)` holding the most
uncompleted single-machine tasks at :math:`t_{k+1}` (a pigeonhole
argument shows it keeps :math:`(k+1) s_{k+1}` of them).  After
:math:`\\log_2 m` halvings one machine carries :math:`\\log_2(m) + 2`
pending units, while the optimum finishes everything with max flow 3
(schedule :math:`G_{1,k}` on the abandoned half first, then the
singleton tasks) — hence the
:math:`\\tfrac13\\lfloor\\log_2(m) + 2\\rfloor` bound.

The processing-set family is nested: the intervals form a chain and
every singleton is inside some interval.
"""

from __future__ import annotations

import math

from .base import Adversary, AdversaryResult, SchedulerFactory, TidCounter

__all__ = ["NestedAdversary"]


class NestedAdversary(Adversary):
    """Adaptive nested-interval adversary (Theorem 5).

    Parameters
    ----------
    m_prime:
        Nominal machine count (rounded down to a power of two).
    F:
        Phase length; defaults to the smallest valid value
        :math:`\\lceil \\log_2 m \\rceil + 2`.
    """

    def __init__(self, m_prime: int, F: int | None = None) -> None:
        if m_prime < 2:
            raise ValueError("need at least 2 machines")
        self.m_prime = m_prime
        self.m = 2 ** int(math.floor(math.log2(m_prime)))
        self.levels = int(math.log2(self.m))  # number of halvings
        min_F = self.levels + 2
        self.F = int(F) if F is not None else min_F
        if self.F < min_F:
            raise ValueError(f"F must be >= log2(m) + 2 = {min_F}")

    def theoretical_bound(self) -> float:
        """:math:`\\tfrac13 \\lfloor \\log_2(m') + 2 \\rfloor`."""
        return math.floor(math.log2(self.m_prime) + 2) / 3.0

    def run(self, scheduler_factory: SchedulerFactory) -> AdversaryResult:
        m, F = self.m, self.F
        scheduler = scheduler_factory(m)
        tid = TidCounter()
        singleton_tasks: list = []  # (task, record) pairs of all G2 tasks
        u, s = 1, m
        for k in range(self.levels + 1):
            t_k = float(k * F)
            interval = list(range(u, u + s))
            # G1: s tasks restricted to the whole interval.
            for _ in range(s):
                scheduler.submit(self._task(tid, t_k, 1.0, interval))
            # G2: per-machine singleton tasks, F waves.
            for f in range(F):
                for j in interval:
                    task = self._task(tid, t_k + f, 1.0, [j])
                    record = scheduler.submit(task)
                    singleton_tasks.append((task, record))
            if s == 1:
                break
            # Pick the half with the most uncompleted singleton tasks at
            # the start of the next phase.
            t_next = t_k + F
            half = s // 2
            left = range(u, u + half)
            right = range(u + half, u + s)
            left_count = self._uncompleted_on(singleton_tasks, left, t_next)
            right_count = self._uncompleted_on(singleton_tasks, right, t_next)
            if left_count >= right_count:
                u, s = u, half
            else:
                u, s = u + half, half
        return self._finalize(scheduler, opt_fmax=3.0, opt_is_exact=False)

    @staticmethod
    def _uncompleted_on(singleton_tasks, machines, t: float) -> int:
        wanted = set(machines)
        count = 0
        for task, record in singleton_tasks:
            machine = next(iter(task.machines))
            if machine in wanted and record.start + task.proc > t:
                count += 1
        return count
