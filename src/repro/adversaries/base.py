"""Adaptive adversary framework.

The lower-bound proofs of Section 6 build *adaptive* instances: the
next batch of tasks depends on where the online algorithm placed the
previous ones.  An :class:`Adversary` therefore runs against a live
:class:`~repro.core.dispatch.ImmediateDispatchScheduler`, interleaving
submission and observation, and returns an :class:`AdversaryResult`
bundling the generated instance, the algorithm's schedule and the
offline optimum (exact or analytic, per adversary).

``scheduler_factory`` is any callable ``m -> scheduler`` so one
adversary can be replayed against EFT-Min, EFT-Max, EFT-Rand or the
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.schedule import Schedule
from ..core.task import Instance, Task

__all__ = ["SchedulerFactory", "AdversaryResult", "Adversary", "TidCounter"]

SchedulerFactory = Callable[[int], ImmediateDispatchScheduler]


class TidCounter:
    """Monotone task-id source for adaptively generated tasks."""

    def __init__(self) -> None:
        self._next = 0

    def __call__(self) -> int:
        tid = self._next
        self._next += 1
        return tid


@dataclass(frozen=True)
class AdversaryResult:
    """Outcome of running an adversary against a scheduler."""

    instance: Instance
    schedule: Schedule
    fmax: float
    opt_fmax: float
    opt_is_exact: bool  #: whether ``opt_fmax`` is exact or an upper bound on OPT

    @property
    def ratio(self) -> float:
        """Achieved performance ratio ``Fmax / OPT`` (a valid lower
        bound on the algorithm's competitive ratio even when
        ``opt_fmax`` only upper-bounds OPT)."""
        return self.fmax / self.opt_fmax


class Adversary:
    """Base class for adaptive lower-bound constructions."""

    def run(self, scheduler_factory: SchedulerFactory) -> AdversaryResult:
        raise NotImplementedError

    @staticmethod
    def _finalize(
        scheduler: ImmediateDispatchScheduler,
        opt_fmax: float,
        opt_is_exact: bool,
    ) -> AdversaryResult:
        schedule = scheduler.schedule()
        return AdversaryResult(
            instance=schedule.instance,
            schedule=schedule,
            fmax=schedule.max_flow,
            opt_fmax=opt_fmax,
            opt_is_exact=opt_is_exact,
        )

    @staticmethod
    def _task(tid_counter: TidCounter, release: float, proc: float, machines) -> Task:
        return Task(tid=tid_counter(), release=release, proc=proc, machines=frozenset(machines))
