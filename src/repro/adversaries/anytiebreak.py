"""The Theorem 10 adversary: EFT with *any* tie-break policy.

Extends the Theorem 8 instance with two rounds of tiny tasks at each
integer time so that machine completion times are staggered by
:math:`i\\delta` (machine :math:`M_i` always becomes available
:math:`i\\delta` after the nominal instant).  The staggering removes
every tie, so EFT — whatever its tie-break — is forced to make exactly
the EFT-Min decisions on the regular tasks (Lemma 7), and the
:math:`m-k+1` flow of Theorem 8 follows.

Construction at each time :math:`t` (before the regular batch):

* **Round 1** — while some machine is idle, submit a task of duration
  :math:`c\\varepsilon` (with :math:`c = 1, 2, \\dots`) whose size-
  :math:`k` interval covers the first idle machine; EFT necessarily
  parks it on an idle machine, so after :math:`m_{idle}` submissions
  all machines are busy, with pairwise distinct completion times.
* **Round 2** — for :math:`c = 1..m_{idle}` in order, if round-1 task
  :math:`c` landed on machine :math:`M_i`, submit a task of duration
  :math:`i\\delta - c\\varepsilon` covering :math:`M_i`.  Its interval's
  unique earliest machine is :math:`M_i`, so it lands there and tops
  the machine up to exactly :math:`t + i\\delta`.

Durations satisfy :math:`\\varepsilon < \\delta/(2m)` and
:math:`m\\delta < 1`; the total small volume is kept :math:`\\ll 1` so
the offline optimum stays :math:`1 + o(1)`.
"""

from __future__ import annotations

from ..core.task import Task
from .base import Adversary, AdversaryResult, SchedulerFactory, TidCounter
from .eftmin import task_type, type_interval

__all__ = ["AnyTiebreakAdversary"]

_TOL = 1e-9


class AnyTiebreakAdversary(Adversary):
    """Tie-free EFT adversary (Theorem 10).

    Parameters
    ----------
    m, k:
        Cluster size and interval width, ``1 < k < m``.
    steps:
        Number of integer time steps (defaults to :math:`m^3`, the
        horizon sufficient for EFT-Min convergence).
    delta:
        Per-machine stagger; defaults small enough that the whole
        run's small-task volume stays below 0.01 time units.
    """

    def __init__(
        self, m: int, k: int, steps: int | None = None, delta: float | None = None
    ) -> None:
        if not (1 < k < m):
            raise ValueError(f"theorem requires 1 < k < m, got m={m}, k={k}")
        self.m = m
        self.k = k
        self.steps = steps if steps is not None else m**3
        if delta is None:
            # Keep total small volume below 0.01: per step it is at most
            # sum_i i*delta <= m^2 * delta.
            delta = min(1.0 / (2 * m), 0.01 / (self.steps * m * m))
        if delta * m >= 1.0:
            raise ValueError("delta must satisfy m * delta < 1")
        self.delta = float(delta)
        self.eps = self.delta / (4 * m)  # < delta / (2m), as the proof requires

    def theoretical_bound(self) -> int:
        """:math:`m - k + 1` — Theorems 8/9/10's bound."""
        return self.m - self.k + 1

    def _covering_interval(self, machine: int) -> frozenset[int]:
        """A size-``k`` linear interval containing ``machine``."""
        start = min(machine, self.m - self.k + 1)
        return frozenset(range(start, start + self.k))

    def run(self, scheduler_factory: SchedulerFactory) -> AdversaryResult:
        m, k = self.m, self.k
        scheduler = scheduler_factory(m)
        tid = TidCounter()
        total_small = 0.0
        regular_flows_max = 0.0
        for t in range(self.steps):
            now = float(t)
            # -- round 1: occupy every idle machine with distinct tiny tasks.
            allocations: list[int] = []  # machine of the c-th round-1 task
            c = 1
            while True:
                idle = [
                    j for j in range(1, m + 1) if scheduler.completions[j] <= now + _TOL
                ]
                if not idle:
                    break
                target = idle[0]
                dur = c * self.eps
                rec = scheduler.submit(
                    Task(tid(), now, dur, machines=self._covering_interval(target))
                )
                total_small += dur
                allocations.append(rec.machine)
                c += 1
            # -- round 2: top every round-1 machine up to exactly t + i*delta.
            for c_idx, i_mach in enumerate(allocations, start=1):
                dur = i_mach * self.delta - c_idx * self.eps
                rec = scheduler.submit(
                    Task(tid(), now, dur, machines=self._covering_interval(i_mach))
                )
                total_small += dur
                if rec.machine != i_mach:  # pragma: no cover - guards the construction
                    raise RuntimeError(
                        f"round-2 task meant for machine {i_mach} landed on {rec.machine}; "
                        "stagger construction violated"
                    )
            # -- the regular Theorem 8 batch.
            for i in range(1, m + 1):
                lam = task_type(i, m, k)
                rec = scheduler.submit(
                    Task(tid(), now, 1.0, machines=type_interval(lam, m, k))
                )
                flow = rec.start + 1.0 - now
                regular_flows_max = max(regular_flows_max, flow)
        opt_upper = 1.0 + total_small  # piling the small tasks onto the
        # Theorem-8 optimal placement delays any task by at most the
        # total small volume.
        result = self._finalize(scheduler, opt_fmax=opt_upper, opt_is_exact=False)
        return result

    def regular_max_flow(self, result: AdversaryResult) -> float:
        """Maximum flow over the *regular* (unit) tasks of a result."""
        return max(a.flow for a in result.schedule if a.task.proc == 1.0)
