"""The Theorem 3 adversary: inclusive sets vs immediate dispatch.

Works on :math:`m = 2^{\\lfloor \\log_2 m' \\rfloor}` machines.  At
step :math:`\\ell` (time :math:`\\ell - 1`) it releases
:math:`m/2^\\ell` tasks of length :math:`p > \\log_2 m` restricted to
the chain set :math:`\\mathcal{M}^{(\\ell)}`, where
:math:`\\mathcal{M}^{(1)} = M` and :math:`\\mathcal{M}^{(\\ell+1)}` is
the half of :math:`\\mathcal{M}^{(\\ell)}` carrying the most allocated
tasks — observable because the algorithm dispatches immediately.  A
final task lands on the single busiest machine of the last pair, giving
a flow of :math:`(\\log_2 m + 1) p - \\log_2 m` against an optimum of
exactly :math:`p` (each step's tasks fit on the half the adversary
abandons), hence a ratio approaching
:math:`\\lfloor \\log_2 m + 1 \\rfloor` as :math:`p \\to \\infty`.
"""

from __future__ import annotations

import math

from .base import Adversary, AdversaryResult, SchedulerFactory, TidCounter

__all__ = ["InclusiveAdversary"]


class InclusiveAdversary(Adversary):
    """Adaptive chain-structured adversary (Theorem 3).

    Parameters
    ----------
    m_prime:
        The nominal machine count :math:`m'`; the construction uses
        the largest power of two :math:`m \\le m'`.
    p:
        Task length; must exceed :math:`\\log_2 m` for the bound to
        bind (larger ⇒ ratio closer to the theorem's value).
    """

    def __init__(self, m_prime: int, p: float | None = None) -> None:
        if m_prime < 2:
            raise ValueError("need at least 2 machines")
        self.m_prime = m_prime
        self.m = 2 ** int(math.floor(math.log2(m_prime)))
        self.levels = int(math.log2(self.m))
        self.p = float(p) if p is not None else float(10 * self.m)
        if self.p <= math.log2(self.m):
            raise ValueError(f"p must exceed log2(m) = {math.log2(self.m):g}")

    def theoretical_bound(self) -> int:
        """:math:`\\lfloor \\log_2(m') + 1 \\rfloor` — the Theorem 3
        lower bound (reached in the limit :math:`p \\to \\infty`)."""
        return math.floor(math.log2(self.m_prime) + 1)

    def run(self, scheduler_factory: SchedulerFactory) -> AdversaryResult:
        m, p = self.m, self.p
        scheduler = scheduler_factory(m)
        tid = TidCounter()
        chain = sorted(range(1, m + 1))  # current M^(l), machine indices
        for level in range(1, self.levels + 1):
            release = float(level - 1)
            n_tasks = m // 2**level
            batch = [
                self._task(tid, release, p, chain) for _ in range(n_tasks)
            ]
            scheduler.submit_batch(batch)
            # Next chain set: the |chain|/2 machines of `chain` with the
            # most allocated tasks so far (the proof's counting argument
            # guarantees they carry >= level * |chain|/2 tasks in total).
            half = len(chain) // 2
            chain = sorted(
                sorted(chain, key=lambda j: (-scheduler.task_counts[j], j))[:half]
            )
        # `chain` is now the final pair reduced to... after `levels`
        # halvings it holds a single machine pair's busiest half: with
        # m = 2^levels the loop leaves |chain| = 1.
        final_machine = chain[0]
        scheduler.submit(self._task(tid, float(self.levels), p, [final_machine]))
        return self._finalize(scheduler, opt_fmax=p, opt_is_exact=True)
