"""The Theorem 8/9 adversary: EFT on overlapping fixed-size intervals.

At every integer time :math:`t` the adversary releases :math:`m` unit
tasks (Figure 3):

* for :math:`1 \\le i \\le m-k`, the :math:`i`-th task has *type*
  :math:`m - k - i + 2` — its processing set is the interval
  :math:`\\{M_\\lambda, \\dots, M_{\\lambda+k-1}\\}` starting at
  :math:`\\lambda = m-k-i+2` (the "blue" tasks, types
  :math:`m-k+1` down to 2);
* for :math:`m-k < i \\le m`, the task has type 1 (the "red" tasks).

The instance is *oblivious* (not adaptive): Theorem 8 shows EFT-Min's
schedule profile converges to the stable profile
:math:`w_\\tau(j) = \\min(m-j, m-k)` and its max-flow reaches
:math:`m - k + 1`, and Theorem 9 shows EFT-Rand reaches it almost
surely, while the optimum keeps every flow at 1 (each machine receives
exactly one task per step under the type-to-last-machine placement).
"""

from __future__ import annotations

import numpy as np

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.schedule import Schedule
from ..core.task import Instance, Task
from .base import Adversary, AdversaryResult, SchedulerFactory, TidCounter

__all__ = [
    "task_type",
    "type_interval",
    "eftmin_adversary_instance",
    "optimal_adversary_schedule",
    "EFTIntervalAdversary",
    "run_with_profiles",
]


def task_type(i: int, m: int, k: int) -> int:
    """Type :math:`\\lambda` of the ``i``-th task (1-based) of a batch."""
    if not (1 <= i <= m):
        raise ValueError(f"batch position i={i} outside 1..{m}")
    if 1 <= i <= m - k:
        return m - k - i + 2
    return 1


def type_interval(lam: int, m: int, k: int) -> frozenset[int]:
    """Processing set of a type-:math:`\\lambda` task:
    :math:`\\{M_\\lambda, \\dots, M_{\\lambda+k-1}\\}`."""
    if not (1 <= lam <= m - k + 1):
        raise ValueError(f"type {lam} outside 1..{m - k + 1}")
    return frozenset(range(lam, lam + k))


def eftmin_adversary_instance(m: int, k: int, steps: int) -> Instance:
    """The full (oblivious) adversary instance over ``steps`` integer
    release times.

    Requires ``1 < k < m`` (the theorem's hypothesis).
    """
    if not (1 < k < m):
        raise ValueError(f"theorem requires 1 < k < m, got m={m}, k={k}")
    if steps < 1:
        raise ValueError("need at least one step")
    tasks = []
    tid = 0
    for t in range(steps):
        for i in range(1, m + 1):
            lam = task_type(i, m, k)
            tasks.append(
                Task(tid=tid, release=float(t), proc=1.0, machines=type_interval(lam, m, k))
            )
            tid += 1
    return Instance(m=m, tasks=tuple(tasks))


def optimal_adversary_schedule(m: int, k: int, steps: int) -> Schedule:
    """The offline optimum on the adversary instance: every flow is 1.

    Each type-:math:`\\lambda \\ge 2` task goes to the *last* machine
    of its interval (:math:`M_{\\lambda+k-1}`, distinct machines
    :math:`k+1..m` across the batch) and the ``k`` type-1 tasks go to
    machines :math:`1..k` — one task per machine per step.
    """
    instance = eftmin_adversary_instance(m, k, steps)
    placements: dict[int, tuple[int, float]] = {}
    tid = 0
    for t in range(steps):
        red_seen = 0
        for i in range(1, m + 1):
            lam = task_type(i, m, k)
            if lam >= 2:
                machine = lam + k - 1
            else:
                red_seen += 1
                machine = red_seen
            placements[tid] = (machine, float(t))
            tid += 1
    sched = Schedule(instance, placements)
    sched.validate()
    assert sched.max_flow == 1.0
    return sched


class EFTIntervalAdversary(Adversary):
    """Runs the Theorem 8/9 instance against a scheduler factory.

    ``steps`` defaults to :math:`m^3` (the paper's sufficient horizon
    for EFT-Min); random tie-breaks may need more.
    """

    def __init__(self, m: int, k: int, steps: int | None = None) -> None:
        if not (1 < k < m):
            raise ValueError(f"theorem requires 1 < k < m, got m={m}, k={k}")
        self.m = m
        self.k = k
        self.steps = steps if steps is not None else m**3

    def run(self, scheduler_factory: SchedulerFactory) -> AdversaryResult:
        scheduler = scheduler_factory(self.m)
        instance = eftmin_adversary_instance(self.m, self.k, self.steps)
        for task in instance:
            scheduler.submit(task)
        return self._finalize(scheduler, opt_fmax=1.0, opt_is_exact=True)


def run_with_profiles(
    m: int, k: int, steps: int, scheduler: ImmediateDispatchScheduler
) -> tuple[Schedule, np.ndarray]:
    """Run the adversary recording the schedule profile :math:`w_t`
    just before each batch.

    Returns ``(schedule, profiles)`` with ``profiles[t, j-1] =
    w_t(j)`` — the measurements behind Figure 4 and the Lemma 2/4
    tests.
    """
    if not (1 < k < m):
        raise ValueError(f"theorem requires 1 < k < m, got m={m}, k={k}")
    profiles = np.zeros((steps, m))
    tid = 0
    for t in range(steps):
        waiting = scheduler.waiting_work(float(t))
        profiles[t] = [waiting[j] for j in range(1, m + 1)]
        for i in range(1, m + 1):
            lam = task_type(i, m, k)
            scheduler.submit(
                Task(tid=tid, release=float(t), proc=1.0, machines=type_interval(lam, m, k))
            )
            tid += 1
    return scheduler.schedule(), profiles
