"""The Theorem 7 adversary: fixed-size intervals vs any online algorithm.

Three tasks on four machines with size-2 interval sets:

1. :math:`T_1` at time 0 with :math:`\\mathcal{M}_1 = \\{M_2, M_3\\}`
   and length :math:`p`.
2. Observe where (and when) the algorithm runs it.  If it procrastinates
   past :math:`p` the flow already doubles; otherwise, if it chose
   :math:`M_2`, two tasks arrive at :math:`\\sigma_1 + 1` restricted to
   :math:`\\{M_1, M_2\\}` (symmetrically :math:`\\{M_3, M_4\\}` for
   :math:`M_3`).  One of them must wait for :math:`T_1` to finish,
   completing at :math:`\\sigma_1 + 2p` at best — flow
   :math:`\\ge 2p - 1` — while the optimum keeps every flow at
   :math:`p` (run :math:`T_1` on the other machine).

As :math:`p \\to \\infty` the ratio tends to 2.  Immediate-dispatch
algorithms always fall in the "scheduled before :math:`p`" branch,
since they place (and our model starts) tasks greedily.
"""

from __future__ import annotations

from .base import Adversary, AdversaryResult, SchedulerFactory, TidCounter

__all__ = ["IntervalTwoAdversary"]


class IntervalTwoAdversary(Adversary):
    """The 3-task interval adversary (Theorem 7), ``k = 2``, ``m = 4``."""

    m = 4
    k = 2

    def __init__(self, p: float = 100.0) -> None:
        if p <= 1:
            raise ValueError("p should exceed 1 for the bound to show")
        self.p = float(p)

    def theoretical_bound(self) -> float:
        """The asymptotic lower bound 2 (any online algorithm)."""
        return 2.0

    def run(self, scheduler_factory: SchedulerFactory) -> AdversaryResult:
        p = self.p
        scheduler = scheduler_factory(self.m)
        tid = TidCounter()
        first = scheduler.submit(self._task(tid, 0.0, p, [2, 3]))
        if first.machine == 2:
            follow_set = [1, 2]
        else:
            follow_set = [3, 4]
        release = first.start + 1.0
        scheduler.submit(self._task(tid, release, p, follow_set))
        scheduler.submit(self._task(tid, release, p, follow_set))
        return self._finalize(scheduler, opt_fmax=p, opt_is_exact=True)
