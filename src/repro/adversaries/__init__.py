"""Lower-bound adversaries of Section 6."""

from .anytiebreak import AnyTiebreakAdversary
from .base import Adversary, AdversaryResult, SchedulerFactory, TidCounter
from .eftmin import (
    EFTIntervalAdversary,
    eftmin_adversary_instance,
    optimal_adversary_schedule,
    run_with_profiles,
    task_type,
    type_interval,
)
from .fixed_k import FixedKAdversary
from .inclusive import InclusiveAdversary
from .interval2 import IntervalTwoAdversary
from .nested import NestedAdversary

__all__ = [
    "Adversary",
    "AdversaryResult",
    "AnyTiebreakAdversary",
    "EFTIntervalAdversary",
    "FixedKAdversary",
    "InclusiveAdversary",
    "IntervalTwoAdversary",
    "NestedAdversary",
    "SchedulerFactory",
    "TidCounter",
    "eftmin_adversary_instance",
    "optimal_adversary_schedule",
    "run_with_profiles",
    "task_type",
    "type_interval",
]
