"""The Theorem 4 adversary: size-``k`` sets vs immediate dispatch.

Works on :math:`m = k^{\\lfloor \\log_k m' \\rfloor}` machines.  At
step :math:`\\ell` (time :math:`\\ell - 1`) it releases
:math:`m/k^\\ell` tasks of length :math:`p > \\log_k m` whose
processing sets are **mutually disjoint** size-:math:`k` subsets
partitioning :math:`\\mathcal{M}^{(\\ell-1)}` — the set of machines
where the previous step's tasks landed (observable thanks to immediate
dispatch).  Every step's tasks are forced back onto already-loaded
machines; after :math:`\\log_k m` steps some machine holds
:math:`\\log_k m` stacked tasks, for a max flow of
:math:`\\log_k(m)\\,p - (\\log_k m - 1)` against an optimum of
:math:`p` (each task's private :math:`k`-set always contains
:math:`k-1` machines the algorithm did not pick), hence a ratio
approaching :math:`\\lfloor \\log_k m' \\rfloor`.
"""

from __future__ import annotations

import math

from .base import Adversary, AdversaryResult, SchedulerFactory, TidCounter

__all__ = ["FixedKAdversary"]


class FixedKAdversary(Adversary):
    """Adaptive disjoint-``k``-set adversary (Theorem 4).

    Parameters
    ----------
    m_prime:
        Nominal machine count; the construction uses the largest power
        of ``k`` not exceeding it.
    k:
        Processing-set size, ``k >= 2``.
    p:
        Task length (``> log_k m``); larger ⇒ tighter ratio.
    """

    def __init__(self, m_prime: int, k: int, p: float | None = None) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        if m_prime < k:
            raise ValueError("need m' >= k")
        self.m_prime = m_prime
        self.k = k
        self.levels = int(math.floor(math.log(m_prime, k)))
        # Guard against float log landing just below an exact power.
        while k ** (self.levels + 1) <= m_prime:
            self.levels += 1
        self.m = k**self.levels
        self.p = float(p) if p is not None else float(10 * max(self.m, k))
        if self.p <= self.levels:
            raise ValueError(f"p must exceed log_k(m) = {self.levels}")

    def theoretical_bound(self) -> int:
        """:math:`\\lfloor \\log_k m' \\rfloor` — Theorem 4's bound."""
        return math.floor(math.log(self.m_prime, self.k))

    def run(self, scheduler_factory: SchedulerFactory) -> AdversaryResult:
        m, k, p = self.m, self.k, self.p
        scheduler = scheduler_factory(m)
        tid = TidCounter()
        current = sorted(range(1, m + 1))  # M^(l-1): where the last batch landed
        for level in range(1, self.levels + 1):
            release = float(level - 1)
            groups = [current[i : i + k] for i in range(0, len(current), k)]
            assert all(len(g) == k for g in groups)
            landed = []
            for g in groups:
                record = scheduler.submit(self._task(tid, release, p, g))
                landed.append(record.machine)
            current = sorted(landed)
        return self._finalize(scheduler, opt_fmax=p, opt_is_exact=True)
