"""Related machines (the ``Q`` environment of Table 1).

Machines have speeds :math:`s_1, \\dots, s_m`; a task of *work*
:math:`w_i` takes :math:`w_i / s_j` time on machine :math:`M_j`.  The
identical-machine model of the paper is the special case
:math:`s_j = 1`.  Table 1 cites three online algorithms for max-flow
on related machines (Bansal & Cloostermans): Greedy (≥ Ω(log m)),
Slow-Fit (≥ Ω(m)) and their 13.5-competitive combination Double-Fit;
this subpackage provides the substrate plus faithful Greedy and
Slow-Fit implementations so the environment column of Table 1 is
runnable, not just a citation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import Schedule
from ..core.task import Instance

__all__ = ["SpeedCluster", "related_schedule_stats"]


@dataclass(frozen=True)
class SpeedCluster:
    """A cluster of machines with heterogeneous speeds.

    ``speeds[j-1]`` is the speed of machine ``j``; all speeds must be
    positive.  Helper constructors cover the classic configurations.
    """

    speeds: np.ndarray

    def __post_init__(self) -> None:
        s = np.asarray(self.speeds, dtype=float)
        if s.ndim != 1 or s.size < 1:
            raise ValueError("speeds must be a non-empty 1-D array")
        if np.any(s <= 0):
            raise ValueError("speeds must be positive")
        object.__setattr__(self, "speeds", s)

    @property
    def m(self) -> int:
        return int(self.speeds.size)

    def speed(self, machine: int) -> float:
        """Speed of 1-based machine index."""
        if not (1 <= machine <= self.m):
            raise ValueError(f"machine {machine} outside 1..{self.m}")
        return float(self.speeds[machine - 1])

    def exec_time(self, work: float, machine: int) -> float:
        """Execution time of ``work`` units on ``machine``."""
        return work / self.speed(machine)

    # -- constructors -----------------------------------------------------
    @staticmethod
    def identical(m: int) -> "SpeedCluster":
        """The paper's setting: all speeds 1."""
        return SpeedCluster(np.ones(m))

    @staticmethod
    def geometric(m: int, ratio: float = 2.0) -> "SpeedCluster":
        """Speeds ``ratio^0, ratio^1, ..`` — the configuration used by
        classic related-machine lower bounds."""
        if ratio <= 0:
            raise ValueError("ratio must be positive")
        return SpeedCluster(ratio ** np.arange(m, dtype=float))

    @staticmethod
    def two_tier(m: int, fast: int, speedup: float = 4.0) -> "SpeedCluster":
        """``fast`` machines of speed ``speedup``, the rest speed 1."""
        if not (0 <= fast <= m):
            raise ValueError("fast must be within 0..m")
        s = np.ones(m)
        s[:fast] = speedup
        return SpeedCluster(s)


def related_schedule_stats(schedule: Schedule, cluster: SpeedCluster) -> dict[str, float]:
    """Summary metrics of a related-machines schedule.

    The schedule's tasks carry *execution times* already divided by
    their machine's speed (the schedulers build them that way), so
    standard metrics apply; this helper adds speed-weighted
    utilisation.
    """
    loads = schedule.machine_loads()
    makespan = schedule.makespan
    capacity = cluster.speeds.sum() * makespan if makespan > 0 else 1.0
    return {
        "max_flow": schedule.max_flow,
        "makespan": makespan,
        "speed_weighted_utilization": float(
            (loads * 1.0).sum() / capacity if capacity else 0.0
        ),
    }
