"""Online schedulers for related machines (Table 1's ``Q`` rows).

Both schedulers are immediate dispatch and clairvoyant, like EFT, and
are built *on* the core driver: they subclass
:class:`~repro.core.dispatch.ImmediateDispatchScheduler` and express
speed through the :meth:`~repro.core.dispatch.ImmediateDispatchScheduler.exec_time`
hook — the ``proc`` field of incoming tasks is interpreted as *work*,
the driver divides by the chosen machine's speed and materialises
schedules over a derived instance whose processing times are the
realised execution times, so all standard metrics, validation, the
simulation engine, and the serve tier apply with no parallel type
hierarchy.

* :class:`GreedyRelated` — the natural generalisation of EFT: place
  each task on the machine finishing it earliest
  (:math:`\\min_j \\max(r_i, C_j) + w_i/s_j`).  Bansal & Cloostermans
  show Greedy is at least :math:`\\Omega(\\log m)`-competitive for
  max-flow on related machines: it happily burns fast machines on work
  slow machines could have absorbed.
* :class:`SlowFitRelated` — the classic Slow-Fit discipline with
  doubling: keep an estimate :math:`\\Lambda` of the achievable flow
  bound and place each task on the *slowest* machine that still
  completes it by :math:`r_i + 2\\Lambda`, doubling :math:`\\Lambda`
  when nobody fits.  Protects fast machines for tasks that need them
  (but is at least :math:`\\Omega(m)`-competitive in the worst case —
  the two failure modes are complementary, which is why Double-Fit
  interleaves them).

With identical speeds, Greedy coincides with EFT-Min — property-tested
in ``tests/related/test_schedulers.py``.
"""

from __future__ import annotations

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.task import Task
from .model import SpeedCluster

__all__ = ["GreedyRelated", "SlowFitRelated"]


class _RelatedBase(ImmediateDispatchScheduler):
    """Shared driver: the core immediate-dispatch loop plus a speed
    cluster feeding :meth:`exec_time`."""

    def __init__(self, cluster: SpeedCluster) -> None:
        super().__init__(cluster.m)
        self.cluster = cluster

    def exec_time(self, task: Task, machine: int) -> float:
        """Work divided by the chosen machine's speed."""
        return self.cluster.exec_time(task.proc, machine)

    def _eligible(self, task: Task) -> list[int]:
        return sorted(task.eligible(self.m))


class GreedyRelated(_RelatedBase):
    """Greedy / EFT on related machines: earliest finish time wins
    (ties: faster machine, then lower index)."""

    name = "Greedy(Q)"

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        best = None
        best_key = None
        best_finish = None
        for j in self._eligible(task):
            finish = max(task.release, self.completions[j]) + self.cluster.exec_time(
                task.proc, j
            )
            key = (finish, -self.cluster.speed(j), j)
            if best_key is None or key < best_key:
                best, best_key, best_finish = j, key, finish
        assert best is not None
        # The tie set is the related-machine analogue of Eq. (2)'s
        # U'_i: every eligible machine achieving the minimal finish.
        ties = frozenset(
            j
            for j in task.eligible(self.m)
            if max(task.release, self.completions[j])
            + self.cluster.exec_time(task.proc, j)
            == best_finish
        )
        return best, ties


class SlowFitRelated(_RelatedBase):
    """Slow-Fit with doubling: slowest machine completing the task by
    ``r_i + 2 * Lambda``; double ``Lambda`` until someone fits."""

    name = "SlowFit(Q)"

    def __init__(self, cluster: SpeedCluster, initial_bound: float | None = None) -> None:
        super().__init__(cluster)
        self._bound = initial_bound  # Lambda; lazily initialised
        self.doublings = 0

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        eligible = self._eligible(task)
        fastest_time = min(self.cluster.exec_time(task.proc, j) for j in eligible)
        if self._bound is None:
            self._bound = fastest_time
        while True:
            deadline = task.release + 2 * self._bound
            # slowest machine (ties: lower index) that meets the deadline
            candidates = []
            for j in eligible:
                finish = max(task.release, self.completions[j]) + self.cluster.exec_time(
                    task.proc, j
                )
                if finish <= deadline + 1e-12:
                    candidates.append((self.cluster.speed(j), j))
            if candidates:
                candidates.sort()  # slowest speed first, then index
                return candidates[0][1], frozenset(j for _, j in candidates)
            self._bound *= 2
            self.doublings += 1
