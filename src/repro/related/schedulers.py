"""Online schedulers for related machines (Table 1's ``Q`` rows).

Both schedulers are immediate dispatch and clairvoyant, like EFT.  The
``proc`` field of incoming tasks is interpreted as *work*; the
schedulers divide by the chosen machine's speed, and the returned
:class:`~repro.core.schedule.Schedule` is built over a derived
instance whose processing times are the realised execution times, so
all standard metrics and validation apply.

* :class:`GreedyRelated` — the natural generalisation of EFT: place
  each task on the machine finishing it earliest
  (:math:`\\min_j \\max(r_i, C_j) + w_i/s_j`).  Bansal & Cloostermans
  show Greedy is at least :math:`\\Omega(\\log m)`-competitive for
  max-flow on related machines: it happily burns fast machines on work
  slow machines could have absorbed.
* :class:`SlowFitRelated` — the classic Slow-Fit discipline with
  doubling: keep an estimate :math:`\\Lambda` of the achievable flow
  bound and place each task on the *slowest* machine that still
  completes it by :math:`r_i + 2\\Lambda`, doubling :math:`\\Lambda`
  when nobody fits.  Protects fast machines for tasks that need them
  (but is at least :math:`\\Omega(m)`-competitive in the worst case —
  the two failure modes are complementary, which is why Double-Fit
  interleaves them).

With identical speeds, Greedy coincides with EFT-Min — property-tested
in ``tests/related/test_schedulers.py``.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.schedule import Schedule
from ..core.task import Instance, Task
from .model import SpeedCluster

__all__ = ["GreedyRelated", "SlowFitRelated"]


class _RelatedBase:
    """Shared driver: completion-time state and schedule building."""

    def __init__(self, cluster: SpeedCluster) -> None:
        self.cluster = cluster
        self.m = cluster.m
        self.completions: dict[int, float] = {j: 0.0 for j in range(1, self.m + 1)}
        self._placements: dict[int, tuple[int, float]] = {}
        self._derived_tasks: list[Task] = []
        self._last_release = 0.0

    def choose(self, task: Task) -> int:
        raise NotImplementedError

    def submit(self, task: Task) -> tuple[int, float]:
        """Dispatch one task (``task.proc`` = work); returns
        ``(machine, start)``."""
        if task.release < self._last_release:
            raise ValueError("online submission must follow release order")
        self._last_release = task.release
        machine = self.choose(task)
        if task.machines is not None and machine not in task.machines:
            raise ValueError(f"chose machine {machine} outside processing set")
        start = max(task.release, self.completions[machine])
        exec_time = self.cluster.exec_time(task.proc, machine)
        self.completions[machine] = start + exec_time
        self._placements[task.tid] = (machine, start)
        self._derived_tasks.append(replace(task, proc=exec_time))
        return machine, start

    def run(self, instance: Instance) -> Schedule:
        """Schedule a whole instance (``proc`` fields = work)."""
        if instance.m != self.m:
            raise ValueError(f"instance has m={instance.m}, cluster has m={self.m}")
        for task in instance:
            self.submit(task)
        return self.schedule()

    def schedule(self) -> Schedule:
        """Materialise the realised schedule (execution times divided
        by speeds)."""
        derived = Instance(m=self.m, tasks=tuple(self._derived_tasks))
        sched = Schedule(derived, self._placements)
        return sched

    def _eligible(self, task: Task) -> list[int]:
        return sorted(task.eligible(self.m))


class GreedyRelated(_RelatedBase):
    """Greedy / EFT on related machines: earliest finish time wins
    (ties: faster machine, then lower index)."""

    name = "Greedy(Q)"

    def choose(self, task: Task) -> int:
        best = None
        best_key = None
        for j in self._eligible(task):
            finish = max(task.release, self.completions[j]) + self.cluster.exec_time(
                task.proc, j
            )
            key = (finish, -self.cluster.speed(j), j)
            if best_key is None or key < best_key:
                best, best_key = j, key
        assert best is not None
        return best


class SlowFitRelated(_RelatedBase):
    """Slow-Fit with doubling: slowest machine completing the task by
    ``r_i + 2 * Lambda``; double ``Lambda`` until someone fits."""

    name = "SlowFit(Q)"

    def __init__(self, cluster: SpeedCluster, initial_bound: float | None = None) -> None:
        super().__init__(cluster)
        self._bound = initial_bound  # Lambda; lazily initialised
        self.doublings = 0

    def choose(self, task: Task) -> int:
        eligible = self._eligible(task)
        fastest_time = min(self.cluster.exec_time(task.proc, j) for j in eligible)
        if self._bound is None:
            self._bound = fastest_time
        while True:
            deadline = task.release + 2 * self._bound
            # slowest machine (ties: lower index) that meets the deadline
            candidates = []
            for j in eligible:
                finish = max(task.release, self.completions[j]) + self.cluster.exec_time(
                    task.proc, j
                )
                if finish <= deadline + 1e-12:
                    candidates.append((self.cluster.speed(j), j))
            if candidates:
                candidates.sort()  # slowest speed first, then index
                return candidates[0][1]
            self._bound *= 2
            self.doublings += 1
