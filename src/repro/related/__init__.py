"""Related machines substrate (Table 1's Q environment)."""

from .model import SpeedCluster, related_schedule_stats
from .schedulers import GreedyRelated, SlowFitRelated

__all__ = ["GreedyRelated", "SlowFitRelated", "SpeedCluster", "related_schedule_stats"]
