"""Empirical competitive-ratio studies (beyond the paper's figures).

Measures EFT's Fmax against the *exact* offline optimum on random
structured instances — the experimental counterpart of Table 2's
guarantees:

* disjoint sets: ratio must stay within ``3 - 2/k`` (Corollary 1);
* unrestricted: ratio must stay within ``3 - 2/m`` (Theorem 1);
* interval sets: no upper guarantee (Theorem 8), so the study reports
  the observed spread instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.arrayeft import fast_eft_fmax
from ..core.task import Instance
from ..offline.unit_opt import optimal_unit_fmax
from ..psets.replication import get_strategy
from .common import TextTable

__all__ = ["RatioStudy", "random_structured_instance", "run"]


def random_structured_instance(
    m: int,
    k: int,
    n: int,
    strategy: str,
    rng: np.random.Generator,
    max_gap: int | None = None,
) -> Instance:
    """Random unit instance with integral releases and replica-set
    restrictions from ``strategy`` (``none`` → unrestricted)."""
    horizon = max(2, n // m if max_gap is None else max_gap)
    releases = np.sort(rng.integers(0, horizon, size=n)).astype(float)
    if strategy == "full":
        machine_sets = [None] * n
    else:
        strat = get_strategy(strategy, m, k)
        homes = rng.integers(1, m + 1, size=n)
        machine_sets = [strat.replicas(int(h)) for h in homes]
    return Instance.build(m, releases=releases, procs=1.0, machine_sets=machine_sets)


@dataclass(frozen=True)
class RatioStudy:
    """Distribution of EFT/OPT ratios over random instances."""

    strategy: str
    m: int
    k: int
    trials: int
    ratios: np.ndarray

    @property
    def worst(self) -> float:
        return float(self.ratios.max())

    @property
    def mean(self) -> float:
        return float(self.ratios.mean())


def study(
    strategy: str,
    m: int,
    k: int,
    n: int,
    trials: int,
    tiebreak: str = "min",
    rng_seed: int = 0,
) -> RatioStudy:
    """Measure EFT/OPT on ``trials`` random unit instances."""
    rng = np.random.default_rng(rng_seed)
    ratios = []
    for _ in range(trials):
        inst = random_structured_instance(m, k, n, strategy, rng)
        eft_val = fast_eft_fmax(inst, tiebreak=tiebreak)
        opt_val = optimal_unit_fmax(inst)
        ratios.append(eft_val / opt_val)
    return RatioStudy(strategy=strategy, m=m, k=k, trials=trials, ratios=np.array(ratios))


def run(m: int = 8, k: int = 3, n: int = 40, trials: int = 20, rng_seed: int = 5) -> TextTable:
    """Render the ratio study table for the three settings."""
    table = TextTable(
        title=f"EFT vs exact OPT on random unit instances (m={m}, k={k}, n={n}, {trials} trials)",
        headers=["processing sets", "guarantee", "worst ratio", "mean ratio"],
    )
    full = study("full", m, k, n, trials, rng_seed=rng_seed)
    table.add_row("unrestricted", f"<= {3 - 2 / m:.3f} (Thm 1)", full.worst, full.mean)
    disj = study("disjoint", m, k, n, trials, rng_seed=rng_seed + 1)
    table.add_row("disjoint intervals", f"<= {3 - 2 / k:.3f} (Cor 1)", disj.worst, disj.mean)
    over = study("overlapping", m, k, n, trials, rng_seed=rng_seed + 2)
    table.add_row("overlapping intervals", f"no bound (< {m - k + 1} forced, Thm 8)", over.worst, over.mean)
    return table
