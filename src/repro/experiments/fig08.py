"""Figure 8 — load distribution examples.

For ``m = 6`` and :math:`\\lambda = m`, the per-machine loads
:math:`\\lambda P(E_j)` under the three popularity cases (Uniform,
Worst-case :math:`s = 1`, Shuffled :math:`s = 1`).
"""

from __future__ import annotations

from ..simulation.popularity import shuffled_case, uniform_case, worst_case
from .common import TextTable

__all__ = ["run"]


def run(m: int = 6, s: float = 1.0, rng_seed: int = 7) -> TextTable:
    """Regenerate Figure 8 as a table of per-machine loads."""
    cases = [
        ("Uniform (s=0)", uniform_case(m)),
        (f"Worst-case (s={s:g})", worst_case(m, s)),
        (f"Shuffled (s={s:g})", shuffled_case(m, s, rng_seed)),
    ]
    table = TextTable(
        title=f"Figure 8: load distribution lambda*P(E_j) for m={m}, lambda=m",
        headers=["case"] + [f"M{j}" for j in range(1, m + 1)] + ["max load"],
    )
    lam = float(m)
    for name, pop in cases:
        loads = pop.machine_loads(lam)
        table.add_row(name, *[round(float(x), 3) for x in loads], round(float(loads.max()), 3))
    table.notes.append("loads above 1.0 saturate the machine when k = 1 (no replication)")
    return table
