"""Experiment harness: one module per paper table/figure."""

from . import faulted, fig03, fig08, fig10, fig11, ratios, stability, table1, table2, tails, verify
from .common import TextTable

__all__ = ["TextTable", "faulted", "fig03", "fig08", "fig10", "fig11", "ratios", "table1", "stability", "table2", "tails", "verify"]
