"""Tail-latency breakdown (extension experiment).

The paper's introduction motivates everything with the *tail latency
problem*: most requests are fast, a few are disastrous.  The paper
reports only the max; this experiment breaks the flow-time
distribution into percentiles (p50/p95/p99/max) across replication
strategies and dispatch policies, showing *where* in the tail the
disjoint strategy and the non-clairvoyant policies lose.
"""

from __future__ import annotations

import numpy as np

from ..core.arrayeft import fast_eft_schedule
from ..core.metrics import flow_percentiles
from ..core.nonclairvoyant import C3Like, LeastOutstanding
from ..simulation.popularity import MachinePopularity, shuffled_case
from ..simulation.workload import WorkloadSpec, generate_workload
from .common import TextTable

__all__ = ["run"]

_QS = (50.0, 95.0, 99.0, 100.0)


def _percentiles_for(policy: str, inst, m: int) -> dict[float, float]:
    if policy == "EFT-Min":
        sched = fast_eft_schedule(inst, tiebreak="min")
    elif policy == "LOR":
        sched = LeastOutstanding(m).run(inst)
    elif policy == "C3":
        sched = C3Like(m).run(inst)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return flow_percentiles(sched, qs=_QS)


def run(
    m: int = 15,
    k: int = 3,
    n: int = 4000,
    load: float = 0.45,
    s: float = 1.0,
    repeats: int = 3,
    size_dist: str = "unit",
    rng_seed: int = 31,
    policies: tuple[str, ...] = ("EFT-Min", "LOR", "C3"),
) -> TextTable:
    """Percentile table at one load point (median over ``repeats``)."""
    pop: MachinePopularity = shuffled_case(m, s, rng_seed)
    table = TextTable(
        title=(
            f"Flow-time percentiles at {100 * load:.0f}% load "
            f"(m={m}, k={k}, {size_dist} sizes, shuffled s={s:g})"
        ),
        headers=["strategy", "policy", "p50", "p95", "p99", "max"],
    )
    for strategy in ("overlapping", "disjoint"):
        for policy in policies:
            acc = {q: [] for q in _QS}
            for rep in range(repeats):
                spec = WorkloadSpec(
                    m=m, n=n, lam=load * m, k=k, strategy=strategy, size_dist=size_dist
                )
                inst = generate_workload(
                    spec, rng=np.random.default_rng(rng_seed + rep), popularity=pop
                )
                pct = _percentiles_for(policy, inst, m)
                for q in _QS:
                    acc[q].append(pct[q])
            table.add_row(
                strategy,
                policy,
                *[round(float(np.median(acc[q])), 2) for q in _QS],
            )
    table.notes.append("p50 barely moves across strategies; the damage concentrates in p99/max")
    return table
