"""One-shot verification of every theorem claim (the self-check).

``python -m repro verify`` runs a quick empirical check of each formal
result and prints a pass/fail table — the smoke test a user runs after
installing to confirm the reproduction is intact on their machine.
Each check is a scaled-down version of the corresponding test; the full
test suite remains the authority.
"""

from __future__ import annotations

import math

import numpy as np

from ..adversaries import (
    AnyTiebreakAdversary,
    EFTIntervalAdversary,
    FixedKAdversary,
    InclusiveAdversary,
    IntervalTwoAdversary,
    NestedAdversary,
)
from ..core import EFT, Instance, eft_schedule, fifo_schedule
from ..maxload.closedform import max_load_hall
from ..maxload.lp import max_load_lp
from ..offline import optimal_unit_fmax
from ..simulation.popularity import shuffled_case
from .common import TextTable

__all__ = ["run"]


def _check_prop1(rng: np.random.Generator) -> tuple[bool, str]:
    for _ in range(5):
        n = int(rng.integers(5, 25))
        inst = Instance.build(
            int(rng.integers(1, 5)),
            releases=np.sort(rng.uniform(0, 10, n)),
            procs=rng.uniform(0.2, 3, n),
        )
        if not eft_schedule(inst, tiebreak="min").same_placements(
            fifo_schedule(inst, tiebreak="min")
        ):
            return False, "schedules diverged"
    return True, "5 random instances, identical schedules"


def _check_thm2(rng: np.random.Generator) -> tuple[bool, str]:
    for _ in range(3):
        n = int(rng.integers(4, 12))
        inst = Instance.build(
            int(rng.integers(1, 4)),
            releases=sorted(float(x) for x in rng.integers(0, 6, n)),
            procs=1.0,
        )
        if fifo_schedule(inst).max_flow != float(optimal_unit_fmax(inst)):
            return False, "FIFO not optimal on a unit instance"
    return True, "FIFO == exact OPT on unit instances"


def _check_adversary(adv, factory, bound, slack=0.97) -> tuple[bool, str]:
    result = adv.run(factory)
    ok = result.ratio >= slack * bound
    return ok, f"achieved {result.ratio:.3f} vs bound {bound:g}"


def _check_thm10() -> tuple[bool, str]:
    m, k = 5, 2
    adv = AnyTiebreakAdversary(m, k, steps=m**3)
    result = adv.run(lambda mm: EFT(mm, tiebreak="max"))
    forced = adv.regular_max_flow(result)
    plain = EFTIntervalAdversary(m, k, steps=m**3).run(lambda mm: EFT(mm, tiebreak="max"))
    ok = forced >= m - k + 1 - 1e-6 and plain.fmax < m - k + 1
    return ok, f"staggered {forced:.4f} vs plain {plain.fmax:g} (bound {m - k + 1})"


def _check_cor1(rng: np.random.Generator) -> tuple[bool, str]:
    from ..psets.replication import DisjointIntervals

    m, k = 6, 3
    strat = DisjointIntervals(m, k)
    worst = 0.0
    for _ in range(4):
        n = int(rng.integers(6, 24))
        homes = rng.integers(1, m + 1, n)
        inst = Instance.build(
            m,
            releases=sorted(float(x) for x in rng.integers(0, 4, n)),
            procs=1.0,
            machine_sets=[strat.replicas(int(h)) for h in homes],
        )
        worst = max(worst, eft_schedule(inst).max_flow / optimal_unit_fmax(inst))
    ok = worst <= 3 - 2 / k + 1e-9
    return ok, f"worst ratio {worst:.3f} <= {3 - 2 / k:.3f}"


def _check_lp() -> tuple[bool, str]:
    pop = shuffled_case(7, 1.0, rng=0)
    for strat in ("overlapping", "disjoint"):
        lp = max_load_lp(pop, strat, 3).lam
        hall = max_load_hall(pop, strat, 3)
        if abs(lp - hall) > 1e-6:
            return False, f"{strat}: LP {lp} != Hall {hall}"
    return True, "LP == Hall enumeration on both strategies"


def run(rng_seed: int = 0) -> TextTable:
    """Run every verification and return the pass/fail table."""
    rng = np.random.default_rng(rng_seed)
    m = 16
    mk_min = lambda mm: EFT(mm, tiebreak="min")  # noqa: E731
    checks = [
        ("Proposition 1 (FIFO == EFT)", *_check_prop1(rng)),
        ("Theorem 2 (FIFO optimal, unit)", *_check_thm2(rng)),
        (
            "Theorem 3 (inclusive >= floor(log2 m + 1))",
            *_check_adversary(InclusiveAdversary(m, p=1000), mk_min, math.floor(math.log2(m) + 1)),
        ),
        (
            "Theorem 4 (|Mi|=k >= floor(log_k m))",
            *_check_adversary(FixedKAdversary(m, 2, p=1000), mk_min, math.floor(math.log2(m))),
        ),
        (
            "Theorem 5 (nested >= (log2 m + 2)/3)",
            *_check_adversary(NestedAdversary(m), mk_min, (math.log2(m) + 2) / 3),
        ),
        ("Corollary 1 (EFT <= 3 - 2/k disjoint)", *_check_cor1(rng)),
        (
            "Theorem 7 (interval any online >= 2)",
            *_check_adversary(IntervalTwoAdversary(p=1000), mk_min, 2.0),
        ),
        (
            "Theorem 8 (EFT-Min >= m - k + 1)",
            *_check_adversary(EFTIntervalAdversary(8, 3), mk_min, 6.0, slack=1.0),
        ),
        ("Theorem 10 (any tie-break forced)", *_check_thm10()),
        ("LP (15) == Hall condition", *_check_lp()),
    ]
    table = TextTable(
        title="Self-check: empirical verification of every claim",
        headers=["claim", "status", "evidence"],
    )
    for name, ok, evidence in checks:
        table.add_row(name, "PASS" if ok else "FAIL", evidence)
    failures = sum(1 for _, ok, _ in checks if not ok)
    table.notes.append(
        "all claims verified" if failures == 0 else f"{failures} CLAIM(S) FAILED"
    )
    return table
