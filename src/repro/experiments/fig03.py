"""Figure 3/4 — trace of the Theorem 8 adversary under EFT-Min.

Figure 3 shows the EFT-Min schedule of the adversary from ``t = 0`` to
``t = 3`` for ``m = 6``, ``k = 3``; Figure 4 shows the schedule profile
:math:`w_t` against the stable profile :math:`w_\\tau`.  :func:`run`
reproduces both as text.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..adversaries.eftmin import run_with_profiles
from ..core.eft import EFT
from ..core.gantt import render_gantt, render_profile
from ..theory.profiles import stable_profile

__all__ = ["Fig03Result", "run"]


@dataclass(frozen=True)
class Fig03Result:
    """Rendered Gantt + profile trace."""

    gantt: str
    profile_view: str
    profiles: np.ndarray
    stable: np.ndarray
    fmax: float
    converged_at: int | None

    def to_text(self) -> str:
        parts = [
            "Figure 3: EFT-Min schedule of the Theorem 8 adversary",
            self.gantt,
            "",
            "Figure 4: final schedule profile w_t vs stable profile w_tau (marked '|')",
            self.profile_view,
            f"Fmax reached: {self.fmax:g}",
        ]
        if self.converged_at is not None:
            parts.append(f"profile reached w_tau at t = {self.converged_at}")
        return "\n".join(parts)


def run(m: int = 6, k: int = 3, steps: int | None = None, render_until: float = 8.0) -> Fig03Result:
    """Run the adversary and render the paper's trace figures."""
    steps = steps if steps is not None else m**3
    schedule, profiles = run_with_profiles(m, k, steps, EFT(m, tiebreak="min"))
    wtau = stable_profile(m, k)
    converged = None
    for t in range(profiles.shape[0]):
        if np.allclose(profiles[t], wtau):
            converged = t
            break
    return Fig03Result(
        gantt=render_gantt(schedule, until=render_until, cell=1.0, width=80),
        profile_view=render_profile(profiles[-1], wtau),
        profiles=profiles,
        stable=wtau,
        fmax=schedule.max_flow,
        converged_at=converged,
    )
