"""Figure 10 — theoretical maximum load of the replication strategies.

Figure 10a: median max-load (percent) of the LP (15) over shuffled
permutations, on the grid :math:`s \\in [0, 5]` (step 0.25) ×
:math:`k \\in [1, m]`, for overlapping and disjoint intervals,
``m = 15``.  Figure 10b: the ratio of the two strategies' medians.

:func:`run` executes the sweep and renders both grids as text heatmap
tables; key paper shapes are summarised in the notes (equality at
``s = 0`` and ``k = m``, peak gain ≈ 1.5 near ``s ≈ 1.25``,
``k ≈ 6``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..campaigns.cache import ResultCache
from ..campaigns.runner import run_campaign
from ..campaigns.spec import CampaignSpec, Unit
from ..maxload.sweep import SweepResult, overlap_gain_ratio, sweep_max_load
from ..obs.recorders import MetricsRegistry, linear_edges
from .common import TextTable

__all__ = ["Fig10Result", "build_campaign", "run"]


@dataclass(frozen=True)
class Fig10Result:
    """Sweep data plus rendered tables."""

    sweep: SweepResult
    table_overlapping: TextTable
    table_disjoint: TextTable
    table_ratio: TextTable
    peak_gain: float
    peak_at: tuple[float, int]

    def to_text(self) -> str:
        return "\n\n".join(
            [
                self.table_overlapping.to_text(),
                self.table_disjoint.to_text(),
                self.table_ratio.to_text(),
                self.to_heatmaps(),
                f"peak overlapping/disjoint gain: {self.peak_gain:.3f} at "
                f"(s={self.peak_at[0]:g}, k={self.peak_at[1]})",
            ]
        )

    def metrics(self) -> MetricsRegistry:
        """Deterministic metrics view of the sweep (the ``--metrics``
        payload): per-strategy max-load histograms over the whole
        ``(s, k)`` grid, a gain-ratio histogram, and peak gauges."""
        registry = MetricsRegistry()
        registry.counter("grid_cells").inc(
            int(self.sweep.s_values.size * self.sweep.k_values.size)
        )
        for name in ("overlapping", "disjoint"):
            hist = registry.histogram(
                f"max_load[{name}]", linear_edges(0.0, 100.0, 10)
            )
            hist.observe_all(float(v) for v in self.sweep.loads[name].ravel())
        ratio = self.sweep.ratio().ravel()
        registry.histogram(
            "gain_ratio", linear_edges(float(ratio.min()), float(ratio.max()), 10)
        ).observe_all(float(v) for v in ratio)
        registry.gauge("peak_gain").set(self.peak_gain)
        registry.gauge("peak_s").set(self.peak_at[0])
        registry.gauge("peak_k").set(self.peak_at[1])
        return registry

    def to_heatmaps(self) -> str:
        """Shaded ASCII heatmaps of the two max-load grids — the
        closest text rendering of the paper's Figure 10a."""
        from .common import render_heatmap

        rows = [f"{s:g}" for s in self.sweep.s_values]
        cols = [str(int(k)) for k in self.sweep.k_values]
        parts = []
        for name in ("overlapping", "disjoint"):
            parts.append(
                render_heatmap(
                    self.sweep.loads[name],
                    rows,
                    cols,
                    f"Figure 10a heatmap ({name}): max-load % by s (rows) x k (cols)",
                    vmin=0.0,
                    vmax=100.0,
                )
            )
        return "\n\n".join(parts)


def _grid_table(title: str, sweep: SweepResult, grid: np.ndarray, fmt: str) -> TextTable:
    table = TextTable(
        title=title,
        headers=["s \\ k"] + [str(int(k)) for k in sweep.k_values],
    )
    for si, s in enumerate(sweep.s_values):
        table.add_row(f"{s:g}", *[format(grid[si, ki], fmt) for ki in range(sweep.k_values.size)])
    return table


def build_campaign(
    m: int = 15,
    s_values=None,
    k_values=None,
    n_permutations: int = 100,
    rng_seed: int = 1234,
) -> tuple[CampaignSpec, Callable[[Sequence[Mapping[str, Any]]], "Fig10Result"]]:
    """Describe the Figure 10 sweep as a campaign: one unit per ``s``
    row (rows share their permutation batch, rows are independent).

    Returns the spec and an ``assemble(unit_results) -> Fig10Result``
    closure.  Because every row seeds its own stream
    (:func:`repro.maxload.sweep.row_rng`), the assembled grid is
    identical to the serial :func:`~repro.maxload.sweep.sweep_max_load`
    for the same seed, whatever the worker count.
    """
    s_values = np.arange(0.0, 5.01, 0.25) if s_values is None else np.asarray(s_values, dtype=float)
    k_values = np.arange(1, m + 1) if k_values is None else np.asarray(k_values, dtype=int)
    units = tuple(
        Unit(
            kind="repro.maxload.sweep:row_unit",
            params={
                "m": m,
                "s": float(s),
                "s_index": si,
                "k_values": [int(k) for k in k_values],
                "n_permutations": n_permutations,
                "case": "shuffled",
            },
            seed=rng_seed,
            label=f"fig10 row s={s:g}",
        )
        for si, s in enumerate(s_values)
    )
    spec = CampaignSpec(
        name="fig10",
        units=units,
        meta={"m": m, "n_permutations": n_permutations, "rng_seed": rng_seed},
    )

    def assemble(unit_results: Sequence[Mapping[str, Any]]) -> Fig10Result:
        loads = {
            "overlapping": np.zeros((s_values.size, k_values.size)),
            "disjoint": np.zeros((s_values.size, k_values.size)),
        }
        for si, row in enumerate(unit_results):
            for name in ("overlapping", "disjoint"):
                loads[name][si, :] = row[name]
        sweep = SweepResult(
            m=m,
            s_values=s_values,
            k_values=k_values,
            n_permutations=n_permutations,
            loads=loads,
        )
        ratio = sweep.ratio()
        peak = float(ratio.max())
        si, ki = np.unravel_index(int(ratio.argmax()), ratio.shape)
        result = Fig10Result(
            sweep=sweep,
            table_overlapping=_grid_table(
                f"Figure 10a (overlapping): median max-load % (m={m}, {n_permutations} permutations)",
                sweep,
                sweep.loads["overlapping"],
                ".0f",
            ),
            table_disjoint=_grid_table(
                f"Figure 10a (disjoint): median max-load % (m={m}, {n_permutations} permutations)",
                sweep,
                sweep.loads["disjoint"],
                ".0f",
            ),
            table_ratio=_grid_table(
                "Figure 10b: overlapping / disjoint median max-load ratio",
                sweep,
                ratio,
                ".2f",
            ),
            peak_gain=peak,
            peak_at=(float(sweep.s_values[si]), int(sweep.k_values[ki])),
        )
        assert abs(overlap_gain_ratio(sweep) - peak) < 1e-12
        return result

    return spec, assemble


def run(
    m: int = 15,
    s_values=None,
    k_values=None,
    n_permutations: int = 100,
    rng_seed: int = 1234,
    n_jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> Fig10Result:
    """Run the Figure 10 sweep (paper-scale by default; pass smaller
    grids for quick benchmarks).  ``n_jobs`` distributes sweep rows
    over worker processes (``None`` = all cores) with identical
    output; ``cache`` reuses previously computed rows."""
    spec, assemble = build_campaign(
        m=m,
        s_values=s_values,
        k_values=k_values,
        n_permutations=n_permutations,
        rng_seed=rng_seed,
    )
    campaign = run_campaign(spec, n_jobs=n_jobs, cache=cache)
    return assemble(campaign.results())
