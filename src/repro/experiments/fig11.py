"""Figure 11 — max flow time vs average load (simulation).

For ``m = 15``, ``k = 3``, 10 000 unit tasks released by a Poisson
process: max-flow of EFT-Min and EFT-Max under both replication
strategies, in the three popularity cases (Uniform; Shuffled and
Worst-case with ``s = 1``), median over 10 runs per point.  Each facet
also reports the theoretical max-load of both strategies from the LP —
the red vertical lines of the paper (≈ 100 for Uniform; ≈ 66/52 for
Shuffled; ≈ 59/36 for Worst-case, overlapping/disjoint).

The measurement loop is a campaign (:mod:`repro.campaigns`): one unit
per ``(case, strategy, heuristic, load)`` curve point, each carrying
its own seeds and popularity weights, so points can run on any number
of workers (``n_jobs=``) and hit the on-disk result cache — with
output numerically identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..campaigns.cache import ResultCache
from ..campaigns.runner import run_campaign
from ..campaigns.spec import CampaignSpec, Unit
from ..core.arrayeft import fast_eft_fmax
from ..maxload.lp import max_load_lp
from ..obs.recorders import MetricsRegistry, linear_edges
from ..simulation.popularity import MachinePopularity, shuffled_case, uniform_case, worst_case
from ..simulation.workload import WorkloadSpec, generate_workload
from .common import TextTable

__all__ = ["Fig11Point", "Fig11Result", "build_campaign", "measure_unit", "run", "DEFAULT_LOADS"]

#: Load grids (percent) per case, matching the paper's facet axes.
DEFAULT_LOADS: dict[str, tuple[int, ...]] = {
    "uniform": (20, 30, 40, 50, 60, 70, 80, 90, 100),
    "shuffled": (10, 20, 30, 40, 50, 60),
    "worst": (10, 20, 30, 40, 50, 60),
}


@dataclass(frozen=True)
class Fig11Point:
    """One (case, strategy, heuristic, load) measurement."""

    case: str
    strategy: str
    heuristic: str
    load_percent: float
    fmax_median: float
    fmax_runs: tuple[float, ...]


@dataclass
class Fig11Result:
    """All series of Figure 11 plus the per-case LP red lines."""

    m: int
    k: int
    n: int
    repeats: int
    points: list[Fig11Point] = field(default_factory=list)
    max_load_lines: dict = field(default_factory=dict)  # case -> {strategy: percent}

    def series(self, case: str, strategy: str, heuristic: str) -> list[tuple[float, float]]:
        """(load %, median Fmax) pairs of one curve."""
        return [
            (p.load_percent, p.fmax_median)
            for p in self.points
            if p.case == case and p.strategy == strategy and p.heuristic == heuristic
        ]

    def to_table(self) -> TextTable:
        table = TextTable(
            title=(
                f"Figure 11: median Fmax vs average load "
                f"(m={self.m}, k={self.k}, n={self.n}, {self.repeats} runs)"
            ),
            headers=["case", "strategy", "heuristic", "load %", "median Fmax"],
        )
        for p in self.points:
            table.add_row(p.case, p.strategy, p.heuristic, p.load_percent, p.fmax_median)
        for case, lines in self.max_load_lines.items():
            table.notes.append(
                f"{case}: LP max load overlapping={lines['overlapping']:.0f}%, "
                f"disjoint={lines['disjoint']:.0f}%"
            )
        return table

    def to_text(self) -> str:
        return self.to_table().to_text()

    def metrics(self) -> MetricsRegistry:
        """Deterministic metrics view of the figure (the ``--metrics``
        payload): one ``fmax`` series per curve (load % on the time
        axis), an ``fmax_runs`` histogram over every individual run,
        and the LP red lines as gauges."""
        registry = MetricsRegistry()
        registry.counter("points").inc(len(self.points))
        all_runs: list[float] = []
        for p in self.points:
            registry.series(
                f"fmax[{p.case}/{p.strategy}/{p.heuristic}]"
            ).observe(p.load_percent, p.fmax_median)
            all_runs.extend(p.fmax_runs)
        if all_runs:
            registry.histogram(
                "fmax_runs", linear_edges(min(all_runs), max(all_runs), 12)
            ).observe_all(all_runs)
        for case, lines in self.max_load_lines.items():
            for strategy, percent in lines.items():
                registry.gauge(f"lp_max_load[{case}/{strategy}]").set(percent)
        return registry


def _popularity(case: str, m: int, s: float, rng: np.random.Generator) -> MachinePopularity:
    if case == "uniform":
        return uniform_case(m)
    if case == "worst":
        return worst_case(m, s)
    return shuffled_case(m, s, rng)


def measure_unit(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Campaign unit executor: one ``(case, strategy, heuristic,
    load)`` curve point, median over ``repeats`` seeded runs.

    Pure function of ``(params, seed)`` — the popularity weights of
    every repeat ride along in ``params`` so the unit is self-contained
    (hashable for the cache, executable on any worker).  The per-repeat
    workload seed is ``seed + 1000 * rep + load``, exactly the serial
    seeding this module has always used, so parallel and serial runs
    produce identical numbers.
    """
    m = int(params["m"])
    load = int(params["load"])
    repeats = int(params["repeats"])
    lam = load / 100.0 * m
    runs = []
    for rep in range(repeats):
        pop = MachinePopularity(
            weights=np.asarray(params["pop_weights"][rep], dtype=float),
            case=str(params["case"]),
            s=float(params["s"]),
        )
        spec = WorkloadSpec(
            m=m,
            n=int(params["n"]),
            lam=lam,
            k=int(params["k"]),
            strategy=str(params["strategy"]),
            case=str(params["case"]),
            s=float(params["s"]),
        )
        inst = generate_workload(
            spec,
            rng=np.random.default_rng(seed + 1000 * rep + load),
            popularity=pop,
        )
        runs.append(fast_eft_fmax(inst, tiebreak=str(params["heuristic"])))
    return {"fmax_runs": [float(f) for f in runs]}


def build_campaign(
    m: int = 15,
    k: int = 3,
    n: int = 10_000,
    repeats: int = 10,
    s: float = 1.0,
    loads: dict[str, tuple[int, ...]] | None = None,
    cases: tuple[str, ...] = ("uniform", "shuffled", "worst"),
    rng_seed: int = 2022,
) -> tuple[CampaignSpec, Callable[[Sequence[Mapping[str, Any]]], Fig11Result]]:
    """Describe the Figure 11 campaign.

    Returns the :class:`CampaignSpec` (one unit per curve point) and
    an ``assemble(unit_results) -> Fig11Result`` closure that folds the
    unit results — in unit order — back into the figure, including the
    LP red lines (computed here: the LP is cheap, the measurements are
    not).
    """
    loads = dict(DEFAULT_LOADS) if loads is None else loads
    rng = np.random.default_rng(rng_seed)
    max_load_lines: dict[str, dict[str, float]] = {}
    units: list[Unit] = []
    point_keys: list[tuple[str, str, str, int]] = []
    for case in cases:
        # One popularity per repeat, shared by every curve of the facet
        # (and, for Shuffled, one permutation per repeat), as in the
        # paper.  Drawn here, sequentially, so the stream matches the
        # historical serial implementation.
        pops = [_popularity(case, m, s, rng) for _ in range(repeats)]
        # Red lines: median LP max-load over the repeat popularities.
        max_load_lines[case] = {
            strat: float(
                np.median([max_load_lp(pop, strat, k).load_percent for pop in pops])
            )
            for strat in ("overlapping", "disjoint")
        }
        weights = [[float(w) for w in pop.weights] for pop in pops]
        for strategy in ("overlapping", "disjoint"):
            for heuristic in ("min", "max"):
                for load in loads[case]:
                    units.append(
                        Unit(
                            kind="repro.experiments.fig11:measure_unit",
                            params={
                                "m": m,
                                "k": k,
                                "n": n,
                                "s": s,
                                "repeats": repeats,
                                "case": case,
                                "strategy": strategy,
                                "heuristic": heuristic,
                                "load": int(load),
                                "pop_weights": weights,
                            },
                            seed=rng_seed,
                            label=f"fig11 {case}/{strategy}/EFT-{heuristic} load={load}%",
                        )
                    )
                    point_keys.append((case, strategy, heuristic, int(load)))
    spec = CampaignSpec(
        name="fig11",
        units=tuple(units),
        meta={"m": m, "k": k, "n": n, "repeats": repeats, "s": s, "rng_seed": rng_seed},
    )

    def assemble(unit_results: Sequence[Mapping[str, Any]]) -> Fig11Result:
        result = Fig11Result(m=m, k=k, n=n, repeats=repeats)
        result.max_load_lines = max_load_lines
        for (case, strategy, heuristic, load), unit_result in zip(point_keys, unit_results):
            runs = [float(f) for f in unit_result["fmax_runs"]]
            result.points.append(
                Fig11Point(
                    case=case,
                    strategy=strategy,
                    heuristic=f"EFT-{heuristic.capitalize()}",
                    load_percent=float(load),
                    fmax_median=float(np.median(runs)),
                    fmax_runs=tuple(runs),
                )
            )
        return result

    return spec, assemble


def run(
    m: int = 15,
    k: int = 3,
    n: int = 10_000,
    repeats: int = 10,
    s: float = 1.0,
    loads: dict[str, tuple[int, ...]] | None = None,
    cases: tuple[str, ...] = ("uniform", "shuffled", "worst"),
    rng_seed: int = 2022,
    n_jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> Fig11Result:
    """Run the Figure 11 simulation campaign.

    Paper-scale by default (``n = 10000``, ``repeats = 10``); pass
    smaller values for quick runs.  Within one repeat the same
    popularity (and, for Shuffled, the same permutation) is shared by
    every curve, as in the paper.  ``n_jobs`` fans curve points out
    over worker processes (``None`` = all cores) with numerically
    identical output; ``cache`` reuses previously computed points.
    """
    spec, assemble = build_campaign(
        m=m, k=k, n=n, repeats=repeats, s=s, loads=loads, cases=cases, rng_seed=rng_seed
    )
    campaign = run_campaign(spec, n_jobs=n_jobs, cache=cache)
    return assemble(campaign.results())
