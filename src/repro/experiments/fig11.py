"""Figure 11 — max flow time vs average load (simulation).

For ``m = 15``, ``k = 3``, 10 000 unit tasks released by a Poisson
process: max-flow of EFT-Min and EFT-Max under both replication
strategies, in the three popularity cases (Uniform; Shuffled and
Worst-case with ``s = 1``), median over 10 runs per point.  Each facet
also reports the theoretical max-load of both strategies from the LP —
the red vertical lines of the paper (≈ 100 for Uniform; ≈ 66/52 for
Shuffled; ≈ 59/36 for Worst-case, overlapping/disjoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.eft import eft_schedule
from ..maxload.lp import max_load_lp
from ..simulation.popularity import MachinePopularity, shuffled_case, uniform_case, worst_case
from ..simulation.workload import WorkloadSpec, generate_workload
from .common import TextTable

__all__ = ["Fig11Point", "Fig11Result", "run", "DEFAULT_LOADS"]

#: Load grids (percent) per case, matching the paper's facet axes.
DEFAULT_LOADS: dict[str, tuple[int, ...]] = {
    "uniform": (20, 30, 40, 50, 60, 70, 80, 90, 100),
    "shuffled": (10, 20, 30, 40, 50, 60),
    "worst": (10, 20, 30, 40, 50, 60),
}


@dataclass(frozen=True)
class Fig11Point:
    """One (case, strategy, heuristic, load) measurement."""

    case: str
    strategy: str
    heuristic: str
    load_percent: float
    fmax_median: float
    fmax_runs: tuple[float, ...]


@dataclass
class Fig11Result:
    """All series of Figure 11 plus the per-case LP red lines."""

    m: int
    k: int
    n: int
    repeats: int
    points: list[Fig11Point] = field(default_factory=list)
    max_load_lines: dict = field(default_factory=dict)  # case -> {strategy: percent}

    def series(self, case: str, strategy: str, heuristic: str) -> list[tuple[float, float]]:
        """(load %, median Fmax) pairs of one curve."""
        return [
            (p.load_percent, p.fmax_median)
            for p in self.points
            if p.case == case and p.strategy == strategy and p.heuristic == heuristic
        ]

    def to_table(self) -> TextTable:
        table = TextTable(
            title=(
                f"Figure 11: median Fmax vs average load "
                f"(m={self.m}, k={self.k}, n={self.n}, {self.repeats} runs)"
            ),
            headers=["case", "strategy", "heuristic", "load %", "median Fmax"],
        )
        for p in self.points:
            table.add_row(p.case, p.strategy, p.heuristic, p.load_percent, p.fmax_median)
        for case, lines in self.max_load_lines.items():
            table.notes.append(
                f"{case}: LP max load overlapping={lines['overlapping']:.0f}%, "
                f"disjoint={lines['disjoint']:.0f}%"
            )
        return table

    def to_text(self) -> str:
        return self.to_table().to_text()


def _popularity(case: str, m: int, s: float, rng: np.random.Generator) -> MachinePopularity:
    if case == "uniform":
        return uniform_case(m)
    if case == "worst":
        return worst_case(m, s)
    return shuffled_case(m, s, rng)


def run(
    m: int = 15,
    k: int = 3,
    n: int = 10_000,
    repeats: int = 10,
    s: float = 1.0,
    loads: dict[str, tuple[int, ...]] | None = None,
    cases: tuple[str, ...] = ("uniform", "shuffled", "worst"),
    rng_seed: int = 2022,
) -> Fig11Result:
    """Run the Figure 11 simulation campaign.

    Paper-scale by default (``n = 10000``, ``repeats = 10``); pass
    smaller values for quick runs.  Within one repeat the same
    popularity (and, for Shuffled, the same permutation) is shared by
    every curve, as in the paper.
    """
    loads = dict(DEFAULT_LOADS) if loads is None else loads
    rng = np.random.default_rng(rng_seed)
    result = Fig11Result(m=m, k=k, n=n, repeats=repeats)
    for case in cases:
        # Red lines: median LP max-load over the repeat popularities.
        pops = [_popularity(case, m, s, rng) for _ in range(repeats)]
        result.max_load_lines[case] = {
            strat: float(
                np.median([max_load_lp(pop, strat, k).load_percent for pop in pops])
            )
            for strat in ("overlapping", "disjoint")
        }
        for strategy in ("overlapping", "disjoint"):
            for heuristic in ("min", "max"):
                for load in loads[case]:
                    lam = load / 100.0 * m
                    runs = []
                    for rep in range(repeats):
                        spec = WorkloadSpec(
                            m=m, n=n, lam=lam, k=k, strategy=strategy, case=case, s=s
                        )
                        inst = generate_workload(
                            spec,
                            rng=np.random.default_rng(rng_seed + 1000 * rep + load),
                            popularity=pops[rep],
                        )
                        runs.append(eft_schedule(inst, tiebreak=heuristic).max_flow)
                    result.points.append(
                        Fig11Point(
                            case=case,
                            strategy=strategy,
                            heuristic=f"EFT-{heuristic.capitalize()}",
                            load_percent=float(load),
                            fmax_median=float(np.median(runs)),
                            fmax_runs=tuple(runs),
                        )
                    )
    return result
