"""Stability analysis: the LP max-load line is a real phase boundary.

Figure 11's "red lines" are theoretical capacities from the LP (15).
This extension experiment demonstrates they are *dynamic* phase
boundaries: running the same workload at increasing horizon ``n``,
the max flow time

* **plateaus** when the average load sits below the strategy's LP
  max-load (the queueing system is stable; the max over n samples of
  a stationary distribution grows only logarithmically), and
* **grows linearly** when the load exceeds it (work accumulates at a
  constant rate — the cluster is beyond capacity no matter how clever
  the scheduler).
"""

from __future__ import annotations

import numpy as np

from ..core.arrayeft import fast_eft_fmax
from ..maxload.lp import max_load_lp
from ..simulation.popularity import MachinePopularity, worst_case
from ..simulation.workload import WorkloadSpec, generate_workload
from .common import TextTable

__all__ = ["run", "growth_rate"]


def growth_rate(ns, fmaxes) -> float:
    """Least-squares slope of Fmax against n, normalised by the mean
    inter-release time — ~0 for a stable system, ~(excess load) for an
    unstable one."""
    ns = np.asarray(ns, dtype=float)
    fmaxes = np.asarray(fmaxes, dtype=float)
    slope = np.polyfit(ns, fmaxes, 1)[0]
    return float(slope)


def run(
    m: int = 15,
    k: int = 3,
    s: float = 1.0,
    strategy: str = "disjoint",
    ns: tuple[int, ...] = (1000, 2000, 4000, 8000),
    repeats: int = 3,
    rng_seed: int = 17,
) -> TextTable:
    """Measure Fmax vs horizon at one load below and one above the
    strategy's LP capacity (Worst-case popularity)."""
    pop: MachinePopularity = worst_case(m, s)
    capacity = max_load_lp(pop, strategy, k).load_percent
    below = 0.8 * capacity / 100.0
    above = 1.3 * capacity / 100.0
    table = TextTable(
        title=(
            f"Stability across the LP capacity line "
            f"({strategy}, worst case s={s:g}, capacity {capacity:.1f}%)"
        ),
        headers=["regime", "load %"] + [f"n={n}" for n in ns] + ["slope/n"],
    )
    for label, load in (("stable (0.8x cap)", below), ("unstable (1.3x cap)", above)):
        medians = []
        for n in ns:
            vals = []
            for rep in range(repeats):
                spec = WorkloadSpec(m=m, n=n, lam=load * m, k=k, strategy=strategy)
                inst = generate_workload(
                    spec, rng=np.random.default_rng(rng_seed + rep), popularity=pop
                )
                vals.append(fast_eft_fmax(inst, tiebreak="min"))
            medians.append(float(np.median(vals)))
        table.add_row(
            label,
            round(100 * load, 1),
            *[round(v, 2) for v in medians],
            f"{growth_rate(ns, medians):.5f}",
        )
    table.notes.append(
        "stable regime: Fmax plateaus with n; unstable: linear growth — the LP "
        "line is a dynamic phase boundary"
    )
    return table
