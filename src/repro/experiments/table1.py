"""Table 1 — existing results on online max-flow minimisation.

A context table; :func:`run` renders the registry of
:data:`repro.theory.bounds.TABLE1` with the closed forms evaluated at a
reference machine count so the reader sees concrete numbers next to
the symbolic bounds.
"""

from __future__ import annotations

import inspect

from ..theory.bounds import TABLE1
from .common import TextTable

__all__ = ["run"]


def run(m: int = 15) -> TextTable:
    """Render Table 1, evaluating closed forms at ``m`` machines."""
    table = TextTable(
        title=f"Table 1: existing results on max-flow optimization (evaluated at m={m})",
        headers=["Env.", "Algorithm", "Type", "Ratio", f"Value @ m={m}", "Ref."],
    )
    for entry in TABLE1:
        value = ""
        if entry.formula is not None:
            sig = inspect.signature(entry.formula)
            try:
                value = f"{entry.formula(m) if sig.parameters else entry.formula():.3g}"
            except TypeError:  # pragma: no cover - registry formulas all evaluate
                value = ""
        table.add_row(
            entry.setting,
            entry.algorithm,
            "lower bound" if entry.kind == "lower" else "guarantee",
            entry.expression,
            value,
            entry.reference,
        )
    return table
