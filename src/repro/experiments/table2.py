"""Table 2 — this paper's bounds, verified empirically.

For every row of the paper's Table 2 the harness *runs* the
corresponding adversary against the named algorithm class and reports
the achieved ratio next to the theoretical bound:

* Theorem 3 (inclusive) — :class:`InclusiveAdversary` vs EFT-Min;
* Theorem 4 (``|M_i| = k``) — :class:`FixedKAdversary` vs EFT-Min;
* Theorem 5 (nested) — :class:`NestedAdversary` vs EFT-Min;
* Corollary 1 (disjoint) — EFT on random disjoint instances vs the
  exact unit optimum (ratio must stay below :math:`3 - 2/k`);
* Theorem 7 (interval, any online) — :class:`IntervalTwoAdversary`;
* Theorems 8/10 (interval, EFT) — :class:`EFTIntervalAdversary` and
  :class:`AnyTiebreakAdversary`.
"""

from __future__ import annotations

import numpy as np

from ..adversaries import (
    AnyTiebreakAdversary,
    EFTIntervalAdversary,
    FixedKAdversary,
    InclusiveAdversary,
    IntervalTwoAdversary,
    NestedAdversary,
)
from ..core.arrayeft import fast_eft_fmax
from ..core.eft import EFT
from ..core.task import Instance
from ..offline.unit_opt import optimal_unit_fmax
from ..psets.replication import DisjointIntervals
from ..theory.bounds import eft_disjoint_ratio
from .common import TextTable

__all__ = ["run", "disjoint_empirical_ratio"]


def disjoint_empirical_ratio(
    m: int, k: int, n: int, rng: np.random.Generator | int | None = None
) -> float:
    """Worst EFT/OPT ratio over a random unit instance with disjoint
    size-``k`` sets (must be ≤ ``3 - 2/k`` by Corollary 1)."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    strat = DisjointIntervals(m, k)
    releases = np.sort(gen.integers(0, max(2, n // m), size=n)).astype(float)
    homes = gen.integers(1, m + 1, size=n)
    machine_sets = [strat.replicas(int(h)) for h in homes]
    inst = Instance.build(m, releases=releases, procs=1.0, machine_sets=machine_sets)
    eft_val = fast_eft_fmax(inst, tiebreak="min")
    opt_val = optimal_unit_fmax(inst)
    return eft_val / opt_val


def run(
    m: int = 16, k: int = 3, p: float = 1000.0, rng_seed: int = 0
) -> TextTable:
    """Regenerate Table 2, empirically realising each bound.

    ``m`` should be a power of 2 for the log-structured adversaries to
    bind exactly; ``p`` controls how close the finite-:math:`p`
    adversaries get to their asymptotic bounds.
    """
    table = TextTable(
        title=f"Table 2: competitive ratios for P|online-r_i,M_i|Fmax (m={m}, k={k})",
        headers=["Structure", "Algorithm", "Bound", "Theory", "Achieved", "Ref."],
    )
    mk_min = lambda mm: EFT(mm, tiebreak="min")  # noqa: E731

    adv3 = InclusiveAdversary(m, p=p)
    r3 = adv3.run(mk_min)
    table.add_row("inclusive", "immediate dispatch", ">=", adv3.theoretical_bound(), r3.ratio, "Thm 3")

    adv4 = FixedKAdversary(m, max(2, k), p=p)
    r4 = adv4.run(mk_min)
    table.add_row(f"|Mi|={max(2, k)}", "immediate dispatch", ">=", adv4.theoretical_bound(), r4.ratio, "Thm 4")

    adv5 = NestedAdversary(m)
    r5 = adv5.run(mk_min)
    table.add_row("nested", "any online", ">=", adv5.theoretical_bound(), r5.ratio, "Thm 5")

    worst = max(
        disjoint_empirical_ratio(m, k, n=8 * m, rng=rng_seed + trial) for trial in range(5)
    )
    table.add_row(
        f"disjoint, |Mi|={k}", "EFT", "<=", eft_disjoint_ratio(k), worst, "Cor 1"
    )

    adv7 = IntervalTwoAdversary(p=p)
    r7 = adv7.run(mk_min)
    table.add_row("interval, |Mi|=2", "any online", ">=", 2.0, r7.ratio, "Thm 7")

    adv8 = EFTIntervalAdversary(m, k)
    r8 = adv8.run(mk_min)
    table.add_row(f"interval, |Mi|={k}", "EFT-Min", ">=", m - k + 1, r8.ratio, "Thm 8")

    adv9 = EFTIntervalAdversary(m, k, steps=4 * m**3)
    r9 = adv9.run(lambda mm: EFT(mm, tiebreak="rand", rng=rng_seed))
    table.add_row(f"interval, |Mi|={k}", "EFT-Rand", ">=", m - k + 1, r9.ratio, "Thm 9")

    adv10 = AnyTiebreakAdversary(min(m, 8), k if k < min(m, 8) else 2, steps=min(m, 8) ** 3)
    r10 = adv10.run(lambda mm: EFT(mm, tiebreak="max"))
    table.add_row(
        f"interval, |Mi|={adv10.k}",
        "EFT-any-tiebreak (Max)",
        ">=",
        adv10.theoretical_bound(),
        adv10.regular_max_flow(r10) / r10.opt_fmax,
        "Thm 10",
    )
    table.notes.append(
        "log-bound adversaries approach their theory value as p -> infinity; "
        f"run here with p = {p:g}"
    )
    table.notes.append("Cor 1 row reports the worst observed EFT/OPT ratio (upper-bound check)")
    return table
