"""Degraded-mode experiment: EFT under machine failures.

The paper assumes :math:`m` permanently available machines; a KV-store
does not get that luxury.  This experiment runs the same replicated
Poisson workload twice through the event-driven simulator — once
fault-free, once against a seeded chaos :class:`~repro.faults.FaultSchedule`
(exponential MTBF/MTTR per machine) — and reports how far the flow-time
and utilisation degrade, plus the fault accounting (requeues, parked
tasks, resumed tasks, wasted work) under the chosen in-flight policy.

The *park risk* row uses :func:`repro.psets.degraded_family`: at the
worst instant of the outage timeline, which fraction of the workload's
processing sets intersect to empty (tasks that would have nowhere to
run)?  Replication is exactly the defence the paper's Section 7
strategies buy — ``k = 1`` parks every task whose home fails, while
interval replication keeps the fraction near zero until ``k`` machines
of one interval are down together.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.eft import EFT
from ..faults import FaultSchedule, chaos_schedule
from ..faults.policies import RESTART, validate_policy
from ..obs.recorders import MetricsRegistry
from ..obs.sim import SimRecorder
from ..psets import degraded_family
from ..simulation.engine import SimulationResult, Simulator
from ..simulation.workload import WorkloadSpec, generate_workload
from .common import TextTable

__all__ = ["FaultedResult", "park_risk", "run"]


def park_risk(family: list[frozenset[int]], faults: FaultSchedule, m: int) -> float:
    """Worst-instant fraction of processing sets with no alive machine.

    Walks the outage timeline and, at every failure instant, intersects
    the whole family with the alive set (:func:`degraded_family`); the
    returned fraction is the maximum share of empty intersections seen.
    """
    if not family or not faults:
        return 0.0
    alive = set(range(1, m + 1))
    worst = 0.0
    for _, kind, machine in faults.events():
        if kind == "up":
            alive.add(machine)
            continue
        alive.discard(machine)
        degraded = degraded_family(family, alive)
        worst = max(worst, sum(1 for s in degraded if not s) / len(degraded))
    return worst


@dataclass
class FaultedResult:
    """Baseline vs chaos-faulted comparison on one workload."""

    table: TextTable
    baseline: SimulationResult
    faulted: SimulationResult
    schedule: FaultSchedule
    registry: MetricsRegistry

    def to_text(self) -> str:
        return self.table.to_text()

    def metrics(self) -> MetricsRegistry:
        """The faulted run's :class:`SimRecorder` registry (lifecycle
        counters, flow histogram, downtime and park accounting) —
        deterministic under the experiment's seeds."""
        return self.registry


def _simulate(
    inst, m: int, faults: FaultSchedule | None, policy: str
) -> tuple[SimulationResult, MetricsRegistry]:
    recorder = SimRecorder()
    sim = Simulator(
        EFT(m, tiebreak="min"), obs=recorder, faults=faults, fault_policy=policy
    )
    sim.add_instance(inst)
    return sim.run(), recorder.registry


def run(
    m: int = 8,
    k: int = 2,
    n: int = 400,
    load: float = 0.5,
    mtbf: float = 60.0,
    mttr: float = 5.0,
    policy: str = RESTART,
    strategy: str = "overlapping",
    case: str = "shuffled",
    s: float = 1.0,
    seed: int = 7,
) -> FaultedResult:
    """Run the baseline/faulted comparison and build the report table.

    ``mtbf`` / ``mttr`` are the per-machine mean time between failures
    and mean time to repair (exponential, in simulated time units);
    ``load`` is the average cluster load :math:`\\lambda \\bar p / m`.
    """
    validate_policy(policy)
    spec = WorkloadSpec(m=m, n=n, lam=load * m, k=k, strategy=strategy, case=case, s=s)
    inst = generate_workload(spec, rng=seed)

    base, _ = _simulate(inst, m, None, policy)
    # Outages cover the whole busy period of the baseline run, with
    # headroom for the fault-induced backlog to drain inside the
    # chaos horizon.
    horizon = base.makespan * 1.5 + 4.0 * mttr
    faults = chaos_schedule(m, horizon, mtbf=mtbf, mttr=mttr, seed=seed)
    faulted, registry = _simulate(inst, m, faults, policy)

    family = [t.machines for t in inst.tasks]
    risk = park_risk(family, faults, m)

    table = TextTable(
        title=(
            f"EFT-Min under chaos faults (m={m}, k={k}, n={n}, "
            f"load={100 * load:.0f}%, MTBF={mtbf:g}, MTTR={mttr:g}, "
            f"policy={policy})"
        ),
        headers=[
            "run", "Fmax", "mean flow", "completed", "util",
            "downtime", "requeued", "parked", "resumed", "wasted",
        ],
    )
    for name, r in (("baseline", base), ("faulted", faulted)):
        table.add_row(
            name,
            round(r.max_flow, 3),
            round(r.mean_flow, 3),
            r.n_completed,
            round(r.utilization, 3),
            round(r.total_downtime, 2),
            r.n_requeued,
            r.n_parked,
            r.n_resumed,
            round(r.wasted_work, 2),
        )
    table.notes.append(
        f"{faults.n_outages} outages over horizon {horizon:.1f}; "
        f"worst-instant park risk {100 * risk:.1f}% of processing sets"
    )
    table.notes.append(
        "utilization is downtime-adjusted: busy / (m*horizon - downtime)"
    )
    return FaultedResult(
        table=table, baseline=base, faulted=faulted, schedule=faults, registry=registry
    )
