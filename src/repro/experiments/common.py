"""Shared infrastructure of the experiment harness.

Every paper table/figure module exposes a ``run(...)`` returning a
:class:`TextTable` (or a small dataclass of them): the same rows/series
the paper reports, printable from the benchmarks and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["TextTable", "render_heatmap"]


@dataclass
class TextTable:
    """A printable result table."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}".rstrip("0").rstrip(".") if cell == cell else "nan"
        return str(cell)

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [[self._fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, c in enumerate(row):
                widths[i] = max(widths[i], len(c))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


_SHADES = " ░▒▓█"


def render_heatmap(
    grid,
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    title: str,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render a 2-D grid as a shaded ASCII heatmap (Figure 10 style).

    Values map linearly onto five shade characters between ``vmin``
    and ``vmax`` (defaulting to the grid's own range); row/column
    labels annotate the axes.
    """
    import numpy as np

    a = np.asarray(grid, dtype=float)
    if a.ndim != 2:
        raise ValueError("heatmap needs a 2-D grid")
    if a.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"grid shape {a.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    lo = float(a.min()) if vmin is None else vmin
    hi = float(a.max()) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0
    label_w = max(len(str(r)) for r in row_labels)
    lines = [title, "=" * len(title)]
    for r, row_label in enumerate(row_labels):
        cells = []
        for c in range(len(col_labels)):
            level = (a[r, c] - lo) / span
            idx = min(len(_SHADES) - 1, max(0, int(round(level * (len(_SHADES) - 1)))))
            cells.append(_SHADES[idx] * 2)
        lines.append(f"{str(row_label):>{label_w}} |" + "".join(cells) + "|")
    footer = " " * label_w + "  " + "".join(f"{str(c):<2.2s}" for c in col_labels)
    lines.append(footer)
    lines.append(f"scale: '{_SHADES[0]}'={lo:g} .. '{_SHADES[-1]}'={hi:g}")
    return "\n".join(lines)
