"""In-flight task policies for machine failures.

What happens to the task a machine is processing when the machine
fails mid-run:

* ``RESTART`` ("restart-elsewhere") — the progress is lost; the task
  is immediately re-dispatched over its alive processing set (or
  parked if that set is empty).  The work performed before the failure
  still occupied the machine, so it is credited as busy time (and
  surfaced as ``wasted_work``), keeping per-machine utilisation
  honest.
* ``RESUME`` ("resume-on-recovery") — the task stays bound to its
  machine and continues with its *residual* processing time the
  instant the machine recovers.  Models checkpointed work or
  replicas that only pause (a rebooting node), at the price of
  head-of-line blocking for the paused task.

Queued-but-unstarted tasks have no progress to protect, so under
either policy they are re-dispatched (or parked) at the failure
instant.
"""

from __future__ import annotations

__all__ = ["POLICIES", "RESTART", "RESUME", "validate_policy"]

RESTART = "restart"
RESUME = "resume"

POLICIES: tuple[str, ...] = (RESTART, RESUME)


def validate_policy(policy: str) -> str:
    """Return ``policy`` if known, raise ``ValueError`` otherwise."""
    if policy not in POLICIES:
        raise ValueError(f"unknown in-flight policy {policy!r}; known: {POLICIES}")
    return policy
