"""Deterministic machine fault schedules (DOWN/UP windows).

The paper's motivating systems — replicated key-value stores — live
with replica failure as a routine event, and a machine failure is
exactly a *shrinkage of every processing set*: while machine ``j`` is
down, each task's effective set is :math:`\\mathcal{M}_i \\cap
\\text{alive}`.  A :class:`FaultSchedule` pins the failure pattern of a
run — which machines are DOWN over which half-open windows
``[start, end)`` — so degraded-mode experiments are reproducible
bit-for-bit: the same schedule fed to the same workload produces the
same trace on every run and every worker.

Schedules are *normalised* on construction: per machine, windows are
sorted and overlapping/touching windows are merged, so the DOWN/UP
event sequence of any machine strictly alternates.  That is what lets
the simulator treat :meth:`FaultSchedule.events` as a well-formed
stream (never two DOWNs in a row).

Two ways to build one:

* explicitly, from :class:`Outage` windows (regression scenarios,
  targeted experiments);
* with :func:`chaos_schedule`, which draws exponential up-times (mean
  ``mtbf``) and down-times (mean ``mttr``) per machine from a seeded
  generator — the classic memoryless failure/repair model.  Each
  machine gets an independent child seed, so the schedule does not
  depend on the order machines are sampled in.

Serialisation: :meth:`FaultSchedule.to_json` / :meth:`from_json` round
trip the schedule through a small versioned document (see docs/API.md)
so fault scenarios can be checked in next to campaign specs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "FAULTS_FORMAT",
    "FAULTS_VERSION",
    "FaultSchedule",
    "Outage",
    "chaos_schedule",
]

FAULTS_FORMAT = "repro-faults"
FAULTS_VERSION = 1


@dataclass(frozen=True, slots=True)
class Outage:
    """One machine-down window ``[start, end)`` (1-based machine index).

    The window is half-open: the machine fails *at* ``start`` and is
    alive again *at* ``end`` — a task released exactly at ``end`` may
    be dispatched to the recovered machine.
    """

    machine: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.machine < 1:
            raise ValueError(f"outage machine must be >= 1, got {self.machine}")
        if self.start < 0:
            raise ValueError(f"outage start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"outage window must have positive length, got [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


def _merge_windows(windows: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Sort and merge overlapping/touching ``(start, end)`` windows."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass(frozen=True)
class FaultSchedule:
    """A normalised set of machine outage windows.

    ``outages`` are stored merged per machine and sorted by
    ``(start, machine, end)``, so equal fault patterns compare equal
    whatever order they were declared in.  An empty schedule is valid
    and means "no machine ever fails" — feeding it to the simulator
    must reproduce the fault-free run byte-for-byte (the zero-fault
    identity guarded by the test suite).
    """

    outages: tuple[Outage, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        per_machine: dict[int, list[tuple[float, float]]] = {}
        for o in self.outages:
            per_machine.setdefault(o.machine, []).append((o.start, o.end))
        normalised = [
            Outage(machine=j, start=s, end=e)
            for j, windows in per_machine.items()
            for s, e in _merge_windows(windows)
        ]
        normalised.sort(key=lambda o: (o.start, o.machine, o.end))
        object.__setattr__(self, "outages", tuple(normalised))

    # -- queries ------------------------------------------------------------
    @property
    def n_outages(self) -> int:
        return len(self.outages)

    def __bool__(self) -> bool:
        return bool(self.outages)

    def machines(self) -> frozenset[int]:
        """Machines that fail at least once."""
        return frozenset(o.machine for o in self.outages)

    def max_machine(self) -> int:
        """Largest machine index referenced (0 for an empty schedule)."""
        return max((o.machine for o in self.outages), default=0)

    def down_at(self, machine: int, t: float) -> bool:
        """Whether ``machine`` is DOWN at instant ``t``."""
        return any(
            o.machine == machine and o.start <= t < o.end for o in self.outages
        )

    def next_recovery(self, machine: int, t: float) -> float | None:
        """End of the outage window of ``machine`` covering ``t``, or
        ``None`` if the machine is alive at ``t``."""
        for o in self.outages:
            if o.machine == machine and o.start <= t < o.end:
                return o.end
        return None

    def downtime(self, machine: int, horizon: float) -> float:
        """Total DOWN time of ``machine`` within ``[0, horizon]``."""
        return sum(
            max(0.0, min(o.end, horizon) - o.start)
            for o in self.outages
            if o.machine == machine and o.start < horizon
        )

    def total_downtime(self, horizon: float) -> float:
        """Sum of :meth:`downtime` over every failing machine."""
        return sum(self.downtime(j, horizon) for j in self.machines())

    def events(self) -> Iterator[tuple[float, str, int]]:
        """Yield ``(time, "down"|"up", machine)`` transitions in time
        order; per machine the sequence strictly alternates because
        windows are merged."""
        transitions = []
        for o in self.outages:
            transitions.append((o.start, "down", o.machine))
            transitions.append((o.end, "up", o.machine))
        # At equal times recoveries sort before failures ("up" > "down"
        # lexicographically is False — pin explicitly): a machine
        # recovering at t is usable before another fails at t.
        transitions.sort(key=lambda e: (e[0], 0 if e[1] == "up" else 1, e[2]))
        return iter(transitions)

    # -- construction helpers -----------------------------------------------
    @staticmethod
    def build(outages: Iterable[tuple[int, float, float]]) -> "FaultSchedule":
        """Build from ``(machine, start, end)`` triples."""
        return FaultSchedule(tuple(Outage(machine=j, start=s, end=e) for j, s, e in outages))

    # -- serialisation ------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to a versioned JSON document (round-trips via
        :meth:`from_json`; equal schedules encode to equal bytes)."""
        payload = {
            "format": FAULTS_FORMAT,
            "version": FAULTS_VERSION,
            "outages": [
                {"machine": o.machine, "start": o.start, "end": o.end}
                for o in self.outages
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(", ", ": ")) + "\n"

    @staticmethod
    def from_json(text: str) -> "FaultSchedule":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        if not isinstance(data, dict) or data.get("format") != FAULTS_FORMAT:
            raise ValueError(f"not a {FAULTS_FORMAT} document")
        if data.get("version") != FAULTS_VERSION:
            raise ValueError(f"unsupported faults version {data.get('version')!r}")
        return FaultSchedule.build(
            (int(o["machine"]), float(o["start"]), float(o["end"]))
            for o in data.get("outages", ())
        )


def chaos_schedule(
    m: int,
    horizon: float,
    mtbf: float,
    mttr: float,
    seed: int | np.random.Generator = 0,
    machines: Iterable[int] | None = None,
) -> FaultSchedule:
    """Draw a random failure/repair pattern over ``[0, horizon]``.

    Each machine alternates exponential up-times (mean ``mtbf``) and
    exponential down-times (mean ``mttr``), starting alive at 0 — the
    memoryless model behind the availability ratio
    ``mtbf / (mtbf + mttr)``.  Windows are clipped at ``horizon``.

    Determinism: every machine samples from its own child generator
    (spawned from a :class:`numpy.random.SeedSequence` on ``seed``), so
    the result is a pure function of ``(m, horizon, mtbf, mttr, seed,
    machines)``.
    """
    if m < 1:
        raise ValueError("need at least one machine")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if mtbf <= 0 or mttr <= 0:
        raise ValueError("mtbf and mttr must be positive")
    targets = sorted(set(machines)) if machines is not None else list(range(1, m + 1))
    if targets and (targets[0] < 1 or targets[-1] > m):
        raise ValueError(f"machines must be within 1..{m}, got {targets}")
    if isinstance(seed, np.random.Generator):
        # Draw a base entropy from the provided generator so repeated
        # calls with the same generator differ (documented behaviour).
        seed = int(seed.integers(0, 2**63 - 1))
    children = np.random.SeedSequence(seed).spawn(len(targets))
    outages: list[Outage] = []
    for machine, child in zip(targets, children):
        rng = np.random.default_rng(child)
        t = 0.0
        while True:
            t += float(rng.exponential(mtbf))  # up-time before next failure
            if t >= horizon:
                break
            down = float(rng.exponential(mttr))
            outages.append(Outage(machine=machine, start=t, end=min(t + down, horizon)))
            t += down
            if t >= horizon:
                break
    return FaultSchedule(tuple(outages))
