"""Fault injection: machine DOWN/UP schedules for degraded-mode runs.

The replicated key-value stores motivating the paper lose and recover
replicas as a matter of course; this package makes that a first-class,
reproducible scenario:

* :mod:`~repro.faults.schedule` — :class:`Outage` windows collected in
  a normalised :class:`FaultSchedule`, plus :func:`chaos_schedule`
  (seeded exponential MTBF/MTTR failure/repair patterns);
* :mod:`~repro.faults.policies` — what happens to the in-flight task
  of a failing machine (``restart`` elsewhere / ``resume`` on
  recovery);
* :mod:`~repro.faults.units` — misbehaving campaign units (crash,
  hang, flaky) exercising the runner's crash isolation, per-unit
  timeouts and retry;
* :mod:`~repro.faults.selftest` — the CI runner-resilience smoke
  (``python -m repro.faults.selftest``).

The consumer is :class:`repro.simulation.engine.Simulator` via its
``faults=`` / ``fault_policy=`` parameters: machines go DOWN and UP as
scheduled, dispatch happens over :math:`\\mathcal{M}_i \\cap
\\text{alive}`, and tasks whose alive set is empty are parked until a
machine of their set recovers.
"""

from .policies import POLICIES, RESTART, RESUME, validate_policy
from .schedule import (
    FAULTS_FORMAT,
    FAULTS_VERSION,
    FaultSchedule,
    Outage,
    chaos_schedule,
)

__all__ = [
    "FAULTS_FORMAT",
    "FAULTS_VERSION",
    "FaultSchedule",
    "Outage",
    "POLICIES",
    "RESTART",
    "RESUME",
    "chaos_schedule",
    "validate_policy",
]
