"""Misbehaving campaign unit kinds for runner-resilience testing.

The campaign runner promises that one bad unit cannot take down a
campaign: a raising unit yields a ``failed`` outcome, a *killed*
worker yields a ``failed`` outcome (crash isolation), a hung unit is
reaped by the per-unit timeout, and a flaky unit can be retried with
exponential backoff.  These unit kinds exercise exactly those paths —
they are addressed as ``"repro.faults.units:<name>"`` so they resolve
in any worker process regardless of start method.

They are part of the shipped package (not the test tree) so the CI
resilience smoke (``python -m repro.faults.selftest``) can run against
an installed copy.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Mapping

__all__ = ["crash", "flaky", "ok", "sleep"]


def ok(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """A well-behaved unit: returns its input and seed."""
    return {"value": params.get("x", 0), "seed": seed}


def crash(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Kill the worker process outright (no exception, no cleanup) —
    the hardest failure mode a runner can face.  ``params["code"]``
    sets the exit code (default 137, the SIGKILL convention)."""
    os._exit(int(params.get("code", 137)))


def sleep(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Sleep ``params["seconds"]`` then return — a hung unit when the
    sleep exceeds the runner's per-unit timeout."""
    time.sleep(float(params.get("seconds", 60.0)))
    return {"slept": float(params.get("seconds", 60.0))}


def flaky(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Fail the first ``params["fail_times"]`` attempts, then succeed.

    Attempts are counted in ``params["marker"]``, a directory the
    caller provides (one file per attempt — atomic under concurrent
    retries, unlike a read-modify-write counter file).
    """
    marker = Path(params["marker"])
    marker.mkdir(parents=True, exist_ok=True)
    attempt = len(list(marker.iterdir())) + 1
    (marker / f"attempt-{attempt}-{os.getpid()}").touch()
    if attempt <= int(params.get("fail_times", 1)):
        raise RuntimeError(f"flaky failure on attempt {attempt}")
    return {"attempts": attempt}
