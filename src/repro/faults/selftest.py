"""Runner-resilience selftest: ``python -m repro.faults.selftest``.

Exercises the degraded-operation contract of
:func:`repro.campaigns.run_campaign` end to end, with real worker
processes and a real on-disk cache:

1. a unit that hard-crashes its worker (``os._exit``) yields exactly
   one ``failed`` outcome while every neighbour completes — the pool
   survives;
2. the resulting manifest is valid, loadable and counts the failure;
3. a flaky unit succeeds after deterministic backoff-retries;
4. an interrupted campaign raises :class:`CampaignInterrupted` with a
   valid partial result whose manifest is the resume point, and
   re-running the same spec against the same cache finishes the job
   with the completed units served from cache.

Exits 0 printing ``selftest: OK`` when every invariant holds — CI's
``make runner-resilience`` target runs exactly this.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from ..campaigns import (
    CampaignInterrupted,
    CampaignSpec,
    ResultCache,
    RetryPolicy,
    Unit,
    build_manifest,
    load_manifest,
    run_campaign,
    write_manifest,
)

__all__ = ["main"]


def _check(cond: bool, what: str) -> None:
    if not cond:
        print(f"selftest: FAIL — {what}", file=sys.stderr)
        raise SystemExit(1)


def _ok_units(n: int) -> list[Unit]:
    return [
        Unit(kind="repro.faults.units:ok", params={"x": i}, seed=i, label=f"ok-{i}")
        for i in range(n)
    ]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        tmp_path = Path(tmp)
        cache = ResultCache(tmp_path / "cache")

        # 1 + 2: crash isolation and the manifest it leaves behind.
        spec = CampaignSpec(
            name="selftest-crash",
            units=tuple(
                _ok_units(4)
                + [Unit(kind="repro.faults.units:crash", params={"code": 137}, seed=9, label="boom")]
            ),
        )
        result = run_campaign(
            spec, n_jobs=2, cache=cache, raise_on_error=False, timeout=60.0
        )
        _check(not result.interrupted, "crash campaign should complete")
        _check(result.n_executed == 4, f"expected 4 executed, got {result.n_executed}")
        _check(result.n_failed == 1, f"expected 1 failed, got {result.n_failed}")
        failure = result.failures()[0]
        _check(failure.unit.label == "boom", "wrong unit failed")
        _check("crashed" in (failure.error or ""), f"unexpected error: {failure.error}")
        manifest_path = write_manifest(
            build_manifest(result), tmp_path / "crash.manifest.json"
        )
        back = load_manifest(manifest_path)
        _check(back.n_failed == 1 and back.n_units == 5, "manifest miscounts the crash run")
        print(f"crash isolation: {result.summary()}")

        # 3: flaky unit heals within its retry budget.
        marker = tmp_path / "flaky-attempts"
        marker.mkdir()
        flaky_spec = CampaignSpec(
            name="selftest-flaky",
            units=(
                Unit(
                    kind="repro.faults.units:flaky",
                    params={"marker": str(marker), "fail_times": 1},
                    seed=1,
                    label="flaky",
                ),
            ),
        )
        flaky = run_campaign(
            flaky_spec, retry=RetryPolicy(retries=2, backoff=0.05), raise_on_error=False
        )
        _check(flaky.outcomes[0].ok, f"flaky unit failed: {flaky.outcomes[0].error}")
        _check(
            flaky.outcomes[0].attempts == 2,
            f"expected 2 attempts, got {flaky.outcomes[0].attempts}",
        )
        print(f"retry: flaky unit ok after {flaky.outcomes[0].attempts} attempts")

        # 4: interruption leaves a resumable state.
        resume_spec = CampaignSpec(name="selftest-resume", units=tuple(_ok_units(4)))
        resume_cache = ResultCache(tmp_path / "resume-cache")

        def _bomb(done: int, total: int, outcome) -> None:
            if done == 2:
                raise KeyboardInterrupt

        try:
            run_campaign(resume_spec, cache=resume_cache, progress=_bomb)
        except CampaignInterrupted as exc:
            partial = exc.result
        else:
            _check(False, "interrupt did not raise CampaignInterrupted")
            raise AssertionError  # unreachable; keeps type checkers calm
        _check(partial.interrupted, "partial result not marked interrupted")
        _check(
            partial.n_executed == 2 and partial.n_interrupted == 2,
            f"unexpected partial counts: {partial.summary()}",
        )
        partial_manifest = write_manifest(
            build_manifest(partial), tmp_path / "resume.manifest.json"
        )
        _check(load_manifest(partial_manifest).interrupted, "partial manifest not flagged")
        resumed = run_campaign(resume_spec, cache=resume_cache)
        _check(
            resumed.n_cached == 2 and resumed.n_executed == 2,
            f"resume did not reuse the cache: {resumed.summary()}",
        )
        fresh = run_campaign(resume_spec)
        _check(
            [o.result for o in resumed.outcomes] == [o.result for o in fresh.outcomes],
            "resumed results differ from an uninterrupted run",
        )
        print(f"resume: {resumed.summary()}")

    print("selftest: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - CI entry point
    sys.exit(main())
