"""Theoretical maximum-load analysis (Equation 15, Figure 10)."""

from .closedform import max_load_disjoint_closed_form, max_load_hall
from .flow import Dinic
from .lp import MaxLoadSolution, max_load_flow, max_load_lp, max_load_percent
from .sweep import SweepResult, overlap_gain_ratio, sweep_max_load

__all__ = [
    "Dinic",
    "MaxLoadSolution",
    "SweepResult",
    "max_load_disjoint_closed_form",
    "max_load_flow",
    "max_load_hall",
    "max_load_lp",
    "max_load_percent",
    "overlap_gain_ratio",
    "sweep_max_load",
]
