"""Theoretical maximum-load analysis (Equation 15, Figure 10)."""

from .closedform import max_load_disjoint_closed_form, max_load_hall
from .flow import Dinic
from .lp import (
    DegeneratePopularityError,
    MaxLoadSolution,
    clear_solve_cache,
    max_load_flow,
    max_load_lp,
    max_load_lp_cached,
    max_load_percent,
    solve_cache_info,
)
from .sweep import SweepResult, overlap_gain_ratio, sweep_max_load

__all__ = [
    "DegeneratePopularityError",
    "Dinic",
    "MaxLoadSolution",
    "SweepResult",
    "clear_solve_cache",
    "max_load_disjoint_closed_form",
    "max_load_flow",
    "max_load_hall",
    "max_load_lp",
    "max_load_lp_cached",
    "max_load_percent",
    "overlap_gain_ratio",
    "solve_cache_info",
    "sweep_max_load",
]
