"""Closed-form and combinatorial solutions of the max-load problem.

Two independent characterisations of the LP (15) optimum:

* **Disjoint strategy** — work cannot cross group boundaries, so the
  binding constraint is the heaviest group:

  .. math::

      \\lambda^* = \\min_{g} \\frac{|g|}{\\sum_{j \\in g} P(E_j)}.

* **Any strategy, small m** — by the Gale–Hoffman/Hall condition for
  transportation feasibility, :math:`\\lambda` is feasible iff for
  every machine subset :math:`S`,
  :math:`\\lambda \\sum_{j \\in S} P(E_j) \\le |N(S)|` with
  :math:`N(S) = \\bigcup_{j \\in S} I_k(j)`; hence

  .. math::

      \\lambda^* = \\min_{\\emptyset \\ne S}
          \\frac{|N(S)|}{\\sum_{j \\in S} P(E_j)}.

  Enumerated exactly for :math:`m \\le 20` (the paper's clusters have
  :math:`m = 15`).
"""

from __future__ import annotations

import numpy as np

from ..psets.replication import DisjointIntervals, ReplicationStrategy, get_strategy
from ..simulation.popularity import MachinePopularity

__all__ = ["max_load_disjoint_closed_form", "max_load_hall"]


def _weights(popularity) -> np.ndarray:
    if isinstance(popularity, MachinePopularity):
        return popularity.weights
    return np.asarray(popularity, dtype=float)


def max_load_disjoint_closed_form(popularity, k: int) -> float:
    """:math:`\\lambda^*` for the disjoint strategy, in closed form."""
    w = _weights(popularity)
    m = w.size
    strat = DisjointIntervals(m, k)
    best = np.inf
    for group in strat.groups():
        mass = float(sum(w[j - 1] for j in group))
        if mass > 0:
            best = min(best, len(group) / mass)
    return float(best)


def max_load_hall(
    popularity, strategy: str | ReplicationStrategy, k: int | None = None
) -> float:
    """:math:`\\lambda^*` via exhaustive Hall-condition enumeration.

    Exponential in :math:`m`; guarded to :math:`m \\le 20`.
    """
    w = _weights(popularity)
    m = w.size
    if m > 20:
        raise ValueError("Hall enumeration limited to m <= 20")
    if isinstance(strategy, str):
        if k is None:
            raise ValueError("k required when passing a strategy name")
        strat = get_strategy(strategy, m, k)
    else:
        strat = strategy
    # Bitmask of each home's replica set.
    replica_mask = [0] * (m + 1)
    for j in range(1, m + 1):
        mask = 0
        for i in strat.replicas(j):
            mask |= 1 << (i - 1)
        replica_mask[j] = mask
    best = np.inf
    for subset in range(1, 1 << m):
        mass = 0.0
        nbhd = 0
        for j in range(1, m + 1):
            if subset & (1 << (j - 1)):
                mass += w[j - 1]
                nbhd |= replica_mask[j]
        if mass > 0:
            best = min(best, bin(nbhd).count("1") / mass)
    return float(best)
