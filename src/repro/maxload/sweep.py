"""Parameter sweeps for the Figure 10 heatmaps.

Figure 10a sweeps the popularity bias :math:`s \\in [0, 5]` (steps of
0.25) and the interval size :math:`k \\in [1, m]` for both replication
strategies in the Shuffled case, reporting the **median** max-load over
100 random permutations of the weights; Figure 10b is the ratio of the
two strategies' medians.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulation.popularity import shuffled_case, worst_case
from .lp import max_load_lp

__all__ = ["SweepResult", "sweep_max_load", "overlap_gain_ratio"]


@dataclass(frozen=True)
class SweepResult:
    """Max-load grids for both strategies.

    ``loads[strategy]`` has shape ``(len(s_values), len(k_values))``
    and holds max-load percentages (:math:`100 \\lambda^*/m`).
    """

    m: int
    s_values: np.ndarray
    k_values: np.ndarray
    n_permutations: int
    loads: dict = field(default_factory=dict)

    def ratio(self) -> np.ndarray:
        """Figure 10b's grid: overlapping / disjoint median max-load."""
        return self.loads["overlapping"] / self.loads["disjoint"]


def sweep_max_load(
    m: int = 15,
    s_values=None,
    k_values=None,
    n_permutations: int = 100,
    rng: np.random.Generator | int | None = None,
    case: str = "shuffled",
) -> SweepResult:
    """Run the Figure 10a sweep.

    For the Shuffled case each grid point is the median over
    ``n_permutations`` permutations; permutations are shared across
    grid points (one batch per ``s``), matching the paper's setup of
    permuting the weights :math:`P(E_j)`.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    s_values = np.arange(0.0, 5.01, 0.25) if s_values is None else np.asarray(s_values, dtype=float)
    k_values = np.arange(1, m + 1) if k_values is None else np.asarray(k_values, dtype=int)
    loads = {
        "overlapping": np.zeros((s_values.size, k_values.size)),
        "disjoint": np.zeros((s_values.size, k_values.size)),
    }
    for si, s in enumerate(s_values):
        if case == "shuffled" and s > 0:
            pops = [shuffled_case(m, float(s), gen) for _ in range(n_permutations)]
        else:
            # s = 0 is permutation-invariant; worst case needs no shuffle.
            pops = [worst_case(m, float(s))]
        for ki, k in enumerate(k_values):
            for name in ("overlapping", "disjoint"):
                vals = [max_load_lp(pop, name, int(k)).load_percent for pop in pops]
                loads[name][si, ki] = float(np.median(vals))
    return SweepResult(
        m=m,
        s_values=s_values,
        k_values=k_values,
        n_permutations=n_permutations,
        loads=loads,
    )


def overlap_gain_ratio(result: SweepResult) -> float:
    """Peak of Figure 10b: the maximum gain of overlapping over
    disjoint across the grid (the paper reports up to ≈ 1.5)."""
    return float(result.ratio().max())
