"""Parameter sweeps for the Figure 10 heatmaps.

Figure 10a sweeps the popularity bias :math:`s \\in [0, 5]` (steps of
0.25) and the interval size :math:`k \\in [1, m]` for both replication
strategies in the Shuffled case, reporting the **median** max-load over
100 random permutations of the weights; Figure 10b is the ratio of the
two strategies' medians.

The sweep is row-parallel: each ``s`` row draws its permutations from
an independent seeded stream (``default_rng([seed, row])``), so rows
are order-independent and can run as campaign units on any number of
workers with output identical to the serial sweep (see
:func:`row_unit` and ``repro.experiments.fig10``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..simulation.popularity import shuffled_case, worst_case
from .lp import max_load_lp

__all__ = ["SweepResult", "row_rng", "row_unit", "sweep_max_load", "sweep_row", "overlap_gain_ratio"]


@dataclass(frozen=True)
class SweepResult:
    """Max-load grids for both strategies.

    ``loads[strategy]`` has shape ``(len(s_values), len(k_values))``
    and holds max-load percentages (:math:`100 \\lambda^*/m`).
    """

    m: int
    s_values: np.ndarray
    k_values: np.ndarray
    n_permutations: int
    loads: dict = field(default_factory=dict)

    def ratio(self) -> np.ndarray:
        """Figure 10b's grid: overlapping / disjoint median max-load."""
        return self.loads["overlapping"] / self.loads["disjoint"]


def sweep_row(
    m: int,
    s: float,
    k_values: np.ndarray,
    n_permutations: int,
    rng: np.random.Generator,
    case: str = "shuffled",
) -> dict[str, list[float]]:
    """One ``s`` row of the Figure 10a sweep: for every ``k``, the
    median max-load (%) of both strategies over ``n_permutations``
    permutations drawn from ``rng`` (shared across the row's grid
    points, matching the paper's setup of permuting the weights
    :math:`P(E_j)`)."""
    if case == "shuffled" and s > 0:
        pops = [shuffled_case(m, float(s), rng) for _ in range(n_permutations)]
    else:
        # s = 0 is permutation-invariant; worst case needs no shuffle.
        pops = [worst_case(m, float(s))]
    row: dict[str, list[float]] = {"overlapping": [], "disjoint": []}
    for k in k_values:
        for name in ("overlapping", "disjoint"):
            vals = [max_load_lp(pop, name, int(k)).load_percent for pop in pops]
            row[name].append(float(np.median(vals)))
    return row


def row_rng(seed: int | None, row_index: int) -> np.random.Generator:
    """The independent per-row stream of the sweep: row ``row_index``
    under base ``seed``.  Order-independent, so rows may execute on
    any worker in any order."""
    return np.random.default_rng([0 if seed is None else seed, row_index])


def row_unit(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Campaign unit executor for one sweep row (see
    ``repro.campaigns.spec``): pure function of ``(params, seed)``."""
    row = sweep_row(
        m=int(params["m"]),
        s=float(params["s"]),
        k_values=np.asarray(params["k_values"], dtype=int),
        n_permutations=int(params["n_permutations"]),
        rng=row_rng(seed, int(params["s_index"])),
        case=str(params.get("case", "shuffled")),
    )
    return row


def sweep_max_load(
    m: int = 15,
    s_values=None,
    k_values=None,
    n_permutations: int = 100,
    rng: np.random.Generator | int | None = None,
    case: str = "shuffled",
) -> SweepResult:
    """Run the Figure 10a sweep.

    With an integer (or ``None``) ``rng`` seed each row uses the
    independent stream of :func:`row_rng`, which makes the sweep
    row-parallelisable with identical output; passing a ``Generator``
    keeps one sequential stream across rows (legacy behaviour).
    """
    s_values = np.arange(0.0, 5.01, 0.25) if s_values is None else np.asarray(s_values, dtype=float)
    k_values = np.arange(1, m + 1) if k_values is None else np.asarray(k_values, dtype=int)
    loads = {
        "overlapping": np.zeros((s_values.size, k_values.size)),
        "disjoint": np.zeros((s_values.size, k_values.size)),
    }
    sequential = rng if isinstance(rng, np.random.Generator) else None
    for si, s in enumerate(s_values):
        gen = sequential if sequential is not None else row_rng(rng, si)
        row = sweep_row(m, float(s), k_values, n_permutations, gen, case=case)
        for name in ("overlapping", "disjoint"):
            loads[name][si, :] = row[name]
    return SweepResult(
        m=m,
        s_values=s_values,
        k_values=k_values,
        n_permutations=n_permutations,
        loads=loads,
    )


def overlap_gain_ratio(result: SweepResult) -> float:
    """Peak of Figure 10b: the maximum gain of overlapping over
    disjoint across the grid (the paper reports up to ≈ 1.5)."""
    return float(result.ratio().max())
