"""Dinic maximum flow (own implementation).

Substrate for the transportation-feasibility cross-checks of the
max-load LP (Section 7.2): the LP's optimum equals the largest
:math:`\\lambda` for which the popularity mass routes through the
replication bipartite graph into unit-capacity machines.  Tested
against :mod:`networkx` and against the Hall-condition enumeration.
"""

from __future__ import annotations

from collections import deque

__all__ = ["Dinic"]


class Dinic:
    """Max-flow solver on a directed graph with float capacities."""

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("need at least 2 nodes")
        self.n = n
        self.graph: list[list[list]] = [[] for _ in range(n)]  # [to, cap, rev_index]

    def add_edge(self, u: int, v: int, cap: float) -> None:
        """Add a directed edge ``u -> v`` with capacity ``cap``."""
        if cap < 0:
            raise ValueError("capacity must be >= 0")
        self.graph[u].append([v, cap, len(self.graph[v])])
        self.graph[v].append([u, 0.0, len(self.graph[u]) - 1])

    def _bfs(self, s: int, t: int) -> list[int]:
        level = [-1] * self.n
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for edge in self.graph[u]:
                v, cap, _ = edge
                if cap > 1e-12 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level

    def _dfs(self, u: int, t: int, f: float, level: list[int], it: list[int]) -> float:
        if u == t:
            return f
        while it[u] < len(self.graph[u]):
            edge = self.graph[u][it[u]]
            v, cap, rev = edge
            if cap > 1e-12 and level[v] == level[u] + 1:
                d = self._dfs(v, t, min(f, cap), level, it)
                if d > 1e-12:
                    edge[1] -= d
                    self.graph[v][rev][1] += d
                    return d
            it[u] += 1
        return 0.0

    def max_flow(self, s: int, t: int) -> float:
        """Maximum ``s -> t`` flow value."""
        if s == t:
            raise ValueError("source equals sink")
        flow = 0.0
        while True:
            level = self._bfs(s, t)
            if level[t] < 0:
                return flow
            it = [0] * self.n
            while True:
                f = self._dfs(s, t, float("inf"), level, it)
                if f <= 1e-12:
                    break
                flow += f
