"""The maximum-load linear program (Equation 15 of the paper).

Given a machine popularity :math:`P(E_j)` and a replication strategy
with replica sets :math:`I_k(j)`, the LP finds the largest arrival rate
:math:`\\lambda` such that the popularity-weighted work can be routed
to machines without exceeding unit capacity:

.. math::

    \\max \\lambda \\quad \\text{s.t.} \\quad
    \\sum_i a_{ij} = \\lambda P(E_j) \\;\\; \\forall j, \\qquad
    \\sum_j a_{ij} \\le 1 \\;\\; \\forall i, \\qquad
    a_{ij} = 0 \\text{ if } M_i \\notin I_k(j), \\qquad
    a, \\lambda \\ge 0.

:math:`a_{ij}` is the rate of work homed on :math:`M_j` that machine
:math:`M_i` eventually serves.  The *max-load percentage* plotted in
Figure 10 is :math:`100 \\lambda^* / m`.

Solved with ``scipy.optimize.linprog`` (HiGHS).  Cross-checks:
:func:`max_load_flow` (binary search + own Dinic max-flow) and the
closed forms of :mod:`repro.maxload.closedform`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..psets.replication import ReplicationStrategy, get_strategy
from ..simulation.popularity import MachinePopularity
from .flow import Dinic

__all__ = ["MaxLoadSolution", "max_load_lp", "max_load_flow", "max_load_percent"]


@dataclass(frozen=True)
class MaxLoadSolution:
    """Result of the max-load LP."""

    lam: float  #: optimal arrival rate lambda*
    m: int
    transfer: np.ndarray  #: optimal a_{ij} matrix, shape (m, m)

    @property
    def load_percent(self) -> float:
        """Maximum average cluster load, in percent
        (:math:`100\\,\\lambda^*/m`)."""
        return 100.0 * self.lam / self.m

    def machine_rates(self) -> np.ndarray:
        """Per-machine served work rate :math:`\\sum_j a_{ij}`."""
        return self.transfer.sum(axis=1)


def _weights(popularity) -> np.ndarray:
    if isinstance(popularity, MachinePopularity):
        return popularity.weights
    w = np.asarray(popularity, dtype=float)
    if w.ndim != 1 or np.any(w < 0) or not np.isclose(w.sum(), 1.0):
        raise ValueError("popularity must be a probability vector")
    return w


def max_load_lp(
    popularity,
    strategy: str | ReplicationStrategy,
    k: int | None = None,
) -> MaxLoadSolution:
    """Solve Equation (15) exactly.

    ``popularity`` is a :class:`MachinePopularity` or a probability
    vector; ``strategy`` a name (with ``k``) or a bound strategy.
    """
    w = _weights(popularity)
    m = w.size
    if isinstance(strategy, str):
        if k is None:
            raise ValueError("k required when passing a strategy name")
        strat = get_strategy(strategy, m, k)
    else:
        strat = strategy
        if strat.m != m:
            raise ValueError(f"strategy has m={strat.m}, popularity has m={m}")
    allowed = strat.transfer_matrix()  # allowed[i-1, j-1]

    # Variables: a_{ij} flattened row-major (i major), then lambda.
    nvar = m * m + 1
    c = np.zeros(nvar)
    c[-1] = -1.0  # maximize lambda

    # Equality: sum_i a_ij - lambda P(E_j) = 0  for each j.
    a_eq = np.zeros((m, nvar))
    for j in range(m):
        for i in range(m):
            a_eq[j, i * m + j] = 1.0
        a_eq[j, -1] = -w[j]
    b_eq = np.zeros(m)

    # Inequality: sum_j a_ij <= 1 for each i.
    a_ub = np.zeros((m, nvar))
    for i in range(m):
        a_ub[i, i * m : (i + 1) * m] = 1.0
    b_ub = np.ones(m)

    bounds = []
    for i in range(m):
        for j in range(m):
            bounds.append((0.0, None) if allowed[i, j] else (0.0, 0.0))
    bounds.append((0.0, float(m) / w.max() if w.max() > 0 else None))

    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - LP is always feasible (lambda = 0)
        raise RuntimeError(f"max-load LP failed: {res.message}")
    transfer = np.asarray(res.x[:-1]).reshape(m, m)
    return MaxLoadSolution(lam=float(res.x[-1]), m=m, transfer=transfer)


def max_load_flow(
    popularity,
    strategy: str | ReplicationStrategy,
    k: int | None = None,
    tol: float = 1e-7,
) -> float:
    """The same optimum via binary search on :math:`\\lambda` with a
    max-flow feasibility oracle (own Dinic) — an independent
    cross-check of the LP.

    Network: source → home ``j`` with capacity :math:`\\lambda P(E_j)`,
    home ``j`` → server ``i`` (∞) for :math:`M_i \\in I_k(j)`, server
    ``i`` → sink (1).  :math:`\\lambda` is feasible iff the max flow
    saturates the source.
    """
    w = _weights(popularity)
    m = w.size
    if isinstance(strategy, str):
        if k is None:
            raise ValueError("k required when passing a strategy name")
        strat = get_strategy(strategy, m, k)
    else:
        strat = strategy

    def feasible(lam: float) -> bool:
        # nodes: 0 source, 1..m homes, m+1..2m servers, 2m+1 sink
        net = Dinic(2 * m + 2)
        sink = 2 * m + 1
        for j in range(1, m + 1):
            net.add_edge(0, j, lam * w[j - 1])
            for i in strat.replicas(j):
                net.add_edge(j, m + i, float("inf"))
        for i in range(1, m + 1):
            net.add_edge(m + i, sink, 1.0)
        return net.max_flow(0, sink) >= lam - tol

    lo, hi = 0.0, float(m) / w.max()
    for _ in range(60):
        mid = (lo + hi) / 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


def max_load_percent(
    popularity, strategy: str | ReplicationStrategy, k: int | None = None
) -> float:
    """Maximum average cluster load in percent (Figure 10's scale)."""
    return max_load_lp(popularity, strategy, k).load_percent
