"""The maximum-load linear program (Equation 15 of the paper).

Given a machine popularity :math:`P(E_j)` and a replication strategy
with replica sets :math:`I_k(j)`, the LP finds the largest arrival rate
:math:`\\lambda` such that the popularity-weighted work can be routed
to machines without exceeding unit capacity:

.. math::

    \\max \\lambda \\quad \\text{s.t.} \\quad
    \\sum_i a_{ij} = \\lambda P(E_j) \\;\\; \\forall j, \\qquad
    \\sum_j a_{ij} \\le 1 \\;\\; \\forall i, \\qquad
    a_{ij} = 0 \\text{ if } M_i \\notin I_k(j), \\qquad
    a, \\lambda \\ge 0.

:math:`a_{ij}` is the rate of work homed on :math:`M_j` that machine
:math:`M_i` eventually serves.  The *max-load percentage* plotted in
Figure 10 is :math:`100 \\lambda^* / m`.

Solved with ``scipy.optimize.linprog`` (HiGHS).  Cross-checks:
:func:`max_load_flow` (binary search + own Dinic max-flow) and the
closed forms of :mod:`repro.maxload.closedform`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..psets.replication import ReplicationStrategy, get_strategy
from ..simulation.popularity import MachinePopularity
from .flow import Dinic

__all__ = [
    "DegeneratePopularityError",
    "MaxLoadSolution",
    "clear_solve_cache",
    "max_load_flow",
    "max_load_lp",
    "max_load_lp_cached",
    "max_load_percent",
    "solve_cache_info",
]


class DegeneratePopularityError(ValueError):
    """The popularity vector cannot drive the max-load LP.

    Raised for empty, non-finite, negative, zero-mass or
    not-summing-to-one inputs.  A zero-mass vector would otherwise
    surface as a numpy divide warning (the :math:`m / \\max_j P(E_j)`
    bound on :math:`\\lambda`) and an unbounded LP.  Subclasses
    :class:`ValueError` so existing ``except ValueError`` call sites
    keep working.
    """


@dataclass(frozen=True)
class MaxLoadSolution:
    """Result of the max-load LP."""

    lam: float  #: optimal arrival rate lambda*
    m: int
    transfer: np.ndarray  #: optimal a_{ij} matrix, shape (m, m)

    @property
    def load_percent(self) -> float:
        """Maximum average cluster load, in percent
        (:math:`100\\,\\lambda^*/m`)."""
        return 100.0 * self.lam / self.m

    def machine_rates(self) -> np.ndarray:
        """Per-machine served work rate :math:`\\sum_j a_{ij}`."""
        return self.transfer.sum(axis=1)


def _weights(popularity) -> np.ndarray:
    if isinstance(popularity, MachinePopularity):
        w = popularity.weights
    else:
        w = np.asarray(popularity, dtype=float)
    if w.ndim != 1 or w.size < 1:
        raise DegeneratePopularityError("popularity must be a probability vector")
    if not np.all(np.isfinite(w)) or np.any(w < 0):
        raise DegeneratePopularityError("popularity must be a probability vector")
    total = float(w.sum())
    if total <= 0.0:
        raise DegeneratePopularityError(
            "popularity has zero mass — no machine ever receives work"
        )
    if not np.isclose(total, 1.0):
        raise DegeneratePopularityError("popularity must be a probability vector")
    return w


def max_load_lp(
    popularity,
    strategy: str | ReplicationStrategy,
    k: int | None = None,
) -> MaxLoadSolution:
    """Solve Equation (15) exactly.

    ``popularity`` is a :class:`MachinePopularity` or a probability
    vector; ``strategy`` a name (with ``k``) or a bound strategy.
    """
    w = _weights(popularity)
    m = w.size
    if isinstance(strategy, str):
        if k is None:
            raise ValueError("k required when passing a strategy name")
        strat = get_strategy(strategy, m, k)
    else:
        strat = strategy
        if strat.m != m:
            raise ValueError(f"strategy has m={strat.m}, popularity has m={m}")
    allowed = strat.transfer_matrix()  # allowed[i-1, j-1]

    # Variables: a_{ij} flattened row-major (i major), then lambda.
    nvar = m * m + 1
    c = np.zeros(nvar)
    c[-1] = -1.0  # maximize lambda

    # Equality: sum_i a_ij - lambda P(E_j) = 0  for each j.
    a_eq = np.zeros((m, nvar))
    for j in range(m):
        for i in range(m):
            a_eq[j, i * m + j] = 1.0
        a_eq[j, -1] = -w[j]
    b_eq = np.zeros(m)

    # Inequality: sum_j a_ij <= 1 for each i.
    a_ub = np.zeros((m, nvar))
    for i in range(m):
        a_ub[i, i * m : (i + 1) * m] = 1.0
    b_ub = np.ones(m)

    bounds = []
    for i in range(m):
        for j in range(m):
            bounds.append((0.0, None) if allowed[i, j] else (0.0, 0.0))
    bounds.append((0.0, float(m) / w.max() if w.max() > 0 else None))

    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - LP is always feasible (lambda = 0)
        raise RuntimeError(f"max-load LP failed: {res.message}")
    transfer = np.asarray(res.x[:-1]).reshape(m, m)
    return MaxLoadSolution(lam=float(res.x[-1]), m=m, transfer=transfer)


_CACHE_MAX = 128
_solve_cache: "OrderedDict[tuple, MaxLoadSolution]" = OrderedDict()
_cache_stats = {"hits": 0, "misses": 0}


def _placement_key(strat: ReplicationStrategy) -> tuple:
    """Hashable fingerprint of a placement: the replica set of every
    home, in home order.  Two strategies with identical sets — e.g. a
    named ring and an interval placement that happens to equal it —
    share cache entries."""
    return tuple(tuple(sorted(strat.replicas(u))) for u in range(1, strat.m + 1))


def max_load_lp_cached(
    popularity,
    strategy: str | ReplicationStrategy,
    k: int | None = None,
) -> MaxLoadSolution:
    """:func:`max_load_lp` behind a small LRU cache keyed by
    (popularity bytes, placement replica sets).

    The rebalance controller re-solves the LP on a cadence; between
    triggers both the estimated popularity (quantised) and the live
    placement are unchanged, so repeated solves are pure cache hits.
    """
    w = _weights(popularity)
    m = w.size
    if isinstance(strategy, str):
        if k is None:
            raise ValueError("k required when passing a strategy name")
        strat = get_strategy(strategy, m, k)
    else:
        strat = strategy
        if strat.m != m:
            raise ValueError(f"strategy has m={strat.m}, popularity has m={m}")
    key = (w.tobytes(), _placement_key(strat))
    hit = _solve_cache.get(key)
    if hit is not None:
        _solve_cache.move_to_end(key)
        _cache_stats["hits"] += 1
        return hit
    _cache_stats["misses"] += 1
    sol = max_load_lp(w, strat)
    _solve_cache[key] = sol
    while len(_solve_cache) > _CACHE_MAX:
        _solve_cache.popitem(last=False)
    return sol


def solve_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the :func:`max_load_lp_cached` LRU."""
    return {"size": len(_solve_cache), "hits": _cache_stats["hits"], "misses": _cache_stats["misses"]}


def clear_solve_cache() -> None:
    """Empty the LRU and reset its counters (test isolation)."""
    _solve_cache.clear()
    _cache_stats["hits"] = _cache_stats["misses"] = 0


def max_load_flow(
    popularity,
    strategy: str | ReplicationStrategy,
    k: int | None = None,
    tol: float = 1e-7,
) -> float:
    """The same optimum via binary search on :math:`\\lambda` with a
    max-flow feasibility oracle (own Dinic) — an independent
    cross-check of the LP.

    Network: source → home ``j`` with capacity :math:`\\lambda P(E_j)`,
    home ``j`` → server ``i`` (∞) for :math:`M_i \\in I_k(j)`, server
    ``i`` → sink (1).  :math:`\\lambda` is feasible iff the max flow
    saturates the source.
    """
    w = _weights(popularity)
    m = w.size
    if isinstance(strategy, str):
        if k is None:
            raise ValueError("k required when passing a strategy name")
        strat = get_strategy(strategy, m, k)
    else:
        strat = strategy

    def feasible(lam: float) -> bool:
        # nodes: 0 source, 1..m homes, m+1..2m servers, 2m+1 sink
        net = Dinic(2 * m + 2)
        sink = 2 * m + 1
        for j in range(1, m + 1):
            net.add_edge(0, j, lam * w[j - 1])
            for i in strat.replicas(j):
                net.add_edge(j, m + i, float("inf"))
        for i in range(1, m + 1):
            net.add_edge(m + i, sink, 1.0)
        return net.max_flow(0, sink) >= lam - tol

    lo, hi = 0.0, float(m) / w.max()
    for _ in range(60):
        mid = (lo + hi) / 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


def max_load_percent(
    popularity, strategy: str | ReplicationStrategy, k: int | None = None
) -> float:
    """Maximum average cluster load in percent (Figure 10's scale)."""
    return max_load_lp(popularity, strategy, k).load_percent
