"""Arrival processes.

Section 7.1: tasks are released according to a Poisson process with
rate :math:`\\lambda` (on average :math:`\\lambda` tasks per time
unit); :math:`\\lambda/m` is the average cluster load, so
:math:`\\lambda = m` loads the cluster at 100%.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["poisson_release_times", "batch_release_times", "load_to_rate", "rate_to_load"]


def poisson_release_times(
    lam: float, n: int, rng: np.random.Generator | int | None = None, start: float = 0.0
) -> np.ndarray:
    """``n`` release times of a Poisson process with rate ``lam``.

    Inter-arrival gaps are i.i.d. ``Exponential(1/lam)``; times are the
    cumulative sums offset by ``start``.
    """
    if not math.isfinite(lam) or lam <= 0:
        raise ValueError("arrival rate must be finite and > 0")
    if n < 0:
        raise ValueError("n must be >= 0")
    if not math.isfinite(start):
        raise ValueError("start must be finite")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    gaps = gen.exponential(scale=1.0 / lam, size=n)
    return start + np.cumsum(gaps)


def batch_release_times(batch_size: int, n_batches: int, period: float = 1.0) -> np.ndarray:
    """Deterministic batched releases: ``batch_size`` tasks at every
    multiple of ``period`` (the adversaries' release pattern)."""
    if batch_size < 1 or n_batches < 1:
        raise ValueError("batch_size and n_batches must be >= 1")
    if not math.isfinite(period) or period <= 0:
        raise ValueError("period must be finite and > 0")
    times = np.repeat(np.arange(n_batches, dtype=float) * period, batch_size)
    return times


def load_to_rate(load: float, m: int) -> float:
    """Average cluster load (0..1 scale, unit tasks) to arrival rate:
    :math:`\\lambda = \\text{load} \\cdot m`."""
    if not math.isfinite(load) or load <= 0:
        raise ValueError("load must be finite and > 0")
    if m < 1:
        raise ValueError("need at least one machine")
    return load * m


def rate_to_load(lam: float, m: int) -> float:
    """Arrival rate to average cluster load: :math:`\\lambda / m`."""
    if not math.isfinite(lam) or lam <= 0:
        raise ValueError("arrival rate must be finite and > 0")
    if m < 1:
        raise ValueError("need at least one machine")
    return lam / m
