"""Machine popularity model of Section 7.1.

Each task requests a key held by exactly one *home* machine; machine
:math:`M_j` is requested with probability :math:`P(E_j)`.  The paper
models popularity with a Zipf distribution,

.. math::

    P(E_j) = \\frac{1}{j^s \\, H_{m,s}},

where :math:`s \\ge 0` is the shape and :math:`H_{m,s}` the
:math:`m`-th generalised harmonic number of order :math:`s`, and
studies three arrangements (Figure 8):

* **Uniform** (:math:`s = 0`): all machines equally popular;
* **Worst-case** (:math:`s > 0`, natural order): load decreases
  monotonically with the machine index, concentrating work on the
  first machines;
* **Shuffled** (:math:`s > 0`, random permutation): realistic clusters
  where hot keys land anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "generalized_harmonic",
    "zipf_weights",
    "MachinePopularity",
    "uniform_case",
    "worst_case",
    "shuffled_case",
]


def generalized_harmonic(m: int, s: float) -> float:
    """:math:`H_{m,s} = \\sum_{j=1}^{m} j^{-s}`."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return float(np.sum(np.arange(1, m + 1, dtype=float) ** (-s)))


def zipf_weights(m: int, s: float) -> np.ndarray:
    """Zipf probabilities :math:`P(E_j) = 1/(j^s H_{m,s})`, ``j=1..m``.

    ``s = 0`` degenerates to the uniform distribution.
    """
    if s < 0:
        raise ValueError("Zipf shape s must be >= 0")
    j = np.arange(1, m + 1, dtype=float)
    w = j ** (-s)
    return w / w.sum()


@dataclass(frozen=True)
class MachinePopularity:
    """A concrete machine-popularity distribution.

    ``weights[j-1]`` is :math:`P(E_j)`.  ``case`` records which of the
    paper's three arrangements produced it.
    """

    weights: np.ndarray
    case: str
    s: float

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=float)
        if w.ndim != 1 or w.size < 1:
            raise ValueError("weights must be a 1-D non-empty array")
        if np.any(w < 0) or not np.isclose(w.sum(), 1.0):
            raise ValueError("weights must be non-negative and sum to 1")
        object.__setattr__(self, "weights", w)

    @property
    def m(self) -> int:
        return int(self.weights.size)

    def machine_loads(self, lam: float) -> np.ndarray:
        """Average arriving work per machine and time unit,
        :math:`\\lambda P(E_j)` (Figure 8's bars)."""
        return lam * self.weights

    def max_load_unreplicated(self) -> float:
        """Maximum feasible :math:`\\lambda` without replication:
        :math:`\\lambda \\le 1 / \\max_j P(E_j)` (Section 7.2)."""
        return float(1.0 / self.weights.max())

    def sample_homes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` home machines (1-based indices) i.i.d. from the
        distribution."""
        return rng.choice(np.arange(1, self.m + 1), size=n, p=self.weights)


def uniform_case(m: int) -> MachinePopularity:
    """The Uniform case (``s = 0``)."""
    return MachinePopularity(weights=zipf_weights(m, 0.0), case="uniform", s=0.0)


def worst_case(m: int, s: float) -> MachinePopularity:
    """The Worst-case: Zipf in natural (monotonically decreasing) order."""
    return MachinePopularity(weights=zipf_weights(m, s), case="worst", s=s)


def shuffled_case(
    m: int, s: float, rng: np.random.Generator | int | None = None
) -> MachinePopularity:
    """The Shuffled case: Zipf weights under a uniform random machine
    permutation (no prior knowledge of which machines are hot)."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    w = zipf_weights(m, s)
    return MachinePopularity(weights=w[gen.permutation(m)], case="shuffled", s=s)
