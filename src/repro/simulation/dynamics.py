"""Time-varying workloads: rate profiles and popularity dynamics.

The paper's Section 7 experiments fix a Zipf popularity and a constant
Poisson rate.  Real stores see neither: arrival rates breathe with the
day, flash crowds spike them, and the *location* of the hot keys moves
(a product launch shifts traffic from one shard's keys to another's).
This module adds those axes while keeping every output on the existing
arrival-stream contract — a :class:`~repro.core.task.Instance` of
release-ordered tasks — so the Simulator, campaign units and the serve
driver consume dynamic workloads unchanged.

Two orthogonal dials:

* a :class:`RateProfile` ``lambda(t)`` shaping *when* work arrives —
  :class:`ConstantRate`, :class:`DiurnalRate` (sinusoidal day/night
  swing), :class:`FlashCrowd` (a plateau burst on a base rate).
  Arrivals are drawn by **inversion**: a unit-rate Poisson process
  mapped through :math:`\\Lambda^{-1}`, so exactly ``n`` arrivals come
  out, monotone in time, from exactly ``n`` seeded exponential draws —
  identical streams for identical seeds on any process or platform.
* a :class:`PopularityProfile` ``P(E_j; t)`` shaping *where* it lands —
  :class:`StaticPopularity`, :class:`ZipfDrift` (the Zipf exponent
  ramps between two values), :class:`HotspotShift` (the weight vector
  rotates around the ring at shift instants — hot data "moves").

Every profile degenerates to its static counterpart when its amplitude
is zero (``DiurnalRate(amplitude=0)``, ``ZipfDrift(s1 == s0)``,
``HotspotShift(shifts=())``), and the degenerate paths reuse the exact
static sampling calls, so the reduction is *bit-for-bit*, not just in
distribution — property-tested in ``tests/simulation/test_dynamics.py``.

:class:`DynamicWorkloadSpec` bundles both dials with the replication
strategy and size distribution of :class:`~.workload.WorkloadSpec`.
Its :meth:`~DynamicWorkloadSpec.stream` additionally exposes the raw
``(releases, homes, sizes)`` arrays — the form the rebalance harness
needs, because under a *live* placement the replica set of a home is
decided at dispatch time, not at generation time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core.task import Instance, Task
from ..psets.replication import ReplicationStrategy, get_strategy
from .arrivals import poisson_release_times
from .popularity import MachinePopularity, zipf_weights

__all__ = [
    "ConstantRate",
    "DiurnalRate",
    "DynamicStream",
    "DynamicWorkloadSpec",
    "FlashCrowd",
    "HotspotShift",
    "PopularityProfile",
    "RateProfile",
    "StaticPopularity",
    "ZipfDrift",
    "arrival_times",
    "generate_dynamic_workload",
    "profile_from_dict",
    "profile_to_dict",
]


# ---------------------------------------------------------------------------
# Rate profiles
# ---------------------------------------------------------------------------


class RateProfile:
    """An arrival-rate curve :math:`\\lambda(t) \\ge 0`.

    Subclasses provide :meth:`rate` and the cumulative
    :meth:`cumulative` :math:`\\Lambda(t) = \\int_0^t \\lambda`;
    inversion-based sampling and time-averaging are derived here.
    """

    def rate(self, t: float) -> float:
        raise NotImplementedError

    def cumulative(self, t: float) -> float:
        """:math:`\\Lambda(t)`, the expected arrivals in ``[0, t]``."""
        raise NotImplementedError

    @property
    def is_constant(self) -> bool:
        return False

    def inverse_cumulative(self, u: float) -> float:
        """:math:`\\Lambda^{-1}(u)`: the time by which ``u`` arrivals
        are expected.  Generic bisection; subclasses override with the
        closed form where one exists."""
        if u <= 0:
            return 0.0
        hi = 1.0
        while self.cumulative(hi) < u:
            hi *= 2.0
            if hi > 1e18:  # pragma: no cover - pathological profile
                raise ValueError(f"rate profile never accumulates {u} arrivals")
        lo = 0.0
        for _ in range(80):
            mid = (lo + hi) / 2
            if self.cumulative(mid) < u:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2

    def duration_for(self, n: int) -> float:
        """Expected span of an ``n``-arrival stream,
        :math:`\\Lambda^{-1}(n)`."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return self.inverse_cumulative(float(n))

    def mean_rate(self, n: int) -> float:
        """Time-averaged rate over the expected ``n``-arrival window:
        :math:`n / \\Lambda^{-1}(n)`."""
        return float(n) / self.duration_for(n)


@dataclass(frozen=True)
class ConstantRate(RateProfile):
    """The homogeneous Poisson process of the paper: ``lambda(t) = lam``."""

    lam: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.lam) or self.lam <= 0:
            raise ValueError("arrival rate must be finite and > 0")

    def rate(self, t: float) -> float:
        return self.lam

    def cumulative(self, t: float) -> float:
        return self.lam * t

    def inverse_cumulative(self, u: float) -> float:
        return max(0.0, u / self.lam)

    @property
    def is_constant(self) -> bool:
        return True


@dataclass(frozen=True)
class DiurnalRate(RateProfile):
    """Sinusoidal day/night swing around a base rate:

    .. math::

        \\lambda(t) = \\text{base} \\bigl(1 + a \\sin(2\\pi (t +
        \\text{phase}) / \\text{period})\\bigr), \\qquad 0 \\le a \\le 1.

    ``amplitude = 0`` degenerates to :class:`ConstantRate` exactly.
    """

    base: float
    amplitude: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.base) or self.base <= 0:
            raise ValueError("base rate must be finite and > 0")
        if not (0.0 <= self.amplitude <= 1.0):
            raise ValueError("amplitude must lie in [0, 1]")
        if not math.isfinite(self.period) or self.period <= 0:
            raise ValueError("period must be finite and > 0")

    def rate(self, t: float) -> float:
        return self.base * (1.0 + self.amplitude * math.sin(2 * math.pi * (t + self.phase) / self.period))

    def cumulative(self, t: float) -> float:
        w = 2 * math.pi / self.period
        # int_0^t base*(1 + a sin(w (x+phase))) dx
        return self.base * (
            t + self.amplitude / w * (math.cos(w * self.phase) - math.cos(w * (t + self.phase)))
        )

    @property
    def is_constant(self) -> bool:
        return self.amplitude == 0.0


@dataclass(frozen=True)
class FlashCrowd(RateProfile):
    """A plateau burst: ``base`` everywhere except ``peak`` over the
    half-open window ``[start, start + duration)``."""

    base: float
    peak: float
    start: float
    duration: float

    def __post_init__(self) -> None:
        for name in ("base", "peak", "start", "duration"):
            v = getattr(self, name)
            if not math.isfinite(v):
                raise ValueError(f"{name} must be finite")
        if self.base <= 0 or self.peak <= 0:
            raise ValueError("base and peak rates must be > 0")
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")

    def rate(self, t: float) -> float:
        return self.peak if self.start <= t < self.start + self.duration else self.base

    def cumulative(self, t: float) -> float:
        burst = min(max(t - self.start, 0.0), self.duration)
        return self.base * (t - burst) + self.peak * burst

    def inverse_cumulative(self, u: float) -> float:
        if u <= 0:
            return 0.0
        at_start = self.base * self.start
        if u <= at_start:
            return u / self.base
        at_end = at_start + self.peak * self.duration
        if u <= at_end:
            return self.start + (u - at_start) / self.peak
        return self.start + self.duration + (u - at_end) / self.base

    @property
    def is_constant(self) -> bool:
        return self.peak == self.base


def arrival_times(
    profile: RateProfile, n: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """``n`` release times of the non-homogeneous Poisson process with
    intensity ``profile``.

    Inversion sampling: unit-rate arrivals (cumulative sums of
    ``Exponential(1)`` draws) mapped through :math:`\\Lambda^{-1}`.
    A constant profile takes the static fast path — the *same* numpy
    call sequence as :func:`~.arrivals.poisson_release_times` — so the
    degenerate stream is bit-identical to the paper's generator.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if profile.is_constant:
        return poisson_release_times(profile.rate(0.0), n, gen)
    unit = np.cumsum(gen.exponential(scale=1.0, size=n))
    return np.array([profile.inverse_cumulative(float(u)) for u in unit])


# ---------------------------------------------------------------------------
# Popularity profiles
# ---------------------------------------------------------------------------


class PopularityProfile:
    """A time-varying machine-popularity vector :math:`P(E_j; t)`."""

    m: int

    def weights(self, t: float) -> np.ndarray:
        """Probability vector over machines ``1..m`` at time ``t``."""
        raise NotImplementedError

    @property
    def is_static(self) -> bool:
        return False

    def sample_homes(self, releases: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Home machine (1-based) of each arrival, drawn from the
        weights at its release instant.  Static profiles take the bulk
        static path (one ``choice`` call — bit-identical to
        :meth:`MachinePopularity.sample_homes`)."""
        machines = np.arange(1, self.m + 1)
        if self.is_static:
            return rng.choice(machines, size=releases.size, p=self.weights(0.0))
        return np.array(
            [int(rng.choice(machines, p=self.weights(float(t)))) for t in releases],
            dtype=np.int64,
        )


@dataclass(frozen=True)
class StaticPopularity(PopularityProfile):
    """A fixed :class:`MachinePopularity` lifted to the profile API."""

    popularity: MachinePopularity

    @property
    def m(self) -> int:
        return self.popularity.m

    def weights(self, t: float) -> np.ndarray:
        return self.popularity.weights

    @property
    def is_static(self) -> bool:
        return True


@dataclass(frozen=True)
class ZipfDrift(PopularityProfile):
    """The Zipf exponent ramps linearly from ``s0`` to ``s1`` over
    ``[t0, t1]`` (clamped outside) — popularity bias sharpening or
    flattening over time.  ``order`` optionally permutes the ranks
    (the Shuffled case); identity order is the Worst case."""

    m: int
    s0: float
    s1: float
    t0: float
    t1: float
    order: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if self.s0 < 0 or self.s1 < 0:
            raise ValueError("Zipf shapes must be >= 0")
        if not (self.t0 <= self.t1):
            raise ValueError("need t0 <= t1")
        if self.order is not None and sorted(self.order) != list(range(self.m)):
            raise ValueError("order must be a permutation of 0..m-1")

    def exponent(self, t: float) -> float:
        if self.s0 == self.s1 or t <= self.t0:
            return self.s0
        if t >= self.t1:
            return self.s1
        frac = (t - self.t0) / (self.t1 - self.t0)
        return self.s0 + frac * (self.s1 - self.s0)

    def weights(self, t: float) -> np.ndarray:
        w = zipf_weights(self.m, self.exponent(t))
        if self.order is not None:
            w = w[np.asarray(self.order)]
        return w

    @property
    def is_static(self) -> bool:
        return self.s0 == self.s1


@dataclass(frozen=True)
class HotspotShift(PopularityProfile):
    """A Zipf popularity whose hot machines *move*: at each shift
    instant the weight vector rotates by ``rotation`` positions around
    the ring (cumulatively), modelling hot keys migrating from one
    region of the cluster to another.  ``shifts=()`` degenerates to the
    static Zipf."""

    m: int
    s: float
    shifts: tuple[tuple[float, int], ...] = ()
    order: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if self.s < 0:
            raise ValueError("Zipf shape s must be >= 0")
        times = [t for t, _ in self.shifts]
        if any(t < 0 for t in times) or times != sorted(times):
            raise ValueError("shift times must be >= 0 and non-decreasing")
        if self.order is not None and sorted(self.order) != list(range(self.m)):
            raise ValueError("order must be a permutation of 0..m-1")

    def rotation(self, t: float) -> int:
        return sum(rot for at, rot in self.shifts if at <= t) % self.m

    def weights(self, t: float) -> np.ndarray:
        w = zipf_weights(self.m, self.s)
        if self.order is not None:
            w = w[np.asarray(self.order)]
        return np.roll(w, self.rotation(t))

    @property
    def is_static(self) -> bool:
        return all(rot % self.m == 0 for _, rot in self.shifts)

    def sample_homes(self, releases: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        # Weights are piecewise-constant between shifts: sample each
        # segment in one bulk draw instead of one draw per task.
        if self.is_static:
            return super().sample_homes(releases, rng)
        machines = np.arange(1, self.m + 1)
        out = np.empty(releases.size, dtype=np.int64)
        bounds = [at for at, _ in self.shifts]
        starts = np.searchsorted(releases, bounds, side="left")
        segment_edges = [0, *starts.tolist(), releases.size]
        seg_times = [0.0, *bounds]
        for (lo, hi), t in zip(zip(segment_edges, segment_edges[1:]), seg_times):
            if hi > lo:
                out[lo:hi] = rng.choice(machines, size=hi - lo, p=self.weights(t))
        return out


# ---------------------------------------------------------------------------
# The dynamic workload spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DynamicStream:
    """The raw arrival stream: parallel arrays of release times, home
    machines (1-based) and service times.  This is the contract the
    rebalance harness consumes — replica sets are *not* baked in, so a
    live placement can decide them at dispatch time."""

    releases: np.ndarray
    homes: np.ndarray
    sizes: np.ndarray

    @property
    def n(self) -> int:
        return int(self.releases.size)

    def instance(self, m: int, strategy: ReplicationStrategy) -> Instance:
        """Bake the stream into an :class:`Instance` under a *fixed*
        replication strategy (the static-placement view).  Each task
        carries its home machine in ``key``, so placements that change
        later can still resolve the task's data location."""
        tasks = tuple(
            Task(
                tid=i,
                release=float(self.releases[i]),
                proc=float(self.sizes[i]),
                machines=strategy.replicas(int(self.homes[i])),
                key=int(self.homes[i]),
            )
            for i in range(self.n)
        )
        return Instance(m=m, tasks=tasks)


@dataclass(frozen=True)
class DynamicWorkloadSpec:
    """A time-varying Figure-11-style workload.

    Same dials as :class:`~.workload.WorkloadSpec` (machines, tasks,
    replication, size distribution) with the constant ``lam`` replaced
    by a :class:`RateProfile` and the fixed popularity case by a
    :class:`PopularityProfile`.
    """

    m: int
    n: int
    rate: RateProfile
    popularity: PopularityProfile
    k: int = 3
    strategy: str = "overlapping"
    proc: float = 1.0
    size_dist: str = "unit"

    def __post_init__(self) -> None:
        if self.popularity.m != self.m:
            raise ValueError(
                f"popularity profile has m={self.popularity.m}, spec has m={self.m}"
            )

    @property
    def average_load(self) -> float:
        """Time-averaged cluster load over the expected ``n``-arrival
        window: :math:`\\bar\\lambda \\, \\bar p / m`."""
        return self.rate.mean_rate(self.n) * self.proc / self.m

    def stream(self, rng: np.random.Generator | int | None = None) -> DynamicStream:
        """Draw the arrival stream (releases, then homes, then sizes —
        the draw order of :func:`~.workload.generate_workload`, so the
        fully-degenerate spec reproduces its stream exactly)."""
        from .workload import sample_sizes

        gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        releases = arrival_times(self.rate, self.n, gen)
        homes = self.popularity.sample_homes(releases, gen)
        sizes = sample_sizes(self.size_dist, self.n, self.proc, gen)
        return DynamicStream(releases=releases, homes=homes, sizes=sizes)

    def replication(self) -> ReplicationStrategy:
        return get_strategy(self.strategy, self.m, self.k)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able description (inverse of :meth:`from_dict`) —
        embedded in rebalance trace headers so a trace replays from its
        own bytes."""
        return {
            "m": self.m,
            "n": self.n,
            "rate": profile_to_dict(self.rate),
            "popularity": profile_to_dict(self.popularity),
            "k": self.k,
            "strategy": self.strategy,
            "proc": self.proc,
            "size_dist": self.size_dist,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "DynamicWorkloadSpec":
        rate = profile_from_dict(data["rate"])
        pop = profile_from_dict(data["popularity"])
        if not isinstance(rate, RateProfile) or not isinstance(pop, PopularityProfile):
            raise ValueError("rate/popularity entries have swapped or invalid kinds")
        return DynamicWorkloadSpec(
            m=int(data["m"]),
            n=int(data["n"]),
            rate=rate,
            popularity=pop,
            k=int(data.get("k", 3)),
            strategy=str(data.get("strategy", "overlapping")),
            proc=float(data.get("proc", 1.0)),
            size_dist=str(data.get("size_dist", "unit")),
        )


def generate_dynamic_workload(
    spec: DynamicWorkloadSpec, rng: np.random.Generator | int | None = None
) -> Instance:
    """Generate an :class:`Instance` from a dynamic spec — the same
    arrival-stream contract as :func:`~.workload.generate_workload`,
    directly consumable by the Simulator, campaigns and serve driver."""
    return spec.stream(rng).instance(spec.m, spec.replication())


# ---------------------------------------------------------------------------
# Serialisation (rebalance traces embed their workload for replay)
# ---------------------------------------------------------------------------

_RATE_KINDS = {"constant": ConstantRate, "diurnal": DiurnalRate, "flash": FlashCrowd}
_POP_KINDS = {"zipf-drift": ZipfDrift, "hotspot-shift": HotspotShift}


def profile_to_dict(profile: RateProfile | PopularityProfile) -> dict[str, Any]:
    """A JSON-able description of a profile (inverse of
    :func:`profile_from_dict`)."""
    if isinstance(profile, ConstantRate):
        return {"kind": "constant", "lam": profile.lam}
    if isinstance(profile, DiurnalRate):
        return {
            "kind": "diurnal",
            "base": profile.base,
            "amplitude": profile.amplitude,
            "period": profile.period,
            "phase": profile.phase,
        }
    if isinstance(profile, FlashCrowd):
        return {
            "kind": "flash",
            "base": profile.base,
            "peak": profile.peak,
            "start": profile.start,
            "duration": profile.duration,
        }
    if isinstance(profile, StaticPopularity):
        return {
            "kind": "static",
            "m": profile.m,
            "weights": [float(w) for w in profile.popularity.weights],
            "case": profile.popularity.case,
            "s": profile.popularity.s,
        }
    if isinstance(profile, ZipfDrift):
        return {
            "kind": "zipf-drift",
            "m": profile.m,
            "s0": profile.s0,
            "s1": profile.s1,
            "t0": profile.t0,
            "t1": profile.t1,
            "order": None if profile.order is None else list(profile.order),
        }
    if isinstance(profile, HotspotShift):
        return {
            "kind": "hotspot-shift",
            "m": profile.m,
            "s": profile.s,
            "shifts": [[t, r] for t, r in profile.shifts],
            "order": None if profile.order is None else list(profile.order),
        }
    raise TypeError(f"cannot serialise profile of type {type(profile).__name__}")


def profile_from_dict(data: Mapping[str, Any]) -> RateProfile | PopularityProfile:
    """Rebuild a profile serialised by :func:`profile_to_dict`."""
    kind = data.get("kind")
    if kind in _RATE_KINDS:
        params = {k: v for k, v in data.items() if k != "kind"}
        return _RATE_KINDS[kind](**params)
    if kind == "static":
        pop = MachinePopularity(
            weights=np.asarray(data["weights"], dtype=float),
            case=str(data.get("case", "custom")),
            s=float(data.get("s", 0.0)),
        )
        return StaticPopularity(pop)
    if kind in _POP_KINDS:
        params = dict(data)
        params.pop("kind")
        if params.get("order") is not None:
            params["order"] = tuple(int(j) for j in params["order"])
        if kind == "hotspot-shift":
            params["shifts"] = tuple((float(t), int(r)) for t, r in params.get("shifts", ()))
        return _POP_KINDS[kind](**params)
    raise ValueError(f"unknown profile kind {kind!r}")
