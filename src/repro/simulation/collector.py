"""Metric collectors for simulator runs.

Collectors are OBSERVE callbacks sampling the simulator state on a
fixed cadence, plus post-hoc utilities (warm-up trimming, steady-state
checks) used when measuring steady-state max-flow as in Figure 11
("10 000 generated unit tasks, which is sufficient to reach a steady
state").

Since the :mod:`repro.obs` layer exists, the samplers are thin views
over :class:`repro.obs.TimeSeries` recorders in a shared
:class:`~repro.obs.MetricsRegistry` — the historical ``times`` /
``profiles`` / ``queued`` attributes are preserved as derived
properties, and the backing registry snapshots straight into the
canonical metrics JSON of :mod:`repro.obs.snapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.recorders import MetricsRegistry, TimeSeries
from .engine import Simulator

__all__ = ["ProfileSampler", "QueueSampler", "trim_warmup", "steady_state_reached"]


@dataclass
class ProfileSampler:
    """Samples the waiting-work profile :math:`w_t` every ``period``.

    Attach with :meth:`install`; after the run, ``times`` and
    ``profiles`` hold the series (``profiles[i][j-1]`` = work waiting
    on machine ``j`` at ``times[i]``), backed by one
    ``waiting_work[j]`` :class:`~repro.obs.TimeSeries` per machine in
    ``registry``.
    """

    period: float = 1.0
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    _series: list[TimeSeries] = field(default_factory=list, repr=False)

    def install(self, sim: Simulator, horizon: float) -> None:
        """Schedule sampling callbacks on ``sim`` up to ``horizon``."""
        self._series = [
            self.registry.series(f"waiting_work[{j}]") for j in range(1, sim.m + 1)
        ]
        t = self.period
        while t <= horizon:
            sim.at(t, self._sample)
            t += self.period

    def _sample(self, sim: Simulator) -> None:
        for series, w in zip(self._series, sim.waiting_profile()):
            series.observe(sim.now, w)

    @property
    def times(self) -> list[float]:
        return list(self._series[0].times) if self._series else []

    @property
    def profiles(self) -> list[list[float]]:
        if not self._series:
            return []
        return [list(row) for row in zip(*(s.values for s in self._series))]

    def as_array(self) -> np.ndarray:
        """Profiles as a ``(n_samples, m)`` array."""
        return np.array(self.profiles, dtype=float)


@dataclass
class QueueSampler:
    """Samples total queued tasks (released, not yet started), backed
    by a ``queue_len_total`` :class:`~repro.obs.TimeSeries`."""

    period: float = 1.0
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def install(self, sim: Simulator, horizon: float) -> None:
        t = self.period
        while t <= horizon:
            sim.at(t, self._sample)
            t += self.period

    @property
    def _series(self) -> TimeSeries:
        return self.registry.series("queue_len_total")

    def _sample(self, sim: Simulator) -> None:
        self._series.observe(sim.now, sum(len(m.queue) for m in sim.machines.values()))

    @property
    def times(self) -> list[float]:
        return list(self._series.times)

    @property
    def queued(self) -> list[int]:
        return [int(v) for v in self._series.values]


def trim_warmup(values: np.ndarray, fraction: float = 0.1) -> np.ndarray:
    """Drop the first ``fraction`` of samples (transient warm-up)."""
    if not (0.0 <= fraction < 1.0):
        raise ValueError("fraction must be in [0, 1)")
    values = np.asarray(values)
    start = int(len(values) * fraction)
    return values[start:]


def steady_state_reached(series: np.ndarray, window: int = 100, rel_tol: float = 0.25) -> bool:
    """Heuristic steady-state check: the means of the last two
    ``window``-sized blocks differ by less than ``rel_tol`` relative to
    their pooled mean (always False with < 2 windows of data)."""
    series = np.asarray(series, dtype=float)
    if len(series) < 2 * window:
        return False
    a = series[-2 * window : -window].mean()
    b = series[-window:].mean()
    pooled = (a + b) / 2
    if pooled == 0:
        return True
    return abs(a - b) / pooled < rel_tol
