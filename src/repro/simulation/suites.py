"""Named canonical workload suites.

A registry of reusable, fully specified workload configurations so
experiments, benchmarks and downstream users draw from the same
vocabulary:

* ``paper-fig11`` — the paper's Figure 11 setting (m=15, k=3, unit
  tasks, shuffled Zipf s=1 at 45% load);
* ``uniform-baseline`` — no popularity bias;
* ``hot-key`` — severe skew (worst case s=2): one machine's data is
  requested an order of magnitude more often;
* ``heavy-tail`` — Pareto request sizes (the tail-latency stressor);
* ``bursty`` — exponential sizes at high load, near the overlapping
  strategy's typical capacity.

Each suite yields a :class:`~repro.simulation.workload.WorkloadSpec`
bound to a popularity so repeated draws share the bias pattern, plus a
one-line description for reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.task import Instance
from .popularity import MachinePopularity, shuffled_case, uniform_case, worst_case
from .workload import WorkloadSpec, generate_workload

__all__ = ["WorkloadSuite", "SUITES", "get_suite", "suite_names"]


@dataclass(frozen=True)
class WorkloadSuite:
    """A named, fully specified workload configuration."""

    name: str
    description: str
    spec: WorkloadSpec
    popularity: MachinePopularity

    def instance(self, rng: np.random.Generator | int | None = None) -> Instance:
        """Draw one instance of the suite."""
        return generate_workload(self.spec, rng=rng, popularity=self.popularity)

    def with_load(self, load: float) -> "WorkloadSuite":
        """Same suite at a different average load (0..1 scale)."""
        from dataclasses import replace

        return WorkloadSuite(
            name=self.name,
            description=self.description,
            spec=replace(self.spec, lam=load * self.spec.m),
            popularity=self.popularity,
        )


def _build_registry(m: int = 15, k: int = 3, n: int = 5000) -> dict[str, WorkloadSuite]:
    return {
        "paper-fig11": WorkloadSuite(
            name="paper-fig11",
            description="the paper's Figure 11 setting: unit tasks, shuffled Zipf s=1, 45% load",
            spec=WorkloadSpec(m=m, n=n, lam=0.45 * m, k=k, strategy="overlapping", case="shuffled"),
            popularity=shuffled_case(m, 1.0, rng=2022),
        ),
        "uniform-baseline": WorkloadSuite(
            name="uniform-baseline",
            description="no popularity bias, 60% load",
            spec=WorkloadSpec(m=m, n=n, lam=0.6 * m, k=k, strategy="overlapping"),
            popularity=uniform_case(m),
        ),
        "hot-key": WorkloadSuite(
            name="hot-key",
            description="severe skew (worst case s=2) at 25% load",
            spec=WorkloadSpec(m=m, n=n, lam=0.25 * m, k=k, strategy="overlapping", case="worst", s=2.0),
            popularity=worst_case(m, 2.0),
        ),
        "heavy-tail": WorkloadSuite(
            name="heavy-tail",
            description="Pareto request sizes, shuffled s=1, 40% load",
            spec=WorkloadSpec(
                m=m, n=n, lam=0.4 * m, k=k, strategy="overlapping", size_dist="pareto"
            ),
            popularity=shuffled_case(m, 1.0, rng=7),
        ),
        "bursty": WorkloadSuite(
            name="bursty",
            description="exponential sizes at 55% load (near typical capacity)",
            spec=WorkloadSpec(
                m=m, n=n, lam=0.55 * m, k=k, strategy="overlapping", size_dist="exp"
            ),
            popularity=shuffled_case(m, 1.0, rng=11),
        ),
    }


#: The default registry (m=15, k=3, 5000 tasks).
SUITES: dict[str, WorkloadSuite] = _build_registry()


def suite_names() -> tuple[str, ...]:
    """Names of the registered suites."""
    return tuple(SUITES)


def get_suite(name: str) -> WorkloadSuite:
    """Look a suite up by name."""
    try:
        return SUITES[name]
    except KeyError:
        raise ValueError(f"unknown suite {name!r}; known: {sorted(SUITES)}") from None
