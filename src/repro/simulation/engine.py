"""Discrete-event simulator for online dispatch scheduling.

The engine models ``m`` machines, each with a local FIFO run queue, and
an immediate-dispatch scheduler deciding the target machine the moment
a task is released (the push model of Section 3).  It exists alongside
the analytic driver of :mod:`repro.core.dispatch` for three reasons:

1. it observes the system *in time* (queue lengths, waiting work,
   utilisation) for the Section 7 experiments;
2. it hosts adaptive adversaries: an ``OBSERVE`` callback may inspect
   the state and inject new tasks at the current instant;
3. it validates the analytic driver — for any instance and tie-break,
   the event-driven execution must reproduce the analytic schedule
   exactly (an integration test).

The engine is deliberately single-threaded and deterministic; all the
randomness lives in the workload generators.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.schedule import Schedule
from ..core.task import Instance, Task
from .events import EventKind, EventQueue

__all__ = ["MachineState", "SimulationResult", "Simulator"]


@dataclass(slots=True)
class MachineState:
    """Run-time state of one machine."""

    index: int
    busy_until: float = 0.0
    current: Task | None = None
    #: FIFO run queue; deque so starts pop the head in O(1).
    queue: deque[Task] = field(default_factory=deque)
    busy_time: float = 0.0
    tasks_done: int = 0

    def waiting_work(self, now: float) -> float:
        """Remaining work at ``now``: residual of the running task plus
        everything queued (the :math:`w_t(j)` of Theorem 8)."""
        residual = max(0.0, self.busy_until - now) if self.current is not None else 0.0
        return residual + sum(t.proc for t in self.queue)


@dataclass(slots=True)
class SimulationResult:
    """Outcome of a simulation run."""

    schedule: Schedule
    max_flow: float
    mean_flow: float
    makespan: float
    n_completed: int
    utilization: float
    #: tasks released but never started — non-zero when ``run(until=...)``
    #: truncated the simulation, so partial results are visible.
    n_pending: int = 0


class Simulator:
    """Event-driven execution of an immediate-dispatch scheduler.

    Parameters
    ----------
    scheduler:
        The dispatch policy (e.g. :class:`repro.core.eft.EFT`).  The
        simulator calls ``scheduler.submit`` at each release so the
        scheduler's own bookkeeping stays authoritative; the engine
        then enacts the decision with explicit START/COMPLETE events.
    """

    def __init__(self, scheduler: ImmediateDispatchScheduler) -> None:
        self.scheduler = scheduler
        self.m = scheduler.m
        self.machines = {j: MachineState(index=j) for j in range(1, self.m + 1)}
        self.events = EventQueue()
        self.now = 0.0
        self.completions: dict[int, float] = {}
        self.starts: dict[int, float] = {}
        self.assigned_machine: dict[int, int] = {}
        self._tasks: list[Task] = []
        self._observers: list[Callable[["Simulator"], None]] = []

    # -- workload feeding ---------------------------------------------------
    def add_tasks(self, tasks: Iterable[Task]) -> None:
        """Schedule RELEASE events for ``tasks`` (any order; the queue
        sorts by time)."""
        for t in tasks:
            self.events.push(t.release, EventKind.RELEASE, t)

    def add_instance(self, instance: Instance) -> None:
        """Feed a whole instance."""
        if instance.m != self.m:
            raise ValueError(f"instance has m={instance.m}, simulator has m={self.m}")
        self.add_tasks(instance.tasks)

    def at(self, time: float, callback: Callable[["Simulator"], None]) -> None:
        """Run ``callback(sim)`` when the clock reaches ``time``.

        The callback may inject tasks at the current instant (adaptive
        adversaries) or record observations (collectors).  Within the
        same instant, OBSERVE events fire in scheduling order relative
        to releases, so schedule observers *before* adding same-time
        tasks if they must see the pre-release state.
        """
        self.events.push(time, EventKind.OBSERVE, callback)

    # -- event handlers ------------------------------------------------------
    def _handle_release(self, task: Task) -> None:
        record = self.scheduler.submit(task)
        mach = self.machines[record.machine]
        self.assigned_machine[task.tid] = record.machine
        self._tasks.append(task)
        mach.queue.append(task)
        self._try_start(mach)

    def _try_start(self, mach: MachineState) -> None:
        if mach.current is None and mach.queue and mach.busy_until <= self.now:
            task = mach.queue.popleft()
            mach.current = task
            mach.busy_until = self.now + task.proc
            mach.busy_time += task.proc
            self.starts[task.tid] = self.now
            self.events.push(mach.busy_until, EventKind.COMPLETE, (mach.index, task))

    def _handle_complete(self, machine_index: int, task: Task) -> None:
        mach = self.machines[machine_index]
        mach.current = None
        mach.tasks_done += 1
        self.completions[task.tid] = self.now
        self._try_start(mach)

    # -- run ------------------------------------------------------------------
    def run(self, until: float | None = None) -> SimulationResult:
        """Drain the event queue (or stop the clock at ``until``)."""
        while self.events:
            nxt = self.events.peek_time()
            if until is not None and nxt is not None and nxt > until:
                break
            ev = self.events.pop()
            self.now = ev.time
            if ev.kind is EventKind.RELEASE:
                self._handle_release(ev.payload)
            elif ev.kind is EventKind.COMPLETE:
                self._handle_complete(*ev.payload)
            elif ev.kind is EventKind.OBSERVE:
                ev.payload(self)
            else:  # pragma: no cover - START events are implicit
                raise RuntimeError(f"unexpected event kind {ev.kind}")
        return self.result()

    def result(self) -> SimulationResult:
        """Summarise what has completed so far."""
        placements = {
            tid: (self.assigned_machine[tid], self.starts[tid])
            for tid in self.starts
        }
        done_tasks = tuple(t for t in self._tasks if t.tid in self.starts)
        inst = Instance(m=self.m, tasks=done_tasks)
        sched = Schedule(inst, placements)
        flows = [sched.flow_of(t.tid) for t in done_tasks]
        makespan = max(self.completions.values(), default=0.0)
        total_busy = sum(m.busy_time for m in self.machines.values())
        util = total_busy / (self.m * makespan) if makespan > 0 else 0.0
        return SimulationResult(
            schedule=sched,
            max_flow=max(flows, default=0.0),
            mean_flow=(sum(flows) / len(flows)) if flows else 0.0,
            makespan=makespan,
            n_completed=len(self.completions),
            utilization=util,
            n_pending=len(self._tasks) - len(self.starts),
        )

    # -- state inspection -----------------------------------------------------
    def waiting_profile(self) -> list[float]:
        """Current :math:`w_t(j)` for every machine, 1-based order."""
        return [self.machines[j].waiting_work(self.now) for j in range(1, self.m + 1)]

    def uncompleted_on(self, machines: Sequence[int]) -> int:
        """Number of released-but-uncompleted tasks assigned to
        ``machines`` (the :math:`|G_{0,k}|` statistic of Theorem 5)."""
        wanted = set(machines)
        count = 0
        for t in self._tasks:
            if t.tid in self.completions:
                continue
            if self.assigned_machine[t.tid] in wanted:
                count += 1
        return count
