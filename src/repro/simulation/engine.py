"""Discrete-event simulator for online dispatch scheduling.

The engine models ``m`` machines, each with a local FIFO run queue, and
an immediate-dispatch scheduler deciding the target machine the moment
a task is released (the push model of Section 3).  It exists alongside
the analytic driver of :mod:`repro.core.dispatch` for three reasons:

1. it observes the system *in time* (queue lengths, waiting work,
   utilisation) for the Section 7 experiments;
2. it hosts adaptive adversaries: an ``OBSERVE`` callback may inspect
   the state and inject new tasks at the current instant;
3. it validates the analytic driver — for any instance and tie-break,
   the event-driven execution must reproduce the analytic schedule
   exactly (an integration test).

The engine is deliberately single-threaded and deterministic; all the
randomness lives in the workload generators.  An optional ``obs=``
recorder (e.g. :class:`repro.obs.SimRecorder`) is driven at the three
lifecycle points — release, start, complete — on top of the generic
OBSERVE callbacks of :meth:`Simulator.at`.

Truncation semantics (``run(until=...)``): every event at time
``<= until`` is processed, the clock is then advanced to ``until``,
and the result accounts for the cut honestly — busy time is credited
only for work actually performed by ``until`` (completed tasks in
full, the running task pro-rated from its start), so utilisation never
exceeds 1; released-but-unstarted tasks contribute their current age
``now - r_i`` (a lower bound on their eventual flow) to ``max_flow``
and ``mean_flow`` and are flagged by ``n_pending``.

Fault injection (``faults=``): a :class:`repro.faults.FaultSchedule`
adds MACHINE_DOWN/MACHINE_UP events.  While a machine is down it
starts nothing; releases dispatch over :math:`\\mathcal{M}_i \\cap
\\text{alive}` and a task whose alive set is empty is *parked* until a
machine of its set recovers (parked tasks re-dispatch at the recovery
instant, in park order).  The in-flight task of a failing machine
follows ``fault_policy``: ``"restart"`` loses its progress and is
re-dispatched (the partial work is credited to the failed machine as
busy time and surfaced as ``wasted_work``), ``"resume"`` stays bound
to the machine and continues with its residual at recovery.  Queued
tasks are re-dispatched under either policy.  Utilisation divides by
*alive* machine-seconds (downtime is removed from the denominator), so
``utilization <= 1`` still holds on degraded runs.  An empty fault
schedule reproduces the fault-free run bit-for-bit (the zero-fault
identity guarded by ``tests/faults``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.eft import EFT
from ..core.schedule import Schedule
from ..core.task import Instance, Task
from ..core.tiebreak import MaxIndex, MinIndex
from ..core.vecengine import VecSchedule, VecUnsupported, eft_decide, lower_eligibility
from ..faults.policies import RESTART, RESUME, validate_policy
from .events import EventKind, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import FaultSchedule
    from ..obs.sim import SimObserver

__all__ = [
    "BACKENDS",
    "MachineState",
    "SimulationResult",
    "Simulator",
    "UnknownBackendError",
]

#: Valid ``Simulator(backend=...)`` names.
BACKENDS = ("auto", "array", "reference")


class UnknownBackendError(ValueError):
    """Raised for a ``backend=`` name outside :data:`BACKENDS`."""


@dataclass(slots=True)
class MachineState:
    """Run-time state of one machine."""

    index: int
    busy_until: float = 0.0
    current: Task | None = None
    #: FIFO run queue; deque so starts pop the head in O(1).
    queue: deque[Task] = field(default_factory=deque)
    #: work performed on *completed* tasks; the running task is
    #: pro-rated separately so truncated runs never over-credit.
    busy_time: float = 0.0
    tasks_done: int = 0
    #: fault state: down machines start nothing and accumulate downtime.
    alive: bool = True
    down_since: float = 0.0
    downtime: float = 0.0
    #: engine time the current stint began (equals the task's recorded
    #: start except for a resumed stint after an outage).
    stint_start: float = 0.0
    #: bumped on failure so COMPLETE events scheduled before the
    #: failure are recognised as stale and dropped.
    epoch: int = 0
    #: the interrupted in-flight task under the "resume" policy, with
    #: its remaining processing time.
    paused: Task | None = None
    paused_residual: float = 0.0
    #: a PREEMPT re-evaluation is already queued for this instant —
    #: several same-instant releases coalesce to one deterministic
    #: check after the whole batch dispatched.
    preempt_pending: bool = False

    def waiting_work(self, now: float) -> float:
        """Remaining work at ``now``: residual of the running task plus
        everything queued (the :math:`w_t(j)` of Theorem 8); a paused
        task's residual counts — the work still has to happen here."""
        residual = max(0.0, self.busy_until - now) if self.current is not None else 0.0
        if self.paused is not None:
            residual += self.paused_residual
        return residual + sum(t.proc for t in self.queue)


@dataclass(slots=True)
class SimulationResult:
    """Outcome of a simulation run.

    On a truncated run (``n_pending > 0`` or tasks still in flight)
    ``max_flow`` / ``mean_flow`` are *lower bounds*: started tasks
    contribute their exact flow (their completion is determined — no
    preemption), pending tasks contribute their age ``now - r_i``.
    """

    schedule: Schedule
    max_flow: float
    mean_flow: float
    makespan: float
    n_completed: int
    utilization: float
    #: tasks released but never started — non-zero when ``run(until=...)``
    #: truncated the simulation, so partial results are visible.
    n_pending: int = 0
    #: fault accounting (all zero on fault-free runs): re-dispatches
    #: caused by failures, tasks parked at the end (alive set empty),
    #: in-flight tasks resumed after recovery, machine-seconds lost to
    #: downtime within the horizon, and work lost to restarts.
    n_requeued: int = 0
    n_parked: int = 0
    n_resumed: int = 0
    total_downtime: float = 0.0
    wasted_work: float = 0.0
    #: preemptions performed (always zero for non-preemptive policies —
    #: a zoo-wide invariant guarded by ``tests/schedulers``).  On a
    #: preemptive run ``schedule`` records first starts; flows come
    #: from the engine's actual completion times, and the schedule's
    #: machine-exclusivity invariant does not apply.
    n_preempted: int = 0


class Simulator:
    """Event-driven execution of an immediate-dispatch scheduler.

    Parameters
    ----------
    scheduler:
        The dispatch policy (e.g. :class:`repro.core.eft.EFT`).  The
        simulator calls ``scheduler.submit`` at each release so the
        scheduler's own bookkeeping stays authoritative; the engine
        then enacts the decision with explicit START/COMPLETE events.
    obs:
        Optional :class:`repro.obs.SimObserver` (duck-typed) whose
        ``on_release`` / ``on_start`` / ``on_complete`` hooks fire at
        the matching lifecycle points; the optional fault hooks
        (``on_machine_down`` / ``on_machine_up`` / ``on_requeue`` /
        ``on_park`` / ``on_unpark`` / ``on_resume``) fire when a fault
        schedule is active.
    faults:
        Optional :class:`repro.faults.FaultSchedule` of machine
        DOWN/UP windows; ``None`` (and the empty schedule) means no
        machine ever fails.
    fault_policy:
        What happens to the in-flight task of a failing machine:
        ``"restart"`` (re-dispatch from scratch, default) or
        ``"resume"`` (continue with the residual at recovery).
    backend:
        Execution engine: ``"reference"`` always runs the event loop;
        ``"array"`` and ``"auto"`` (the default — existing call sites
        pick up the fast path with no changes) fast-forward eligible
        runs through :mod:`repro.core.vecengine` and *silently* fall
        back to the reference loop otherwise, recording why in
        :attr:`fallback_reason`.  A run is eligible when it is fresh
        (nothing dispatched yet), the scheduler is plain :class:`EFT`
        with a deterministic Min/Max tie-break, no observer is
        attached, the fault schedule is absent or empty, and only
        RELEASE events are pending.  Results are bit-identical either
        way — byte-identity over the golden fixtures is enforced by
        ``tests/simulation/test_vec_backend.py`` and ``make vec-smoke``.
        :attr:`backend_used` reports what the last :meth:`run` did.
    """

    def __init__(
        self,
        scheduler: ImmediateDispatchScheduler,
        obs: "SimObserver | None" = None,
        faults: "FaultSchedule | None" = None,
        fault_policy: str = RESTART,
        backend: str = "auto",
    ) -> None:
        if backend not in BACKENDS:
            raise UnknownBackendError(
                f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
            )
        self.backend = backend
        #: what the most recent :meth:`run` executed on ("array" or
        #: "reference"); ``None`` before the first run.
        self.backend_used: str | None = None
        #: why the most recent array-eligible :meth:`run` fell back to
        #: the reference loop (``None`` when the array path ran or the
        #: backend is "reference").
        self.fallback_reason: str | None = None
        self.scheduler = scheduler
        self.obs = obs
        self.m = scheduler.m
        self.machines = {j: MachineState(index=j) for j in range(1, self.m + 1)}
        self.events = EventQueue()
        self.now = 0.0
        self._completions: dict[int, float] = {}
        self._starts: dict[int, float] = {}
        self._assigned_machine: dict[int, int] = {}
        #: columnar dispatch books awaiting materialisation — set by the
        #: array fast-forward, which keeps everything as flat arrays and
        #: only builds the per-task dicts if something reads them.
        self._lazy_books: tuple | None = None
        self._tasks: list[Task] = []
        self._observers: list[Callable[["Simulator"], None]] = []
        self.fault_policy = validate_policy(fault_policy)
        self.faults = faults
        self._alive: set[int] = set(range(1, self.m + 1))
        #: the one Instance fed to a virgin simulator, if that is the
        #: whole workload — lets the array backend reuse it for the
        #: result schedule instead of re-sorting a rebuilt copy.
        self._fed_instance: Instance | None = None
        #: parked tasks in park order (released or requeued while their
        #: whole processing set was down).
        self.parked: list[Task] = []
        self.n_requeued = 0
        self.n_resumed = 0
        self.n_preempted = 0
        self.wasted_work = 0.0
        #: work already credited to busy_time for paused (resume
        #: policy) and preempted tasks, deducted again at their final
        #: COMPLETE so each task's total credit is exactly its service.
        self._credited: dict[int, float] = {}
        #: remaining service of preempted tasks (tid -> residual).
        self._remaining: dict[int, float] = {}
        #: the scheduler's sparse realised-service books (empty for
        #: plain identical-machine policies, so the hot path reads
        #: ``task.proc`` directly and stays byte-identical).
        self._svc: dict[int, float] | None = getattr(scheduler, "_service", None)
        self._preemptive = bool(getattr(scheduler, "preemptive", False))
        if self._preemptive and not callable(getattr(scheduler, "preempt_key", None)):
            raise TypeError(
                f"{type(scheduler).__name__} declares preemptive=True but has no "
                "preempt_key(task, remaining, now) method"
            )
        if faults is not None:
            if faults.max_machine() > self.m:
                raise ValueError(
                    f"fault schedule references machine {faults.max_machine()}, "
                    f"but the simulator has m={self.m}"
                )
            for time_, kind, machine in faults.events():
                self.events.push(
                    time_,
                    EventKind.MACHINE_DOWN if kind == "down" else EventKind.MACHINE_UP,
                    machine,
                )

    # -- dispatch books -----------------------------------------------------
    # The reference loop fills these dicts task by task; the array
    # fast-forward computes the same contents as flat arrays and defers
    # the (surprisingly expensive) dict builds until first read.

    def _materialize_books(self) -> None:
        tids, mach_l, start_l, comp_a, started_idx, completed_idx = self._lazy_books
        self._lazy_books = None
        if started_idx is None:  # full drain: everyone started and completed
            self._starts = dict(zip(tids, start_l))
            self._completions = dict(zip(tids, comp_a.tolist()))
        else:
            st = started_idx.tolist()
            self._starts = dict(zip([tids[i] for i in st], [start_l[i] for i in st]))
            ct = completed_idx.tolist()
            self._completions = dict(
                zip([tids[i] for i in ct], comp_a[completed_idx].tolist())
            )
        self._assigned_machine = dict(zip(tids, mach_l))

    @property
    def starts(self) -> dict[int, float]:
        """Start time of every started task (tid -> sigma)."""
        if self._lazy_books is not None:
            self._materialize_books()
        return self._starts

    @property
    def completions(self) -> dict[int, float]:
        """Completion time of every completed task (tid -> C)."""
        if self._lazy_books is not None:
            self._materialize_books()
        return self._completions

    @property
    def assigned_machine(self) -> dict[int, int]:
        """Dispatch decision of every released task (tid -> machine)."""
        if self._lazy_books is not None:
            self._materialize_books()
        return self._assigned_machine

    # -- workload feeding ---------------------------------------------------
    def add_tasks(self, tasks: Iterable[Task]) -> None:
        """Schedule RELEASE events for ``tasks`` (any order; the queue
        sorts by time)."""
        self._fed_instance = None
        for t in tasks:
            self.events.push(t.release, EventKind.RELEASE, t)

    def add_instance(self, instance: Instance) -> None:
        """Feed a whole instance."""
        if instance.m != self.m:
            raise ValueError(f"instance has m={instance.m}, simulator has m={self.m}")
        virgin = not self._tasks and not self.events
        self.add_tasks(instance.tasks)
        if virgin:
            self._fed_instance = instance

    def at(self, time: float, callback: Callable[["Simulator"], None]) -> None:
        """Run ``callback(sim)`` when the clock reaches ``time``.

        The callback may inject tasks at the current instant (adaptive
        adversaries) or record observations (collectors).  The
        within-instant order is pinned (COMPLETE before RELEASE before
        OBSERVE), so a callback always sees the settled state of its
        instant: same-time completions have freed their machines and
        same-time releases have been dispatched.  Multiple callbacks at
        one instant fire in scheduling order.
        """
        self.events.push(time, EventKind.OBSERVE, callback)

    # -- event handlers ------------------------------------------------------
    def _obs_hook(self, name: str, *args) -> None:
        """Fire an *optional* observer hook (fault lifecycle points are
        additions to the :class:`SimObserver` protocol — observers that
        predate them keep working)."""
        if self.obs is not None:
            hook = getattr(self.obs, name, None)
            if hook is not None:
                hook(self, *args)

    def _handle_release(self, task: Task) -> None:
        eligible = task.eligible(self.m)
        alive_eligible = eligible & self._alive
        if not alive_eligible:
            # Whole processing set down: park until a machine recovers.
            self._tasks.append(task)
            if self.obs is not None:
                self.obs.on_release(self, task)
            self._park(task)
            return
        if alive_eligible != eligible:
            # Degraded dispatch: the scheduler decides over the alive
            # subset.  The original task (full set) stays authoritative
            # in the engine's books, so traces and schedules are
            # unchanged by who happened to be down.
            record = self.scheduler.submit(task.restricted_to(alive_eligible))
        else:
            record = self.scheduler.submit(task)
        mach = self.machines[record.machine]
        self.assigned_machine[task.tid] = record.machine
        self._tasks.append(task)
        mach.queue.append(task)
        if self.obs is not None:
            self.obs.on_release(self, task)
        self._try_start(mach)
        if (
            self._preemptive
            and mach.current is not None
            and mach.queue
            and not mach.preempt_pending
        ):
            # Re-evaluate after the whole same-instant release batch
            # (PREEMPT fires after every RELEASE of this instant).
            mach.preempt_pending = True
            self.events.push(self.now, EventKind.PREEMPT, mach.index)

    def _service_time(self, task: Task) -> float:
        """Realised service time of ``task`` (its scheduler-recorded
        execution time where that differs from ``proc``)."""
        svc = self._svc
        if svc:
            return svc.get(task.tid, task.proc)
        return task.proc

    def _pick_queued(self, mach: MachineState) -> Task:
        """Remove and return the queued task the policy runs next:
        FIFO head for non-preemptive policies, the minimum
        ``preempt_key`` for preemptive ones (deterministic — the key
        embeds the tid)."""
        if not self._preemptive:
            return mach.queue.popleft()
        key = self.scheduler.preempt_key
        best = min(
            range(len(mach.queue)),
            key=lambda i: key(
                mach.queue[i],
                self._remaining.get(
                    mach.queue[i].tid, self._service_time(mach.queue[i])
                ),
                self.now,
            ),
        )
        task = mach.queue[best]
        del mach.queue[best]
        return task

    def _try_start(self, mach: MachineState) -> None:
        if (
            mach.alive
            and mach.current is None
            and mach.paused is None
            and mach.queue
            and mach.busy_until <= self.now
        ):
            task = self._pick_queued(mach)
            residual = self._remaining.pop(task.tid, None)
            run_for = residual if residual is not None else self._service_time(task)
            mach.current = task
            mach.busy_until = self.now + run_for
            mach.stint_start = self.now
            first = task.tid not in self.starts
            if first:
                self.starts[task.tid] = self.now
            self.events.push(
                mach.busy_until, EventKind.COMPLETE, (mach.index, task, mach.epoch)
            )
            if self.obs is not None:
                if first:
                    self.obs.on_start(self, task, mach.index)
                else:
                    self._obs_hook("on_preempt_resume", task, mach.index)

    def _handle_complete(self, machine_index: int, task: Task, epoch: int = 0) -> None:
        mach = self.machines[machine_index]
        if epoch != mach.epoch:
            return  # stale: the machine failed (or preempted) after this was scheduled
        mach.current = None
        mach.tasks_done += 1
        # Busy time is credited at completion (not at start), so a
        # truncated run only counts work actually performed.  Work
        # already credited at an interruption (resume policy or a
        # preemption) is deducted so the task's total credit is exactly
        # its service time.
        mach.busy_time += self._service_time(task) - self._credited.pop(task.tid, 0.0)
        self.completions[task.tid] = self.now
        if self.obs is not None:
            self.obs.on_complete(self, task, machine_index)
        self._try_start(mach)

    # -- preemption handlers -------------------------------------------------
    def _handle_preempt(self, machine: int) -> None:
        """Deterministic preemption check: if some queued task beats
        the running one under the policy's ``preempt_key``, park the
        running task's residual back on the queue and re-fill the
        machine (via a RESUME event at this instant, in the pinned
        order).  Idempotent — a stale check on a machine whose state
        already settled does nothing."""
        mach = self.machines[machine]
        mach.preempt_pending = False
        if not mach.alive or mach.current is None or not mach.queue:
            return
        cur = mach.current
        cur_rem = mach.busy_until - self.now
        key = self.scheduler.preempt_key
        best_key = min(
            key(t, self._remaining.get(t.tid, self._service_time(t)), self.now)
            for t in mach.queue
        )
        if best_key >= key(cur, cur_rem, self.now):
            return
        work_done = self.now - mach.stint_start
        mach.busy_time += work_done
        self._credited[cur.tid] = self._credited.get(cur.tid, 0.0) + work_done
        self._remaining[cur.tid] = cur_rem
        mach.current = None
        mach.busy_until = self.now
        mach.epoch += 1  # the stint's pending COMPLETE becomes stale
        mach.queue.append(cur)
        self.n_preempted += 1
        self._obs_hook("on_preempt", cur, machine)
        self.events.push(self.now, EventKind.RESUME, machine)

    def _handle_resume(self, machine: int) -> None:
        self._try_start(self.machines[machine])

    # -- fault handlers ------------------------------------------------------
    def _engine_choose(self, candidates: Iterable[int]) -> int:
        """EFT over the engine's authoritative state: the alive
        candidate with the least remaining work wins, smallest index on
        ties.  Used for failure-time re-dispatch, which must not go
        through the scheduler (its release-order contract only covers
        fresh releases)."""
        return min(
            sorted(candidates),
            key=lambda j: self.machines[j].waiting_work(self.now),
        )

    def _park(self, task: Task) -> None:
        self.parked.append(task)
        self._obs_hook("on_park", task)

    def _redispatch(self, task: Task) -> None:
        """Place ``task`` after a failure: onto the best alive machine
        of its set, or the parking lot if the whole set is down."""
        candidates = task.eligible(self.m) & self._alive
        if not candidates:
            self.assigned_machine.pop(task.tid, None)
            self._park(task)
            return
        machine = self._engine_choose(candidates)
        self.assigned_machine[task.tid] = machine
        self.n_requeued += 1
        mach = self.machines[machine]
        mach.queue.append(task)
        self._obs_hook("on_requeue", task, machine)
        self._try_start(mach)

    def _handle_machine_down(self, machine: int) -> None:
        mach = self.machines[machine]
        if not mach.alive:  # pragma: no cover - schedules are normalised
            return
        mach.alive = False
        mach.down_since = self.now
        mach.epoch += 1  # pending COMPLETE events become stale
        self._alive.discard(machine)
        self._obs_hook("on_machine_down", machine)
        displaced: list[Task] = []
        if mach.current is not None:
            task = mach.current
            work_done = self.now - mach.stint_start
            residual = mach.busy_until - self.now
            mach.busy_time += work_done  # the machine *was* occupied
            mach.current = None
            if self.fault_policy == RESUME:
                mach.paused = task
                mach.paused_residual = residual
                self._credited[task.tid] = self._credited.get(task.tid, 0.0) + work_done
            else:  # restart-elsewhere: progress is lost (including any
                # earlier preempted stints credited on this machine)
                self.wasted_work += work_done + self._credited.pop(task.tid, 0.0)
                self._remaining.pop(task.tid, None)
                self.starts.pop(task.tid, None)
                displaced.append(task)
        mach.busy_until = self.now
        displaced.extend(mach.queue)
        mach.queue.clear()
        for task in displaced:
            if task.tid in self._remaining:
                # A preempted task's partial progress lives on this
                # machine; losing the machine loses the progress under
                # either policy (the residual cannot migrate).
                del self._remaining[task.tid]
                self.wasted_work += self._credited.pop(task.tid, 0.0)
                self.starts.pop(task.tid, None)
            self._redispatch(task)

    def _handle_machine_up(self, machine: int) -> None:
        mach = self.machines[machine]
        if mach.alive:  # pragma: no cover - schedules are normalised
            return
        mach.alive = True
        mach.downtime += self.now - mach.down_since
        self._alive.add(machine)
        self._obs_hook("on_machine_up", machine)
        if mach.paused is not None:
            task, residual = mach.paused, mach.paused_residual
            mach.paused = None
            mach.paused_residual = 0.0
            mach.current = task
            mach.stint_start = self.now
            mach.busy_until = self.now + residual
            self.n_resumed += 1
            self.events.push(
                mach.busy_until, EventKind.COMPLETE, (machine, task, mach.epoch)
            )
            self._obs_hook("on_resume", task, machine)
        # Recovery may revive parked tasks (their alive set was empty);
        # re-dispatch in park order at this very instant.
        if self.parked:
            still_parked: list[Task] = []
            for task in self.parked:
                candidates = task.eligible(self.m) & self._alive
                if not candidates:
                    still_parked.append(task)
                    continue
                target = self._engine_choose(candidates)
                self.assigned_machine[task.tid] = target
                tgt = self.machines[target]
                tgt.queue.append(task)
                self._obs_hook("on_unpark", task, target)
                self._try_start(tgt)
            self.parked = still_parked
        self._try_start(mach)

    # -- run ------------------------------------------------------------------
    def run(self, until: float | None = None) -> SimulationResult:
        """Drain the event queue (or stop the clock at ``until``).

        With ``until``, every event at time ``<= until`` is processed
        and the clock then advances to ``until`` even if the last event
        fired earlier, so :meth:`waiting_profile`, :meth:`uncompleted_on`
        and :meth:`result` reflect the state *at the cutoff*, not at
        the last event.  Calling :meth:`run` again resumes seamlessly.

        Under ``backend="auto"``/``"array"`` an eligible run is
        fast-forwarded through the vectorized engine (bit-identical
        result, full state sync — resuming, inspection and observers
        added later all keep working); everything else takes the
        reference event loop, with :attr:`fallback_reason` recording
        why.
        """
        if self.backend != "reference":
            self.fallback_reason = None
            result = self._try_run_array(until)
            if result is not None:
                self.backend_used = "array"
                return result
        self.backend_used = "reference"
        return self._run_reference(until)

    def _run_reference(self, until: float | None) -> SimulationResult:
        """The event loop (see :meth:`run` for semantics)."""
        while self.events:
            nxt = self.events.peek_time()
            if until is not None and nxt is not None and nxt > until:
                break
            ev = self.events.pop()
            self.now = ev.time
            if ev.kind is EventKind.RELEASE:
                self._handle_release(ev.payload)
            elif ev.kind is EventKind.COMPLETE:
                self._handle_complete(*ev.payload)
            elif ev.kind is EventKind.OBSERVE:
                ev.payload(self)
            elif ev.kind is EventKind.MACHINE_DOWN:
                self._handle_machine_down(ev.payload)
            elif ev.kind is EventKind.MACHINE_UP:
                self._handle_machine_up(ev.payload)
            elif ev.kind is EventKind.PREEMPT:
                self._handle_preempt(ev.payload)
            elif ev.kind is EventKind.RESUME:
                self._handle_resume(ev.payload)
            else:  # pragma: no cover - START events are implicit
                raise RuntimeError(f"unexpected event kind {ev.kind}")
        if until is not None and self.now < until:
            self.now = until
        return self.result()

    # -- array fast path ------------------------------------------------------
    def _array_fallback_reason(self, until: float | None) -> str | None:
        """Why this run can't take the array fast path (``None`` = it can)."""
        s = self.scheduler
        if type(s) is not EFT:
            # Registry policies (SRPT-PS, NC-Setup, Speed-EFT, the
            # baselines, even EFT subclasses) take the reference loop;
            # the pinned literal reason lets callers branch on it.
            return "scheduler"
        if type(s.tiebreak) not in (MinIndex, MaxIndex):
            name = getattr(s.tiebreak, "name", "custom")
            return f"tie-break {name!r} needs per-decision work"
        if self.obs is not None:
            return "observer hooks need per-event work"
        if self.faults is not None and bool(self.faults):
            return "fault schedule needs per-event work"
        if self.now != 0.0 or self._tasks or self.starts or self.parked:
            return "simulation already started"
        if s._tasks or s._placements or any(v != 0.0 for v in s.completions.values()):
            return "scheduler already has dispatches"
        if not self.events:
            return "no pending work"
        kinds = self.events.pending_kinds()
        if kinds != {EventKind.RELEASE}:
            extra = sorted(k.name for k in kinds - {EventKind.RELEASE})
            return f"non-release events pending ({', '.join(extra)})"
        return None

    def _try_run_array(self, until: float | None) -> SimulationResult | None:
        """Fast-forward an eligible run on the vectorized engine.

        Computes every dispatch decision for the releases due by
        ``until`` in one :func:`repro.core.vecengine.eft_decide` pass
        (identical arithmetic to the reference loop), then syncs the
        complete simulator and scheduler state — machine states, run
        queues, event queue (future releases and in-flight COMPLETEs
        re-pushed), dispatch books — so a later :meth:`run`,
        :meth:`result`, :meth:`waiting_profile` or adversary pick up
        exactly where the reference loop would have been.  Returns
        ``None`` (and records :attr:`fallback_reason`) when the run is
        not expressible; nothing is mutated in that case.

        The one sync divergence: ``scheduler.history`` stays empty —
        per-decision DispatchRecords are the object cost this path
        exists to avoid (``n_dispatched`` and the placement books stay
        exact).
        """
        reason = self._array_fallback_reason(until)
        if reason is None and until is not None and self.events.peek_time() > until:
            reason = "no releases before the cutoff"
        if reason is not None:
            self.fallback_reason = reason
            return None
        # Pending RELEASEs in firing order: (time, seq) — the exact
        # order the reference loop submits them.  This is also how
        # out-of-release-order add_tasks feeds are handled identically
        # to the reference engine (the queue sorts, the decisions see
        # a release-ordered stream).
        events = self.events.pending()
        if until is None:
            prefix = events
        else:
            prefix = [ev for ev in events if ev.time <= until]
        released = [ev.payload for ev in prefix]
        try:
            elig = lower_eligibility(self.m, released)
        except VecUnsupported as exc:
            self.fallback_reason = str(exc)
            return None
        n = len(released)
        m = self.m
        rel = [t.release for t in released]
        proc = [t.proc for t in released]
        prefer_max = type(self.scheduler.tiebreak) is MaxIndex
        mach_l, start_l, comp_after = eft_decide(m, rel, proc, elig, prefer_max)
        rel_a = np.asarray(rel)
        proc_a = np.asarray(proc)
        mach_a = np.asarray(mach_l, dtype=np.int64)
        start_a = np.asarray(start_l)
        comp_a = start_a + proc_a
        tids = [t.tid for t in released]

        # Clock: full drain ends at the last COMPLETE; a truncated run
        # advances to the cutoff (prefix non-empty => until >= 0).
        if until is None:
            now = float(comp_a.max())
            started = completed = np.ones(n, dtype=bool)
        else:
            now = float(until)
            started = start_a <= now
            completed = comp_a <= now
        self.now = now

        # -- dispatch books (simulator + scheduler) -----------------------
        # Columnar sync: the dict views are deferred (see
        # :meth:`_materialize_books`) — a result-only run never builds
        # them, which is most of the per-task Python cost at scale.
        started_idx = np.nonzero(started)[0]
        completed_idx = np.nonzero(completed)[0]
        n_started = n if until is None else len(started_idx)
        n_completed = n if until is None else len(completed_idx)
        self._lazy_books = (
            tids,
            mach_l,
            start_l,
            comp_a,
            None if until is None else started_idx,
            None if until is None else completed_idx,
        )
        self._tasks = list(released)
        s = self.scheduler
        s.completions = {j: comp_after[j] for j in range(1, m + 1)}
        counts = np.bincount(mach_a, minlength=m + 1)
        s.task_counts = {j: int(counts[j]) for j in range(1, m + 1)}
        s._placements_dict = {}
        s._placements_lazy = (tids, mach_l, start_l)
        s._tasks = list(released)
        s._last_release = rel[-1] if n else 0.0

        # -- machine states ------------------------------------------------
        busy_until = np.zeros(m + 1)
        stint = np.zeros(m + 1)
        np.maximum.at(busy_until, mach_a[started_idx], comp_a[started_idx])
        np.maximum.at(stint, mach_a[started_idx], start_a[started_idx])
        busy = np.bincount(
            mach_a[completed_idx], weights=proc_a[completed_idx], minlength=m + 1
        )
        done_counts = np.bincount(mach_a[completed_idx], minlength=m + 1)
        for j in range(1, m + 1):
            ms = self.machines[j]
            ms.busy_until = float(busy_until[j])
            ms.stint_start = float(stint[j])
            ms.busy_time = float(busy[j])
            ms.tasks_done = int(done_counts[j])

        # -- event queue: future releases (FIFO preserved), in-flight
        # completions, and the run queues of busy machines ----------------
        self.events.clear()
        for ev in events[len(prefix):]:
            self.events.push(ev.time, EventKind.RELEASE, ev.payload)
        if until is not None:
            for i in np.nonzero(started & ~completed)[0].tolist():
                j = mach_l[i]
                ms = self.machines[j]
                ms.current = released[i]
                self.events.push(
                    float(comp_a[i]), EventKind.COMPLETE, (j, released[i], ms.epoch)
                )
            for i in np.nonzero(~started)[0].tolist():
                self.machines[mach_l[i]].queue.append(released[i])

        # -- result, derived in batch (reference summation order) ---------
        if until is None:
            flows = (comp_a - rel_a).tolist()
            pending_ages: list[float] = []
            sched_mach, sched_start = mach_a, start_a
            sched_tids = np.asarray(tids, dtype=np.int64)
            started_tasks = released
            makespan = float(comp_a.max()) if n else 0.0
        else:
            flows = (comp_a[started_idx] - rel_a[started_idx]).tolist()
            pending_ages = (now - rel_a[~started]).tolist()
            sched_mach = mach_a[started_idx]
            sched_start = start_a[started_idx]
            sched_tids = np.asarray(tids, dtype=np.int64)[started_idx]
            started_tasks = [released[i] for i in started_idx.tolist()]
            makespan = float(comp_a[completed_idx].max()) if n_completed else 0.0
        if (
            self._fed_instance is not None
            and len(started_tasks) == self._fed_instance.n
        ):
            inst = self._fed_instance
        else:
            inst = Instance(m=m, tasks=tuple(started_tasks))
        sched = VecSchedule(inst, sched_mach, sched_start, sched_tids)
        all_flows = flows + pending_ages
        completed_busy = sum(ms.busy_time for ms in self.machines.values())
        in_flight_busy = sum(
            self.now - ms.stint_start
            for ms in self.machines.values()
            if ms.current is not None
        )
        total_busy = completed_busy + in_flight_busy
        all_done = n_completed == n and not self.events.has_work()
        horizon = makespan if all_done else max(self.now, makespan)
        capacity = m * horizon
        util = total_busy / capacity if capacity > 0 else 0.0
        return SimulationResult(
            schedule=sched,
            max_flow=max(all_flows, default=0.0),
            mean_flow=(sum(all_flows) / len(all_flows)) if all_flows else 0.0,
            makespan=makespan,
            n_completed=n_completed,
            utilization=util,
            n_pending=n - n_started,
        )

    def result(self) -> SimulationResult:
        """Summarise the run so far (exact on a drained queue, honest
        lower bounds at a truncation instant — see the module notes)."""
        placements = {
            tid: (self.assigned_machine[tid], self.starts[tid])
            for tid in self.starts
        }
        started_tasks = tuple(t for t in self._tasks if t.tid in self.starts)
        svc = self._svc
        if svc:
            # Service-aware policies: the schedule carries realised
            # execution times, mirroring the analytic driver's derived
            # instance (standard metrics and validation apply).
            started_tasks = tuple(
                replace(t, proc=svc[t.tid]) if t.tid in svc else t
                for t in started_tasks
            )
        inst = Instance(m=self.m, tasks=started_tasks)
        sched = Schedule(inst, placements)
        fault_active = self.faults is not None and bool(self.faults)
        if fault_active or self._preemptive:
            # Under faults (or preemption) a start no longer determines
            # the completion (the machine may fail, or the task may be
            # interrupted): completed tasks use their actual engine
            # completion times, everything still open — queued,
            # in-flight, paused, parked — contributes its age as a
            # lower bound.
            all_flows = [
                self.completions[t.tid] - t.release
                if t.tid in self.completions
                else self.now - t.release
                for t in self._tasks
            ]
        else:
            # Started tasks have determined completions (no preemption);
            # pending tasks contribute their age as a flow lower bound.
            flows = [sched.flow_of(t.tid) for t in started_tasks]
            pending_ages = [self.now - t.release for t in self._tasks if t.tid not in self.starts]
            all_flows = flows + pending_ages
        makespan = max(self.completions.values(), default=0.0)
        completed_busy = sum(m.busy_time for m in self.machines.values())
        in_flight_busy = sum(
            self.now - m.stint_start
            for m in self.machines.values()
            if m.current is not None
        )
        total_busy = completed_busy + in_flight_busy
        # "Done" means no work remains anywhere: every released task
        # completed *and* no RELEASE/COMPLETE event is still queued
        # (a truncated run may leave future releases pending).
        all_done = (
            len(self.completions) == len(self._tasks) and not self.events.has_work()
        )
        # Over [0, horizon] each machine's credited segments are
        # disjoint and lie within its alive time, so utilisation is
        # <= 1 by construction once downtime leaves the denominator.
        horizon = makespan if all_done else max(self.now, makespan)
        downtime = self.faults.total_downtime(horizon) if fault_active else 0.0
        capacity = self.m * horizon - downtime
        util = total_busy / capacity if capacity > 0 else 0.0
        return SimulationResult(
            schedule=sched,
            max_flow=max(all_flows, default=0.0),
            mean_flow=(sum(all_flows) / len(all_flows)) if all_flows else 0.0,
            makespan=makespan,
            n_completed=len(self.completions),
            utilization=util,
            n_pending=len(self._tasks) - len(self.starts),
            n_requeued=self.n_requeued,
            n_parked=len(self.parked),
            n_resumed=self.n_resumed,
            total_downtime=downtime,
            wasted_work=self.wasted_work,
            n_preempted=self.n_preempted,
        )

    # -- state inspection -----------------------------------------------------
    def waiting_profile(self) -> list[float]:
        """Current :math:`w_t(j)` for every machine, 1-based order."""
        return [self.machines[j].waiting_work(self.now) for j in range(1, self.m + 1)]

    def uncompleted_on(self, machines: Sequence[int]) -> int:
        """Number of released-but-uncompleted tasks assigned to
        ``machines`` (the :math:`|G_{0,k}|` statistic of Theorem 5)."""
        wanted = set(machines)
        count = 0
        for t in self._tasks:
            if t.tid in self.completions:
                continue
            # Parked tasks have no assignment (``get`` misses them).
            if self.assigned_machine.get(t.tid) in wanted:
                count += 1
        return count
