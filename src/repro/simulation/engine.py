"""Discrete-event simulator for online dispatch scheduling.

The engine models ``m`` machines, each with a local FIFO run queue, and
an immediate-dispatch scheduler deciding the target machine the moment
a task is released (the push model of Section 3).  It exists alongside
the analytic driver of :mod:`repro.core.dispatch` for three reasons:

1. it observes the system *in time* (queue lengths, waiting work,
   utilisation) for the Section 7 experiments;
2. it hosts adaptive adversaries: an ``OBSERVE`` callback may inspect
   the state and inject new tasks at the current instant;
3. it validates the analytic driver — for any instance and tie-break,
   the event-driven execution must reproduce the analytic schedule
   exactly (an integration test).

The engine is deliberately single-threaded and deterministic; all the
randomness lives in the workload generators.  An optional ``obs=``
recorder (e.g. :class:`repro.obs.SimRecorder`) is driven at the three
lifecycle points — release, start, complete — on top of the generic
OBSERVE callbacks of :meth:`Simulator.at`.

Truncation semantics (``run(until=...)``): every event at time
``<= until`` is processed, the clock is then advanced to ``until``,
and the result accounts for the cut honestly — busy time is credited
only for work actually performed by ``until`` (completed tasks in
full, the running task pro-rated from its start), so utilisation never
exceeds 1; released-but-unstarted tasks contribute their current age
``now - r_i`` (a lower bound on their eventual flow) to ``max_flow``
and ``mean_flow`` and are flagged by ``n_pending``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.schedule import Schedule
from ..core.task import Instance, Task
from .events import EventKind, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.sim import SimObserver

__all__ = ["MachineState", "SimulationResult", "Simulator"]


@dataclass(slots=True)
class MachineState:
    """Run-time state of one machine."""

    index: int
    busy_until: float = 0.0
    current: Task | None = None
    #: FIFO run queue; deque so starts pop the head in O(1).
    queue: deque[Task] = field(default_factory=deque)
    #: work performed on *completed* tasks; the running task is
    #: pro-rated separately so truncated runs never over-credit.
    busy_time: float = 0.0
    tasks_done: int = 0

    def waiting_work(self, now: float) -> float:
        """Remaining work at ``now``: residual of the running task plus
        everything queued (the :math:`w_t(j)` of Theorem 8)."""
        residual = max(0.0, self.busy_until - now) if self.current is not None else 0.0
        return residual + sum(t.proc for t in self.queue)


@dataclass(slots=True)
class SimulationResult:
    """Outcome of a simulation run.

    On a truncated run (``n_pending > 0`` or tasks still in flight)
    ``max_flow`` / ``mean_flow`` are *lower bounds*: started tasks
    contribute their exact flow (their completion is determined — no
    preemption), pending tasks contribute their age ``now - r_i``.
    """

    schedule: Schedule
    max_flow: float
    mean_flow: float
    makespan: float
    n_completed: int
    utilization: float
    #: tasks released but never started — non-zero when ``run(until=...)``
    #: truncated the simulation, so partial results are visible.
    n_pending: int = 0


class Simulator:
    """Event-driven execution of an immediate-dispatch scheduler.

    Parameters
    ----------
    scheduler:
        The dispatch policy (e.g. :class:`repro.core.eft.EFT`).  The
        simulator calls ``scheduler.submit`` at each release so the
        scheduler's own bookkeeping stays authoritative; the engine
        then enacts the decision with explicit START/COMPLETE events.
    obs:
        Optional :class:`repro.obs.SimObserver` (duck-typed) whose
        ``on_release`` / ``on_start`` / ``on_complete`` hooks fire at
        the matching lifecycle points.
    """

    def __init__(
        self, scheduler: ImmediateDispatchScheduler, obs: "SimObserver | None" = None
    ) -> None:
        self.scheduler = scheduler
        self.obs = obs
        self.m = scheduler.m
        self.machines = {j: MachineState(index=j) for j in range(1, self.m + 1)}
        self.events = EventQueue()
        self.now = 0.0
        self.completions: dict[int, float] = {}
        self.starts: dict[int, float] = {}
        self.assigned_machine: dict[int, int] = {}
        self._tasks: list[Task] = []
        self._observers: list[Callable[["Simulator"], None]] = []

    # -- workload feeding ---------------------------------------------------
    def add_tasks(self, tasks: Iterable[Task]) -> None:
        """Schedule RELEASE events for ``tasks`` (any order; the queue
        sorts by time)."""
        for t in tasks:
            self.events.push(t.release, EventKind.RELEASE, t)

    def add_instance(self, instance: Instance) -> None:
        """Feed a whole instance."""
        if instance.m != self.m:
            raise ValueError(f"instance has m={instance.m}, simulator has m={self.m}")
        self.add_tasks(instance.tasks)

    def at(self, time: float, callback: Callable[["Simulator"], None]) -> None:
        """Run ``callback(sim)`` when the clock reaches ``time``.

        The callback may inject tasks at the current instant (adaptive
        adversaries) or record observations (collectors).  The
        within-instant order is pinned (COMPLETE before RELEASE before
        OBSERVE), so a callback always sees the settled state of its
        instant: same-time completions have freed their machines and
        same-time releases have been dispatched.  Multiple callbacks at
        one instant fire in scheduling order.
        """
        self.events.push(time, EventKind.OBSERVE, callback)

    # -- event handlers ------------------------------------------------------
    def _handle_release(self, task: Task) -> None:
        record = self.scheduler.submit(task)
        mach = self.machines[record.machine]
        self.assigned_machine[task.tid] = record.machine
        self._tasks.append(task)
        mach.queue.append(task)
        if self.obs is not None:
            self.obs.on_release(self, task)
        self._try_start(mach)

    def _try_start(self, mach: MachineState) -> None:
        if mach.current is None and mach.queue and mach.busy_until <= self.now:
            task = mach.queue.popleft()
            mach.current = task
            mach.busy_until = self.now + task.proc
            self.starts[task.tid] = self.now
            self.events.push(mach.busy_until, EventKind.COMPLETE, (mach.index, task))
            if self.obs is not None:
                self.obs.on_start(self, task, mach.index)

    def _handle_complete(self, machine_index: int, task: Task) -> None:
        mach = self.machines[machine_index]
        mach.current = None
        mach.tasks_done += 1
        # Busy time is credited at completion (not at start), so a
        # truncated run only counts work actually performed.
        mach.busy_time += task.proc
        self.completions[task.tid] = self.now
        if self.obs is not None:
            self.obs.on_complete(self, task, machine_index)
        self._try_start(mach)

    # -- run ------------------------------------------------------------------
    def run(self, until: float | None = None) -> SimulationResult:
        """Drain the event queue (or stop the clock at ``until``).

        With ``until``, every event at time ``<= until`` is processed
        and the clock then advances to ``until`` even if the last event
        fired earlier, so :meth:`waiting_profile`, :meth:`uncompleted_on`
        and :meth:`result` reflect the state *at the cutoff*, not at
        the last event.  Calling :meth:`run` again resumes seamlessly.
        """
        while self.events:
            nxt = self.events.peek_time()
            if until is not None and nxt is not None and nxt > until:
                break
            ev = self.events.pop()
            self.now = ev.time
            if ev.kind is EventKind.RELEASE:
                self._handle_release(ev.payload)
            elif ev.kind is EventKind.COMPLETE:
                self._handle_complete(*ev.payload)
            elif ev.kind is EventKind.OBSERVE:
                ev.payload(self)
            else:  # pragma: no cover - START events are implicit
                raise RuntimeError(f"unexpected event kind {ev.kind}")
        if until is not None and self.now < until:
            self.now = until
        return self.result()

    def result(self) -> SimulationResult:
        """Summarise the run so far (exact on a drained queue, honest
        lower bounds at a truncation instant — see the module notes)."""
        placements = {
            tid: (self.assigned_machine[tid], self.starts[tid])
            for tid in self.starts
        }
        started_tasks = tuple(t for t in self._tasks if t.tid in self.starts)
        inst = Instance(m=self.m, tasks=started_tasks)
        sched = Schedule(inst, placements)
        # Started tasks have determined completions (no preemption);
        # pending tasks contribute their age as a flow lower bound.
        flows = [sched.flow_of(t.tid) for t in started_tasks]
        pending_ages = [self.now - t.release for t in self._tasks if t.tid not in self.starts]
        all_flows = flows + pending_ages
        makespan = max(self.completions.values(), default=0.0)
        completed_busy = sum(m.busy_time for m in self.machines.values())
        in_flight_busy = sum(
            self.now - self.starts[m.current.tid]
            for m in self.machines.values()
            if m.current is not None
        )
        total_busy = completed_busy + in_flight_busy
        # "Done" means no work remains anywhere: every released task
        # completed *and* no RELEASE/COMPLETE event is still queued
        # (a truncated run may leave future releases pending).
        all_done = (
            len(self.completions) == len(self._tasks) and not self.events.has_work()
        )
        # Over [0, horizon] each machine's credited segments are
        # disjoint, so utilisation is <= 1 by construction.
        horizon = makespan if all_done else max(self.now, makespan)
        util = total_busy / (self.m * horizon) if horizon > 0 else 0.0
        return SimulationResult(
            schedule=sched,
            max_flow=max(all_flows, default=0.0),
            mean_flow=(sum(all_flows) / len(all_flows)) if all_flows else 0.0,
            makespan=makespan,
            n_completed=len(self.completions),
            utilization=util,
            n_pending=len(self._tasks) - len(self.starts),
        )

    # -- state inspection -----------------------------------------------------
    def waiting_profile(self) -> list[float]:
        """Current :math:`w_t(j)` for every machine, 1-based order."""
        return [self.machines[j].waiting_work(self.now) for j in range(1, self.m + 1)]

    def uncompleted_on(self, machines: Sequence[int]) -> int:
        """Number of released-but-uncompleted tasks assigned to
        ``machines`` (the :math:`|G_{0,k}|` statistic of Theorem 5)."""
        wanted = set(machines)
        count = 0
        for t in self._tasks:
            if t.tid in self.completions:
                continue
            if self.assigned_machine[t.tid] in wanted:
                count += 1
        return count
