"""Preemptive online scheduling engine.

Table 1 recalls that preemption changes the online max-flow landscape
(preemptive FIFO keeps `3 − 2/m`; Ambühl & Mastrolilli reach the
optimal `2 − 1/m`).  This engine executes *priority-preemptive*
policies on identical machines with processing sets: at any instant,
each machine runs the highest-priority compatible released task, and a
newly released task preempts the lowest-priority running one when its
priority is higher.

The policy is a priority key function over task state; lower keys are
served first.  Classic instances:

* :func:`fifo_priority` — earliest release first.  Never preempts in
  practice (running tasks were released earlier), so its completion
  profile coincides with non-preemptive FIFO on unrestricted
  instances — property-tested, a nice consistency check between the
  engines.
* :func:`srpt_priority` — shortest *remaining* processing time first,
  the classic mean-flow heuristic; aggressive preemption.

The engine is event-driven with event points at releases and earliest
completions; between events the running set is constant.  Migration is
allowed (a preempted task may resume elsewhere), matching the
preemptive model of the cited results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.task import Instance, Task

__all__ = [
    "PreemptiveResult",
    "PreemptiveEngine",
    "fifo_priority",
    "srpt_priority",
    "preemptive_fifo_fmax",
]

#: Priority key: (task, remaining_work, now) -> sortable key (lower runs first)
PriorityFn = Callable[[Task, float, float], tuple]


def fifo_priority(task: Task, remaining: float, now: float) -> tuple:
    """Earliest release first (ties by tid)."""
    return (task.release, task.tid)


def srpt_priority(task: Task, remaining: float, now: float) -> tuple:
    """Shortest remaining processing time first (ties by release, tid)."""
    return (remaining, task.release, task.tid)


@dataclass
class PreemptiveResult:
    """Outcome of a preemptive run."""

    completions: dict[int, float]
    flows: dict[int, float]
    pieces: dict[int, list[tuple[int, float, float]]] = field(default_factory=dict)
    preemptions: int = 0

    @property
    def max_flow(self) -> float:
        return max(self.flows.values(), default=0.0)

    @property
    def mean_flow(self) -> float:
        if not self.flows:
            return 0.0
        return float(np.mean(list(self.flows.values())))


class PreemptiveEngine:
    """Priority-preemptive execution of an instance.

    The scheduler re-plans at every event point (release or earliest
    completion): released unfinished tasks are matched to machines by
    priority order, each task to a free compatible machine (greedy by
    priority; a task with no free compatible machine waits — with
    processing sets a perfect priority-respecting matching may not
    exist, the greedy rule is the natural online discipline).
    """

    def __init__(self, priority: PriorityFn = fifo_priority) -> None:
        self.priority = priority

    def run(self, instance: Instance) -> PreemptiveResult:
        m = instance.m
        tasks = list(instance.tasks)
        remaining = {t.tid: t.proc for t in tasks}
        by_tid = {t.tid: t for t in tasks}
        release_idx = 0
        n = len(tasks)
        active: dict[int, float] = {}  # tid -> remaining (released, unfinished)
        completions: dict[int, float] = {}
        pieces: dict[int, list[tuple[int, float, float]]] = {t.tid: [] for t in tasks}
        preemptions = 0
        prev_running: dict[int, int | None] = {j: None for j in range(1, m + 1)}
        now = 0.0

        while release_idx < n or active:
            # Admit releases due now.
            if release_idx < n and not active:
                now = max(now, tasks[release_idx].release)
            while release_idx < n and tasks[release_idx].release <= now + 1e-12:
                t = tasks[release_idx]
                active[t.tid] = remaining[t.tid]
                release_idx += 1
            if not active:
                continue
            # Plan: priority-ordered greedy assignment to machines.
            order = sorted(
                active, key=lambda tid: self.priority(by_tid[tid], active[tid], now)
            )
            free = set(range(1, m + 1))
            running: dict[int, int] = {}  # machine -> tid
            for tid in order:
                eligible = by_tid[tid].eligible(m) & free
                if eligible:
                    # keep affinity with the previous slice when possible
                    prev = next(
                        (j for j in sorted(eligible) if prev_running[j] == tid), None
                    )
                    j = prev if prev is not None else min(eligible)
                    running[j] = tid
                    free.discard(j)
            # Count preemptions: a task that was running and is now
            # displaced while still unfinished.
            now_running = set(running.values())
            for j in range(1, m + 1):
                tid = prev_running[j]
                if tid is not None and tid in active and tid not in now_running:
                    preemptions += 1
            # Advance to the next event.
            horizon = math.inf
            if release_idx < n:
                horizon = tasks[release_idx].release - now
            if running:
                horizon = min(horizon, min(active[tid] for tid in running.values()))
            if horizon is math.inf:  # pragma: no cover - cannot happen: active nonempty => running nonempty
                raise RuntimeError("stalled preemptive engine")
            delta = max(horizon, 0.0)
            for j, tid in running.items():
                if delta > 0:
                    pieces[tid].append((j, now, now + delta))
                active[tid] -= delta
            now += delta
            for tid in list(active):
                if active[tid] <= 1e-9:
                    completions[tid] = now
                    del active[tid]
            prev_running = {j: running.get(j) for j in range(1, m + 1)}
            for j, tid in list(prev_running.items()):
                if tid is not None and tid not in active:
                    prev_running[j] = None

        flows = {tid: completions[tid] - by_tid[tid].release for tid in completions}
        return PreemptiveResult(
            completions=completions, flows=flows, pieces=pieces, preemptions=preemptions
        )


def preemptive_fifo_fmax(instance: Instance) -> float:
    """Max flow of preemptive FIFO (Table 1: ``3 − 2/m``-competitive)."""
    return PreemptiveEngine(fifo_priority).run(instance).max_flow
