"""Workload generation for the Section 7 experiments.

Combines the machine-popularity model (§7.1), an arrival process and a
replication strategy into scheduling instances:

1. draw ``n`` Poisson release times of rate :math:`\\lambda`;
2. draw each task's home machine from :math:`P(E_j)`;
3. extend the home to the replica set :math:`I_k(u)` of the chosen
   strategy — the task's processing set.

This is exactly the generator behind Figure 11 (unit tasks, ``m = 15``,
``k = 3``, 10 000 tasks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.task import Instance, Task
from ..psets.replication import ReplicationStrategy, get_strategy
from .arrivals import poisson_release_times
from .dynamics import RateProfile, arrival_times
from .popularity import MachinePopularity, shuffled_case, uniform_case, worst_case

__all__ = [
    "WorkloadSpec",
    "generate_workload",
    "inject_outage",
    "popularity_for_case",
    "sample_sizes",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a Figure-11-style workload.

    ``size_dist`` extends the paper's unit tasks to variable request
    sizes ("requests vary in size", Section 1): ``"unit"``
    (deterministic ``proc``), ``"exp"`` (exponential with mean
    ``proc``), ``"pareto"`` (heavy tail, shape 2.1, mean ``proc``) or
    ``"uniform"`` (on ``[proc/2, 3 proc/2]``).

    ``rate_profile`` optionally replaces the constant rate ``lam`` with
    a time-varying :class:`~.dynamics.RateProfile` (diurnal swing,
    flash crowd); arrivals then follow the non-homogeneous Poisson
    process of that intensity.  ``lam`` is ignored when a profile is
    set.
    """

    m: int
    n: int
    lam: float
    k: int = 3
    strategy: str = "overlapping"
    case: str = "uniform"
    s: float = 1.0
    proc: float = 1.0
    size_dist: str = "unit"
    rate_profile: RateProfile | None = None

    @property
    def average_load(self) -> float:
        """*Time-averaged* cluster load :math:`\\bar\\lambda \\bar{p}/m`.

        With a constant rate this is the paper's :math:`\\lambda
        \\bar{p}/m`.  With a ``rate_profile`` the rate is averaged over
        the expected span of the ``n``-arrival stream,
        :math:`\\bar\\lambda = n / \\Lambda^{-1}(n)`, which integrates
        the profile rather than sampling it at any single instant.
        """
        if self.rate_profile is not None:
            return self.rate_profile.mean_rate(self.n) * self.proc / self.m
        return self.lam * self.proc / self.m


_PARETO_SHAPE = 2.1


def sample_sizes(
    dist: str, n: int, mean: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` service times with the given distribution and mean."""
    if mean <= 0:
        raise ValueError("mean must be > 0")
    if dist == "unit":
        return np.full(n, mean)
    if dist == "exp":
        return rng.exponential(scale=mean, size=n)
    if dist == "pareto":
        # Lomax + 1 scaled so the mean equals `mean`:
        # E[pareto(a)] (numpy's Lomax) = 1/(a-1); add the location 1.
        raw = 1.0 + rng.pareto(_PARETO_SHAPE, size=n)
        return raw * (mean / (1.0 + 1.0 / (_PARETO_SHAPE - 1)))
    if dist == "uniform":
        return rng.uniform(mean / 2, 3 * mean / 2, size=n)
    raise ValueError(f"unknown size distribution {dist!r}")


def popularity_for_case(
    m: int, case: str, s: float, rng: np.random.Generator | int | None = None
) -> MachinePopularity:
    """Build the popularity distribution of one of the paper's cases
    (``uniform`` / ``worst`` / ``shuffled``)."""
    if case == "uniform":
        return uniform_case(m)
    if case == "worst":
        return worst_case(m, s)
    if case == "shuffled":
        return shuffled_case(m, s, rng)
    raise ValueError(f"unknown popularity case {case!r}")


def generate_workload(
    spec: WorkloadSpec,
    rng: np.random.Generator | int | None = None,
    popularity: MachinePopularity | None = None,
) -> Instance:
    """Generate an instance from a :class:`WorkloadSpec`.

    A pre-built ``popularity`` overrides the spec's case (useful to
    share one shuffled permutation across several load points, as the
    paper's Figure 11 facets do).
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    pop = popularity if popularity is not None else popularity_for_case(spec.m, spec.case, spec.s, gen)
    if pop.m != spec.m:
        raise ValueError(f"popularity has m={pop.m}, spec has m={spec.m}")
    strat: ReplicationStrategy = get_strategy(spec.strategy, spec.m, spec.k)
    if spec.rate_profile is not None:
        releases = arrival_times(spec.rate_profile, spec.n, gen)
    else:
        releases = poisson_release_times(spec.lam, spec.n, gen)
    homes = pop.sample_homes(spec.n, gen)
    sizes = sample_sizes(spec.size_dist, spec.n, spec.proc, gen)
    tasks = tuple(
        Task(
            tid=i,
            release=float(releases[i]),
            proc=float(sizes[i]),
            machines=strat.replicas(int(homes[i])),
        )
        for i in range(spec.n)
    )
    return Instance(m=spec.m, tasks=tasks)


def inject_outage(
    instance: Instance, machine: int, start: float, duration: float
) -> Instance:
    """Failure injection: model a machine outage as a maintenance task.

    A task of length ``duration`` pinned to ``machine`` and released at
    ``start`` occupies it for the outage window (immediate-dispatch
    schedulers place it at once, and if the machine is busy the outage
    begins when the current work drains — the behaviour of a drain-
    then-reboot maintenance operation).  Returns a new instance with
    the outage task appended (its tid continues the existing range).
    """
    if not (1 <= machine <= instance.m):
        raise ValueError(f"machine {machine} outside 1..{instance.m}")
    if duration <= 0 or start < 0:
        raise ValueError("need start >= 0 and duration > 0")
    next_tid = max((t.tid for t in instance), default=-1) + 1
    outage = Task(
        tid=next_tid, release=float(start), proc=float(duration), machines=frozenset({machine})
    )
    return Instance(m=instance.m, tasks=instance.tasks + (outage,))
