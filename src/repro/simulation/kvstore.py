"""Key-level model of a replicated key-value store.

The paper abstracts popularity directly at the machine level
(:mod:`repro.simulation.popularity`).  This module keeps the full
key-granularity pipeline of the systems that motivated it (Dynamo,
Cassandra): keys are placed on a hash ring, each key has a home
machine, a replication strategy extends the home to a replica set, and
a request stream over keys becomes a task stream over machines.

Aggregating per-key request probabilities per home machine recovers
exactly the paper's machine popularity :math:`P(E_j)` — tested in
``tests/simulation/test_kvstore.py`` — so the figure harnesses may use
either level interchangeably.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.task import Instance, Task
from ..psets.replication import ReplicationStrategy, get_strategy
from .arrivals import poisson_release_times
from .dynamics import RateProfile, arrival_times

__all__ = ["KeyPlacement", "HashRingPlacement", "BlockPlacement", "KeyValueStore"]


class KeyPlacement:
    """Maps a key id to its home machine (1-based)."""

    def home(self, key: int) -> int:
        raise NotImplementedError


class HashRingPlacement(KeyPlacement):
    """Consistent-hashing ring with virtual nodes.

    Each machine owns ``virtual_nodes`` points on a 64-bit ring; a key
    is homed on the machine owning the first point at or after the
    key's hash (clockwise successor) — the Dynamo placement rule.
    """

    def __init__(self, m: int, virtual_nodes: int = 64, salt: str = "ring") -> None:
        if m < 1 or virtual_nodes < 1:
            raise ValueError("m and virtual_nodes must be >= 1")
        self.m = m
        points: list[tuple[int, int]] = []
        for j in range(1, m + 1):
            for v in range(virtual_nodes):
                h = self._hash(f"{salt}:{j}:{v}")
                points.append((h, j))
        points.sort()
        self._points = points
        self._hashes = np.array([p[0] for p in points], dtype=np.uint64)
        self._owners = np.array([p[1] for p in points], dtype=np.int64)

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(hashlib.blake2b(text.encode(), digest_size=8).digest(), "big")

    def home(self, key: int) -> int:
        h = self._hash(f"key:{key}")
        idx = int(np.searchsorted(self._hashes, np.uint64(h), side="left"))
        if idx == len(self._hashes):
            idx = 0  # wrap around the ring
        return int(self._owners[idx])


class BlockPlacement(KeyPlacement):
    """Range partitioning: key ``x`` lives on machine
    ``(x mod m) + 1`` — the simplest deterministic partitioner."""

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = m

    def home(self, key: int) -> int:
        return key % self.m + 1


@dataclass(frozen=True)
class KeyValueStore:
    """A cluster of ``m`` machines serving ``n_keys`` replicated keys.

    Parameters
    ----------
    m, n_keys:
        Cluster and keyspace sizes.
    placement:
        Key-to-home mapping.
    strategy:
        Replication strategy (``overlapping`` / ``disjoint`` / ``none``)
        already bound to ``(m, k)``.
    key_weights:
        Request probability of each key (defaults to uniform).  Zipf
        over *keys* plus hashing induces the paper's machine-level
        popularity bias.
    """

    m: int
    n_keys: int
    placement: KeyPlacement
    strategy: ReplicationStrategy
    key_weights: np.ndarray

    @staticmethod
    def build(
        m: int,
        n_keys: int,
        k: int = 3,
        strategy: str | ReplicationStrategy = "overlapping",
        placement: KeyPlacement | str = "ring",
        key_zipf_s: float = 0.0,
    ) -> "KeyValueStore":
        """Construct a store with Zipf key popularity of shape
        ``key_zipf_s`` (0 = uniform keys)."""
        if isinstance(placement, str):
            if placement == "ring":
                placement = HashRingPlacement(m)
            elif placement == "block":
                placement = BlockPlacement(m)
            else:
                raise ValueError(f"unknown placement {placement!r}")
        strat = get_strategy(strategy, m, k)
        ranks = np.arange(1, n_keys + 1, dtype=float)
        w = ranks ** (-key_zipf_s)
        w /= w.sum()
        return KeyValueStore(m=m, n_keys=n_keys, placement=placement, strategy=strat, key_weights=w)

    def __post_init__(self) -> None:
        w = np.asarray(self.key_weights, dtype=float)
        if w.size != self.n_keys:
            raise ValueError("key_weights size must equal n_keys")
        if np.any(w < 0) or not np.isclose(w.sum(), 1.0):
            raise ValueError("key_weights must be a probability vector")
        object.__setattr__(self, "key_weights", w)

    # -- derived distributions ------------------------------------------------
    def homes(self) -> np.ndarray:
        """Home machine of every key (index = key id)."""
        return np.array([self.placement.home(key) for key in range(self.n_keys)], dtype=int)

    def machine_popularity(self) -> np.ndarray:
        """Induced machine-request probabilities :math:`P(E_j)` —
        per-key weights aggregated by home machine."""
        probs = np.zeros(self.m)
        homes = self.homes()
        np.add.at(probs, homes - 1, self.key_weights)
        return probs

    def replica_set(self, key: int) -> frozenset[int]:
        """Machines eligible to serve requests for ``key``."""
        return self.strategy.replicas(self.placement.home(key))

    # -- workload -----------------------------------------------------------------
    def request_stream(
        self,
        lam: float | RateProfile,
        n: int,
        rng: np.random.Generator | int | None = None,
        proc: float = 1.0,
    ) -> Instance:
        """Generate ``n`` requests as a scheduling instance.

        Releases follow a Poisson process of rate ``lam`` — either a
        constant float or a time-varying
        :class:`~.dynamics.RateProfile` (diurnal, flash crowd), in
        which case the stream is the non-homogeneous process of that
        intensity.  Each request draws a key from ``key_weights``; the
        task's processing set is the key's replica set.
        """
        gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        if isinstance(lam, RateProfile):
            releases = arrival_times(lam, n, gen)
        else:
            releases = poisson_release_times(lam, n, gen)
        keys = gen.choice(self.n_keys, size=n, p=self.key_weights)
        tasks = tuple(
            Task(
                tid=i,
                release=float(releases[i]),
                proc=proc,
                machines=self.replica_set(int(keys[i])),
                key=int(keys[i]),
            )
            for i in range(n)
        )
        return Instance(m=self.m, tasks=tasks)
