"""Discrete-event simulation substrate and workload models."""

from .arrivals import batch_release_times, load_to_rate, poisson_release_times, rate_to_load
from .collector import ProfileSampler, QueueSampler, steady_state_reached, trim_warmup
from .engine import MachineState, SimulationResult, Simulator
from .events import Event, EventKind, EventQueue
from .suites import SUITES, WorkloadSuite, get_suite, suite_names
from .kvstore import BlockPlacement, HashRingPlacement, KeyPlacement, KeyValueStore
from .preemptive import (
    PreemptiveEngine,
    PreemptiveResult,
    fifo_priority,
    preemptive_fifo_fmax,
    srpt_priority,
)
from .popularity import (
    MachinePopularity,
    generalized_harmonic,
    shuffled_case,
    uniform_case,
    worst_case,
    zipf_weights,
)
from .workload import (
    WorkloadSpec,
    generate_workload,
    inject_outage,
    popularity_for_case,
    sample_sizes,
)

__all__ = [
    "BlockPlacement",
    "Event",
    "EventKind",
    "EventQueue",
    "HashRingPlacement",
    "KeyPlacement",
    "KeyValueStore",
    "MachinePopularity",
    "MachineState",
    "PreemptiveEngine",
    "PreemptiveResult",
    "ProfileSampler",
    "QueueSampler",
    "SUITES",
    "SimulationResult",
    "Simulator",
    "WorkloadSpec",
    "WorkloadSuite",
    "batch_release_times",
    "fifo_priority",
    "generalized_harmonic",
    "generate_workload",
    "get_suite",
    "inject_outage",
    "load_to_rate",
    "preemptive_fifo_fmax",
    "sample_sizes",
    "srpt_priority",
    "suite_names",
    "poisson_release_times",
    "popularity_for_case",
    "rate_to_load",
    "shuffled_case",
    "steady_state_reached",
    "trim_warmup",
    "uniform_case",
    "worst_case",
    "zipf_weights",
]
