"""Event primitives for the discrete-event simulator.

A minimal, allocation-light event core: events are ``(time, priority,
seq, kind, payload)`` records ordered by time, then by a fixed
per-kind priority, then by a monotone sequence number.

The within-instant order is pinned: at equal times **MACHINE_UP fires
before COMPLETE fires before MACHINE_DOWN fires before RELEASE fires
before OBSERVE**, and events of the same kind fire in scheduling order
(FIFO).  Completions-first (among work events) means a machine that
frees up at :math:`t` is already idle when a task released at
:math:`t` is dispatched — matching the analytic driver, where starts
satisfy :math:`\\sigma_i = \\max(r_i, \\text{avail}_j)` with no notion
of event order.  Releases-before-observers means an OBSERVE callback
always sees the settled state of its instant (collectors sample after
same-time arrivals; adversaries inject *after* the instant's natural
events, in scheduling order).  The FIFO tie-break within a kind is
what the paper's adversaries rely on (tasks released "in order" at the
same instant).

The fault events bracket the instant's work: a machine recovering at
:math:`t` (MACHINE_UP first) is usable by that instant's releases, a
task completing exactly when its machine fails (COMPLETE before
MACHINE_DOWN) counts as completed — the work was done by :math:`t` —
and a task released at the failure instant (MACHINE_DOWN before
RELEASE) already sees the machine as dead.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """Kinds of simulator events."""

    RELEASE = auto()  #: a task enters the system
    START = auto()  #: a machine begins processing a task
    COMPLETE = auto()  #: a machine finishes a task
    OBSERVE = auto()  #: a user/adversary callback fires
    MACHINE_DOWN = auto()  #: a machine fails (fault injection)
    MACHINE_UP = auto()  #: a failed machine recovers


#: Same-instant firing order (lower fires first): recoveries make
#: machines usable, completions free machines (a completion at the
#: exact failure instant still counts — the work was done), failures
#: take machines out *before* the instant's releases dispatch, then
#: observers see the settled instant.
_KIND_PRIORITY: dict[EventKind, int] = {
    EventKind.MACHINE_UP: 0,
    EventKind.COMPLETE: 1,
    EventKind.START: 2,
    EventKind.MACHINE_DOWN: 3,
    EventKind.RELEASE: 4,
    EventKind.OBSERVE: 5,
}


@dataclass(order=True, slots=True)
class Event:
    """A scheduled simulator event (orderable by time, then kind
    priority, then seq)."""

    time: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Binary-heap event queue with pinned within-time ordering
    (COMPLETE < RELEASE < OBSERVE, FIFO within a kind)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the event object."""
        ev = Event(
            time=time,
            priority=_KIND_PRIORITY[kind],
            seq=next(self._counter),
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` if empty."""
        return self._heap[0].time if self._heap else None

    _NON_WORK = frozenset({EventKind.OBSERVE, EventKind.MACHINE_DOWN, EventKind.MACHINE_UP})

    def has_work(self) -> bool:
        """Whether any *work* event (RELEASE/START/COMPLETE, as opposed
        to OBSERVE callbacks or fault transitions) is still pending."""
        return any(ev.kind not in self._NON_WORK for ev in self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
