"""Event primitives for the discrete-event simulator.

A minimal, allocation-light event core: events are ``(time, seq,
kind, payload)`` tuples ordered by time with a monotone sequence
number for stable FIFO tie-breaking — simultaneous events fire in
scheduling order, which the paper's adversaries rely on (tasks released
"in order" at the same instant).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """Kinds of simulator events."""

    RELEASE = auto()  #: a task enters the system
    START = auto()  #: a machine begins processing a task
    COMPLETE = auto()  #: a machine finishes a task
    OBSERVE = auto()  #: a user/adversary callback fires


@dataclass(order=True, slots=True)
class Event:
    """A scheduled simulator event (orderable by time then seq)."""

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Binary-heap event queue with stable within-time ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the event object."""
        ev = Event(time=time, seq=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` if empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
