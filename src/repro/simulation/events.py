"""Event primitives for the discrete-event simulator.

A minimal, allocation-light event core: events are ``(time, priority,
seq, kind, payload)`` records ordered by time, then by a fixed
per-kind priority, then by a monotone sequence number.

The within-instant order is pinned: at equal times **MACHINE_UP fires
before COMPLETE fires before MACHINE_DOWN fires before RELEASE fires
before OBSERVE**, and events of the same kind fire in scheduling order
(FIFO).  Completions-first (among work events) means a machine that
frees up at :math:`t` is already idle when a task released at
:math:`t` is dispatched — matching the analytic driver, where starts
satisfy :math:`\\sigma_i = \\max(r_i, \\text{avail}_j)` with no notion
of event order.  Releases-before-observers means an OBSERVE callback
always sees the settled state of its instant (collectors sample after
same-time arrivals; adversaries inject *after* the instant's natural
events, in scheduling order).  The FIFO tie-break within a kind is
what the paper's adversaries rely on (tasks released "in order" at the
same instant).

The fault events bracket the instant's work: a machine recovering at
:math:`t` (MACHINE_UP first) is usable by that instant's releases, a
task completing exactly when its machine fails (COMPLETE before
MACHINE_DOWN) counts as completed — the work was done by :math:`t` —
and a task released at the failure instant (MACHINE_DOWN before
RELEASE) already sees the machine as dead.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from operator import attrgetter
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """Kinds of simulator events."""

    RELEASE = auto()  #: a task enters the system
    START = auto()  #: a machine begins processing a task
    COMPLETE = auto()  #: a machine finishes a task
    OBSERVE = auto()  #: a user/adversary callback fires
    MACHINE_DOWN = auto()  #: a machine fails (fault injection)
    MACHINE_UP = auto()  #: a failed machine recovers
    PREEMPT = auto()  #: re-evaluate a machine's running task (preemptive policies)
    RESUME = auto()  #: restart a machine freed by a preemption


#: Same-instant firing order (lower fires first): recoveries make
#: machines usable, completions free machines (a completion at the
#: exact failure instant still counts — the work was done), resumes
#: behave like starts (a machine freed by a preemption at :math:`t` is
#: re-filled before the instant's failures and releases), failures
#: take machines out *before* the instant's releases dispatch,
#: preemption checks fire after the *whole* same-instant release batch
#: has dispatched (one deterministic re-evaluation per machine, not
#: one per arrival), then observers see the settled instant.
_KIND_PRIORITY: dict[EventKind, int] = {
    EventKind.MACHINE_UP: 0,
    EventKind.COMPLETE: 1,
    EventKind.RESUME: 2,
    EventKind.START: 3,
    EventKind.MACHINE_DOWN: 4,
    EventKind.RELEASE: 5,
    EventKind.PREEMPT: 6,
    EventKind.OBSERVE: 7,
}


@dataclass(order=True, slots=True)
class Event:
    """A scheduled simulator event (orderable by time, then kind
    priority, then seq)."""

    time: float
    priority: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Binary-heap event queue with pinned within-time ordering
    (COMPLETE < RELEASE < OBSERVE, FIFO within a kind)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._kind_counts: dict[EventKind, int] = {}
        #: True while the heap list is known to *be* the firing order:
        #: every push so far arrived in non-decreasing (time, priority)
        #: and nothing was popped.  Sorted pushes never sift, so the
        #: heap list stays in insertion order and :meth:`pending` can
        #: skip its O(n log n) sort — the common case for an instance
        #: fed release-sorted to a fresh simulator.
        self._monotone = True

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the event object."""
        priority = _KIND_PRIORITY[kind]
        if self._monotone and self._heap:
            last = self._heap[-1]
            if (time, priority) < (last.time, last.priority):
                self._monotone = False
        ev = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, ev)
        counts = self._kind_counts
        counts[kind] = counts.get(kind, 0) + 1
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        ev = heapq.heappop(self._heap)
        counts = self._kind_counts
        left = counts[ev.kind] - 1
        if left:
            counts[ev.kind] = left
        else:
            del counts[ev.kind]
        if self._heap:
            # popping reorders the heap list (the tail element moves to
            # the root), so insertion order is no longer the list order
            self._monotone = False
        else:
            self._monotone = True
        return ev

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` if empty."""
        return self._heap[0].time if self._heap else None

    def pending(self) -> list[Event]:
        """Every pending event in firing order (non-destructive).

        Used by the array backend to fast-forward: the sorted view is
        exactly the order the reference loop would pop, including the
        pinned same-instant priorities and the FIFO seq tie-break.
        """
        if self._monotone:
            return list(self._heap)
        return sorted(self._heap, key=attrgetter("time", "priority", "seq"))

    def pending_kinds(self) -> set[EventKind]:
        """The distinct kinds currently queued (O(1) eligibility probe
        for the array backend — tracked incrementally, no scan)."""
        return set(self._kind_counts)

    def clear(self) -> None:
        """Drop every pending event (the seq counter keeps running, so
        later pushes still order after everything ever scheduled)."""
        self._heap.clear()
        self._kind_counts.clear()
        self._monotone = True

    _NON_WORK = frozenset({EventKind.OBSERVE, EventKind.MACHINE_DOWN, EventKind.MACHINE_UP})

    def has_work(self) -> bool:
        """Whether any *work* event (RELEASE/START/COMPLETE, as opposed
        to OBSERVE callbacks or fault transitions) is still pending."""
        return any(ev.kind not in self._NON_WORK for ev in self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
