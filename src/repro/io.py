"""Instance and schedule (de)serialisation.

Experiments need durable artifacts: instances round-trip through JSON
(already on :class:`~repro.core.task.Instance`); this module adds
schedule round-trips, CSV trace export for external analysis (one row
per task: release, start, completion, machine, flow), and a combined
experiment-record format that stores the instance, the placements and
the metrics together with provenance (algorithm name, seed).
"""

from __future__ import annotations

import csv
import io as _io
import json
from typing import Mapping

from .core.metrics import summarize
from .core.schedule import Schedule
from .core.task import Instance

__all__ = [
    "schedule_to_json",
    "schedule_from_json",
    "schedule_to_csv",
    "experiment_record",
    "load_experiment_record",
]


def schedule_to_json(schedule: Schedule) -> str:
    """Serialise a schedule (instance + placements) to JSON."""
    payload = {
        "instance": json.loads(schedule.instance.to_json()),
        "placements": {
            str(a.task.tid): [a.machine, a.start] for a in schedule
        },
    }
    return json.dumps(payload)


def schedule_from_json(payload: str) -> Schedule:
    """Inverse of :func:`schedule_to_json`; validates the result."""
    data = json.loads(payload)
    instance = Instance.from_json(json.dumps(data["instance"]))
    placements = {
        int(tid): (int(mach), float(start))
        for tid, (mach, start) in data["placements"].items()
    }
    schedule = Schedule(instance, placements)
    schedule.validate()
    return schedule


def schedule_to_csv(schedule: Schedule) -> str:
    """Export one row per task: ``tid, machine, release, start,
    completion, flow, proc`` (sorted by tid)."""
    buf = _io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["tid", "machine", "release", "start", "completion", "flow", "proc"])
    for t in schedule.instance:
        a = schedule[t.tid]
        writer.writerow(
            [t.tid, a.machine, t.release, a.start, a.completion, a.flow, t.proc]
        )
    return buf.getvalue()


def experiment_record(
    schedule: Schedule,
    algorithm: str,
    seed: int | None = None,
    extra: Mapping[str, object] | None = None,
) -> str:
    """Bundle a run into a self-describing JSON record: provenance,
    instance, placements and summary metrics."""
    stats = summarize(schedule)
    payload = {
        "format": "repro-experiment-v1",
        "algorithm": algorithm,
        "seed": seed,
        "metrics": stats.as_dict(),
        "schedule": json.loads(schedule_to_json(schedule)),
    }
    if extra:
        payload["extra"] = dict(extra)
    return json.dumps(payload)


def load_experiment_record(payload: str) -> tuple[Schedule, dict]:
    """Load a record; returns the validated schedule and the metadata
    (algorithm, seed, metrics, extra).  Recomputed metrics must match
    the stored ones (guards against tampered/corrupted records)."""
    data = json.loads(payload)
    if data.get("format") != "repro-experiment-v1":
        raise ValueError(f"unknown record format {data.get('format')!r}")
    schedule = schedule_from_json(json.dumps(data["schedule"]))
    recomputed = summarize(schedule).as_dict()
    stored = data["metrics"]
    for key in ("max_flow", "makespan", "total_work"):
        if abs(recomputed[key] - stored[key]) > 1e-9:
            raise ValueError(
                f"stored metric {key}={stored[key]} does not match "
                f"recomputed {recomputed[key]} — corrupted record?"
            )
    meta = {k: v for k, v in data.items() if k != "schedule"}
    return schedule, meta
