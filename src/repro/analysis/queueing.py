"""Queueing-theoretic predictions of the simulation results.

The Figure 11 workload is, in queueing terms, a set of multi-server
queues: under the **disjoint** strategy each group of ``k`` machines is
an independent queue fed a Poisson stream of rate
:math:`\\lambda_g = \\lambda \\sum_{j \\in g} P(E_j)` of unit jobs;
under the **overlapping** strategy the cluster behaves (optimistically)
like one big ``m``-server queue.  The M/M/c model (Erlang C) gives
closed forms that this module uses to *predict* the measured max-flow:

* :func:`erlang_c` — probability an arriving job waits;
* :func:`mmc_mean_wait` — mean queueing delay :math:`W_q`;
* :func:`mmc_wait_quantile` — the conditional wait is exponential with
  rate :math:`c\\mu - \\lambda`, so
  :math:`P(W > t) = C(c, a) e^{-(c\\mu - \\lambda) t}` and the
  :math:`1 - 1/n` quantile approximates the maximum over :math:`n`
  arrivals;
* :func:`predict_fmax` — the resulting analytic stand-in for a
  Figure-11 point (unit deterministic service is approximated by the
  exponential model; the M/D/c wait is roughly half the M/M/c wait, so
  predictions carry a factor-2 model error band — they are meant to
  explain *shape*, especially the divergence at each strategy's
  capacity line).

The module also exposes :func:`stability_limit`, which recovers the
max-load LP's answer for the disjoint strategy from pure queueing
stability — a neat consistency check between §7.2's LP and queueing
theory, tested in ``tests/analysis/test_queueing.py``.
"""

from __future__ import annotations

import math

import numpy as np

from ..psets.replication import DisjointIntervals
from ..simulation.popularity import MachinePopularity

__all__ = [
    "erlang_c",
    "mmc_mean_wait",
    "mmc_wait_quantile",
    "predict_fmax",
    "stability_limit",
    "predict_disjoint_curve",
]


def erlang_c(c: int, a: float) -> float:
    """Erlang-C: probability of waiting in an M/M/c queue with offered
    load ``a = lambda/mu`` (requires ``a < c`` for stability)."""
    if c < 1:
        raise ValueError("need at least one server")
    if a < 0:
        raise ValueError("offered load must be >= 0")
    if a == 0:
        return 0.0
    if a >= c:
        return 1.0  # saturated: every job waits
    # Numerically stable iterative Erlang-B, then convert to C.
    b = 1.0
    for i in range(1, c + 1):
        b = a * b / (i + a * b)
    rho = a / c
    return b / (1.0 - rho + rho * b)


def mmc_mean_wait(lam: float, c: int, mu: float = 1.0) -> float:
    """Mean queueing delay :math:`W_q` of an M/M/c queue
    (infinite when unstable)."""
    a = lam / mu
    if a >= c:
        return math.inf
    return erlang_c(c, a) / (c * mu - lam)


def mmc_wait_quantile(lam: float, c: int, q: float, mu: float = 1.0) -> float:
    """The ``q``-quantile of the waiting time of an M/M/c queue.

    :math:`P(W > t) = C(c, a)\\, e^{-(c\\mu - \\lambda) t}` for
    :math:`t \\ge 0`; the quantile is 0 when the no-wait mass already
    covers ``q``.
    """
    if not (0 <= q < 1):
        raise ValueError("quantile must be in [0, 1)")
    a = lam / mu
    if a >= c:
        return math.inf
    pw = erlang_c(c, a)
    if 1 - q >= pw:
        return 0.0
    return math.log(pw / (1 - q)) / (c * mu - lam)


def predict_fmax(lam: float, c: int, n: int, mu: float = 1.0) -> float:
    """Analytic stand-in for the max flow over ``n`` arrivals: the
    :math:`1 - 1/n` wait quantile plus one unit of service."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1.0 / mu + mmc_wait_quantile(lam, c, 1.0 - 1.0 / n, mu)


def stability_limit(popularity: MachinePopularity, k: int) -> float:
    """Largest arrival rate :math:`\\lambda` keeping every disjoint
    group stable: :math:`\\lambda_g < |g|` for all groups — identical
    to the disjoint max-load closed form / LP optimum."""
    strat = DisjointIntervals(popularity.m, k)
    best = math.inf
    for group in strat.groups():
        mass = float(sum(popularity.weights[j - 1] for j in group))
        if mass > 0:
            best = min(best, len(group) / mass)
    return best


def predict_disjoint_curve(
    popularity: MachinePopularity,
    k: int,
    loads_percent,
    n: int = 10_000,
) -> dict[float, float]:
    """Predicted Figure-11 series for the disjoint strategy: per load
    point, the worst predicted Fmax across the groups (each group sees
    its share of the ``n`` tasks)."""
    m = popularity.m
    strat = DisjointIntervals(m, k)
    out: dict[float, float] = {}
    for load in loads_percent:
        lam = load / 100.0 * m
        worst = 1.0
        for group in strat.groups():
            mass = float(sum(popularity.weights[j - 1] for j in group))
            lam_g = lam * mass
            n_g = max(1, int(round(n * mass)))
            worst = max(worst, predict_fmax(lam_g, len(group), n_g))
        out[float(load)] = worst
    return out
