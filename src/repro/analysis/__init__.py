"""Analytic models predicting the experimental results."""

from .queueing import (
    erlang_c,
    mmc_mean_wait,
    mmc_wait_quantile,
    predict_disjoint_curve,
    predict_fmax,
    stability_limit,
)

__all__ = [
    "erlang_c",
    "mmc_mean_wait",
    "mmc_wait_quantile",
    "predict_disjoint_curve",
    "predict_fmax",
    "stability_limit",
]
