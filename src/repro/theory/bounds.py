"""Competitive-ratio bound registry (Tables 1 and 2 of the paper).

Closed-form bound functions plus a structured registry so the
benchmark harness can print the paper's two summary tables and tests
can check the adversaries actually realise the claimed bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "fifo_competitive_ratio",
    "eft_disjoint_ratio",
    "inclusive_lower_bound",
    "fixed_k_lower_bound",
    "nested_lower_bound",
    "interval_any_lower_bound",
    "eft_interval_lower_bound",
    "general_lower_bound",
    "BoundEntry",
    "TABLE1",
    "TABLE2",
]


# -- closed forms ------------------------------------------------------------
def fifo_competitive_ratio(m: int) -> float:
    """Theorem 1 (Bender et al.): FIFO/EFT is ``(3 - 2/m)``-competitive
    on ``P | online-r_i | Fmax``."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return 3.0 - 2.0 / m


def eft_disjoint_ratio(k: int) -> float:
    """Corollary 1: EFT is ``(3 - 2/k)``-competitive on disjoint
    processing sets of size ``k``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return 3.0 - 2.0 / k


def inclusive_lower_bound(m: int) -> int:
    """Theorem 3: any immediate-dispatch algorithm is at least
    ``floor(log2(m) + 1)``-competitive on inclusive sets."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return math.floor(math.log2(m) + 1)


def fixed_k_lower_bound(m: int, k: int) -> int:
    """Theorem 4: any immediate-dispatch algorithm is at least
    ``floor(log_k(m))``-competitive on (unstructured) sets of size
    ``k``."""
    if m < 1 or k < 2:
        raise ValueError("need m >= 1 and k >= 2")
    return math.floor(math.log(m, k))


def nested_lower_bound(m: int) -> float:
    """Theorem 5: any online algorithm is at least
    ``(1/3) * floor(log2(m) + 2)``-competitive on nested sets."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return math.floor(math.log2(m) + 2) / 3.0


def interval_any_lower_bound() -> float:
    """Theorem 7: any online algorithm is at least 2-competitive on
    fixed-size interval sets."""
    return 2.0


def eft_interval_lower_bound(m: int, k: int) -> int:
    """Theorems 8–10: EFT (Min, Rand or any tie-break) is at least
    ``(m - k + 1)``-competitive on fixed-size-``k`` interval sets,
    for ``1 < k < m``."""
    if not (1 < k < m):
        raise ValueError("the bound requires 1 < k < m")
    return m - k + 1


def general_lower_bound(m: int) -> float:
    """Anand et al.: ``Omega(m)`` lower bound for arbitrary processing
    sets — returned here as the linear witness ``m / 2`` commonly used
    to instantiate the Omega (any linear function works for shape
    checks; the registry records the asymptotic form separately)."""
    return m / 2.0


# -- registries ----------------------------------------------------------------
@dataclass(frozen=True)
class BoundEntry:
    """One row of a results table."""

    setting: str  #: machine environment / structure
    algorithm: str  #: algorithm or algorithm class
    kind: str  #: "upper" (competitive guarantee) or "lower" (impossibility)
    expression: str  #: human-readable bound
    reference: str  #: theorem / citation
    formula: object = None  #: callable evaluating the bound, if closed-form


#: Table 1 — existing results on online/offline max-flow minimisation.
TABLE1: tuple[BoundEntry, ...] = (
    BoundEntry("P, non-preemptive", "FIFO", "upper", "3 - 2/m", "Bender et al. [11]", fifo_competitive_ratio),
    BoundEntry("P, non-preemptive", "any online", "lower", ">= 2 - 1/m", "Ambühl et al. [19]", lambda m: 2 - 1 / m),
    BoundEntry("P, preemptive", "FIFO", "upper", "3 - 2/m", "Mastrolilli [12]", fifo_competitive_ratio),
    BoundEntry("P, preemptive", "Ambühl et al.", "upper", "2 - 1/m", "Ambühl et al. [19]", lambda m: 2 - 1 / m),
    BoundEntry("P, preemptive", "any online", "lower", ">= 2 - 1/m", "Ambühl et al. [19]", lambda m: 2 - 1 / m),
    BoundEntry("P|Mi, non-preemptive", "any online", "lower", ">= Omega(m)", "Anand et al. [13]", general_lower_bound),
    BoundEntry("Q, non-preemptive", "Double-Fit", "upper", "13.5", "Bansal, Cloostermans [20]", lambda m: 13.5),
    BoundEntry("Q, non-preemptive", "Slow-Fit", "lower", ">= Omega(m)", "Bansal, Cloostermans [20]", None),
    BoundEntry("Q, non-preemptive", "Greedy", "lower", ">= Omega(log m)", "Bansal, Cloostermans [20]", None),
    BoundEntry("R, non-preemptive", "Bansal et al.", "upper", "O(log n) offline", "Bansal, Kulkarni [22]", None),
    BoundEntry("R, non-preemptive", "PTAS", "upper", "1+eps in n^O(m/eps)", "Bansal [21]", None),
    BoundEntry("R, non-preemptive", "FPTAS", "upper", "1+eps in O(nm(n^2/eps)^m)", "Mastrolilli [12]", None),
    BoundEntry("R, preemptive", "Legrand et al.", "upper", "optimal offline", "Legrand et al. [18]", None),
)

#: Table 2 — this paper's bounds for structured processing sets.
TABLE2: tuple[BoundEntry, ...] = (
    BoundEntry(
        "inclusive", "immediate dispatch", "lower", ">= floor(log2(m) + 1)", "Theorem 3", inclusive_lower_bound
    ),
    BoundEntry(
        "|Mi| = k", "immediate dispatch", "lower", ">= floor(log_k(m))", "Theorem 4", fixed_k_lower_bound
    ),
    BoundEntry("nested", "any online", "lower", ">= (1/3) floor(log2(m) + 2)", "Theorem 5", nested_lower_bound),
    BoundEntry("disjoint, |Mi| = k", "EFT", "upper", "3 - 2/k", "Corollary 1", eft_disjoint_ratio),
    BoundEntry("interval, |Mi| = k", "any online", "lower", ">= 2", "Theorem 7", lambda: 2.0),
    BoundEntry(
        "interval, |Mi| = k", "EFT", "lower", ">= m - k + 1", "Theorems 8, 9, 10", eft_interval_lower_bound
    ),
)
