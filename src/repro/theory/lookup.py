"""Best-known-bounds lookup.

Answers "what does the paper guarantee / forbid for algorithm class X
on structure Y at (m, k)?" — the programmatic form of Table 2, used by
the exploration harness and handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bounds import (
    eft_disjoint_ratio,
    eft_interval_lower_bound,
    fifo_competitive_ratio,
    fixed_k_lower_bound,
    inclusive_lower_bound,
    nested_lower_bound,
)

__all__ = ["KnownBounds", "best_known_bounds", "ALGORITHM_CLASSES"]

#: Recognised algorithm classes, from most to least restricted.
ALGORITHM_CLASSES = ("eft", "immediate-dispatch", "online")


@dataclass(frozen=True)
class KnownBounds:
    """Best known competitive-ratio bounds for a setting.

    ``lower`` — no algorithm of the class beats this ratio;
    ``upper`` — some algorithm of the class achieves this ratio
    (``None`` when the paper gives no guarantee).
    """

    structure: str
    algorithm_class: str
    lower: float
    upper: float | None
    lower_ref: str
    upper_ref: str | None


def best_known_bounds(
    structure: str, algorithm_class: str, m: int, k: int | None = None
) -> KnownBounds:
    """Look up the paper's bounds for a setting.

    ``structure`` in ``{"none", "inclusive", "nested", "disjoint",
    "interval", "general"}`` (``"none"`` = unrestricted); ``k`` is the
    common set size where the structure uses one.
    """
    if algorithm_class not in ALGORITHM_CLASSES:
        raise ValueError(
            f"unknown algorithm class {algorithm_class!r}; known: {ALGORITHM_CLASSES}"
        )
    is_eft = algorithm_class == "eft"
    is_imd = algorithm_class in ("eft", "immediate-dispatch")

    if structure == "none":
        upper = fifo_competitive_ratio(m) if is_eft else None
        return KnownBounds(
            structure,
            algorithm_class,
            lower=2 - 1 / m,
            upper=upper,
            lower_ref="Ambühl & Mastrolilli",
            upper_ref="Theorem 1 (Bender et al.)" if upper else None,
        )
    if structure == "inclusive":
        lower = float(inclusive_lower_bound(m)) if is_imd else nested_lower_bound(m)
        ref = "Theorem 3" if is_imd else "Theorem 5 (via nested ⊂ interval chain)"
        return KnownBounds(structure, algorithm_class, lower, None, ref, None)
    if structure == "nested":
        return KnownBounds(
            structure, algorithm_class, nested_lower_bound(m), None, "Theorem 5", None
        )
    if structure == "disjoint":
        if k is None:
            raise ValueError("disjoint bounds need k")
        upper = eft_disjoint_ratio(k) if is_eft else None
        return KnownBounds(
            structure,
            algorithm_class,
            lower=2 - 1 / k if k >= 1 else 1.0,
            upper=upper,
            lower_ref="per-group Ambühl & Mastrolilli",
            upper_ref="Corollary 1" if upper else None,
        )
    if structure == "interval":
        if k is None:
            raise ValueError("interval bounds need k")
        if is_eft and 1 < k < m:
            return KnownBounds(
                structure,
                algorithm_class,
                lower=float(eft_interval_lower_bound(m, k)),
                upper=None,
                lower_ref="Theorems 8-10",
                upper_ref=None,
            )
        return KnownBounds(structure, algorithm_class, 2.0, None, "Theorem 7", None)
    if structure == "general":
        if is_imd and k is not None and k >= 2:
            lower = float(max(fixed_k_lower_bound(m, k), 2))
            return KnownBounds(
                structure, algorithm_class, lower, None, "Theorem 4 / Anand et al.", None
            )
        return KnownBounds(
            structure, algorithm_class, m / 2.0, None, "Anand et al. (Omega(m))", None
        )
    raise ValueError(f"unknown structure {structure!r}")
