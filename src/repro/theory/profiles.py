"""Schedule-profile machinery of Theorem 8 (Lemmas 2–6).

For the EFT-Min adversary, the paper tracks the *schedule profile*
:math:`w_t(j) = \\max(0, C_{j,mt} - t)` — the work allocated to machine
:math:`M_j` and still waiting just before the adversary releases the
:math:`m` tasks of step :math:`t` — and shows EFT-Min converges to the
stable profile

.. math::

    w_\\tau(j) = \\min(m - j,\\; m - k).

The convergence argument uses the *weighted distance*

.. math::

    \\varphi_t(j) = 2^{w_\\tau(j)} (m - k + 1 - w_t(j)), \\qquad
    \\Phi_t = \\sum_j \\varphi_t(j),

which Lemma 5 shows non-increasing (strictly decreasing whenever a
"regular" task misses its last machine).  This module computes all of
these quantities so tests and benchmarks can check the lemmas
empirically.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "stable_profile",
    "weighted_distance",
    "total_weighted_distance",
    "profile_leq",
    "profile_lt",
    "is_nonincreasing",
    "find_plateau",
]


def stable_profile(m: int, k: int) -> np.ndarray:
    """The stable profile :math:`w_\\tau(j) = \\min(m-j, m-k)` for
    ``j = 1..m`` (index 0 of the array is machine 1)."""
    if not (1 <= k <= m):
        raise ValueError(f"k={k} outside 1..{m}")
    j = np.arange(1, m + 1)
    return np.minimum(m - j, m - k).astype(float)


def weighted_distance(profile: np.ndarray, m: int, k: int) -> np.ndarray:
    """Per-machine weighted distance
    :math:`\\varphi_t(j) = 2^{w_\\tau(j)}(m - k + 1 - w_t(j))`."""
    w = np.asarray(profile, dtype=float)
    if w.size != m:
        raise ValueError(f"profile has size {w.size}, expected m={m}")
    wtau = stable_profile(m, k)
    return np.power(2.0, wtau) * (m - k + 1 - w)


def total_weighted_distance(profile: np.ndarray, m: int, k: int) -> float:
    """:math:`\\Phi_t = \\sum_j \\varphi_t(j)`."""
    return float(weighted_distance(profile, m, k).sum())


def profile_leq(a: np.ndarray, b: np.ndarray, tol: float = 1e-9) -> bool:
    """Definition 1(ii): ``a`` is *behind* ``b`` (componentwise <=)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b + tol))


def profile_lt(a: np.ndarray, b: np.ndarray, tol: float = 1e-9) -> bool:
    """Definition 1(iii): ``a`` is *strictly behind* ``b``
    (componentwise <= with at least one strict coordinate)."""
    return profile_leq(a, b, tol) and bool(np.any(np.asarray(a) < np.asarray(b) - tol))


def is_nonincreasing(profile: np.ndarray, tol: float = 1e-9) -> bool:
    """Lemma 2's invariant: :math:`w_t(j+1) \\le w_t(j)` for all ``j``."""
    w = np.asarray(profile, dtype=float)
    return bool(np.all(np.diff(w) <= tol))


def find_plateau(profile: np.ndarray, tol: float = 1e-9) -> int | None:
    """First index ``j`` (1-based) with :math:`w_t(j) = w_t(j+1)` —
    the plateau whose propagation drives Lemma 3 — or ``None``."""
    w = np.asarray(profile, dtype=float)
    for j in range(len(w) - 1):
        if abs(w[j] - w[j + 1]) <= tol:
            return j + 1
    return None
