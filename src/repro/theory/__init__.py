"""Closed-form bounds and schedule-profile theory."""

from .bounds import (
    TABLE1,
    TABLE2,
    BoundEntry,
    eft_disjoint_ratio,
    eft_interval_lower_bound,
    fifo_competitive_ratio,
    fixed_k_lower_bound,
    general_lower_bound,
    inclusive_lower_bound,
    interval_any_lower_bound,
    nested_lower_bound,
)
from .lookup import ALGORITHM_CLASSES, KnownBounds, best_known_bounds
from .profiles import (
    find_plateau,
    is_nonincreasing,
    profile_leq,
    profile_lt,
    stable_profile,
    total_weighted_distance,
    weighted_distance,
)

__all__ = [
    "ALGORITHM_CLASSES",
    "BoundEntry",
    "KnownBounds",
    "best_known_bounds",
    "TABLE1",
    "TABLE2",
    "eft_disjoint_ratio",
    "eft_interval_lower_bound",
    "fifo_competitive_ratio",
    "find_plateau",
    "fixed_k_lower_bound",
    "general_lower_bound",
    "inclusive_lower_bound",
    "interval_any_lower_bound",
    "is_nonincreasing",
    "nested_lower_bound",
    "profile_leq",
    "profile_lt",
    "stable_profile",
    "total_weighted_distance",
    "weighted_distance",
]
