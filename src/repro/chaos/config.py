"""The fault mix of a chaos run.

A :class:`ChaosConfig` is pure data — probabilities, a latency bound
and a seed — so a chaos experiment is named by its config exactly like
a campaign is named by its spec: serialise it next to the results and
the run is reproducible bit-for-bit.

Faults are mutually exclusive *per frame*: for each forwarded frame
the proxy draws once and picks at most one of drop / truncate /
corrupt / duplicate, so the probabilities must sum to at most 1 and
each is an exact per-frame rate.  Latency is orthogonal — every frame
is delayed by a uniform draw from ``[0, latency]`` seconds before the
fault draw.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

__all__ = ["ChaosConfig"]

_PROB_FIELDS = ("p_drop", "p_truncate", "p_corrupt", "p_duplicate")


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault mix for a :class:`~repro.chaos.proxy.ChaosProxy`.

    Parameters
    ----------
    seed:
        Root seed; per-connection, per-direction streams are derived
        from it (``stable_seed(seed, conn_id, direction)``), so frame
        faults do not depend on scheduling order across connections.
    p_drop:
        Per-frame probability of dropping the whole connection
        mid-stream (the frame is not forwarded).
    p_truncate:
        Per-frame probability of a partial write: a strict prefix of
        the frame is forwarded, then the connection closes — the peer
        sees a mid-header or mid-frame EOF.
    p_corrupt:
        Per-frame probability of flipping one body byte — the peer
        sees undecodable JSON (or a bad length when the flip lands in
        a small frame's header-adjacent bytes) and must reject it.
    p_duplicate:
        Per-frame probability of forwarding the frame twice — the
        at-least-once delivery failure idempotent submits exist for.
    latency:
        Upper bound (seconds) of a uniform per-frame delay; 0 disables.
    """

    seed: int = 0
    p_drop: float = 0.0
    p_truncate: float = 0.0
    p_corrupt: float = 0.0
    p_duplicate: float = 0.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        for name in _PROB_FIELDS:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        total = sum(getattr(self, name) for name in _PROB_FIELDS)
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault probabilities sum to {total}, must be <= 1")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    @property
    def active(self) -> bool:
        """Whether any fault (or delay) can ever fire."""
        return self.latency > 0 or any(getattr(self, name) > 0 for name in _PROB_FIELDS)

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "ChaosConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ChaosConfig fields: {sorted(unknown)}")
        return cls(**payload)
