"""Deterministic protocol-level chaos for the serve tier.

`repro.chaos` sits *between* a protocol client and a dispatch service
and injects the failures a real network delivers — dropped
connections, latency, partial writes, corrupt and truncated frames,
duplicate deliveries — from a seeded PRNG, so a chaos run is exactly
reproducible: same seed, same faults, same order.

The two halves:

:class:`~repro.chaos.config.ChaosConfig`
    the fault mix (per-frame probabilities + latency bound) and seed;
:class:`~repro.chaos.proxy.ChaosProxy`
    a frame-aware asyncio proxy that listens on its own endpoint,
    forwards length-prefixed JSON frames to the upstream service, and
    applies at most one fault per frame from a per-connection,
    per-direction :class:`random.Random` derived via
    :func:`repro.campaigns.spec.stable_seed`.

Chaos only makes sense against a resilient client
(:mod:`repro.serve.resilient`): retries with backoff, dedupe-keyed
idempotent submits, and a circuit breaker turn injected faults into
measured retries instead of lost work.
"""

from .config import ChaosConfig
from .proxy import ChaosProxy

__all__ = ["ChaosConfig", "ChaosProxy"]
