"""A frame-aware chaos proxy for the length-prefixed JSON protocol.

:class:`ChaosProxy` accepts protocol connections on its own endpoint
and forwards them to an upstream dispatch service, re-framing the
byte stream so faults land on *frame* boundaries — the failure modes
a protocol peer actually observes:

* **drop** — the connection dies mid-stream; the frame is lost and
  both sides see a reset, so an un-acked submit may or may not have
  reached the server (the ambiguity dedupe keys resolve);
* **truncate** — a partial write: a strict prefix of the frame goes
  out, then the connection closes (mid-header or mid-frame EOF);
* **corrupt** — one body byte is flipped, so the peer reads a
  well-framed but undecodable message and must reject it cleanly;
* **duplicate** — the frame is forwarded twice (at-least-once
  delivery); for a submit this is exactly the double-dispatch hazard
  idempotent submits must absorb;
* **latency** — a uniform per-frame delay, the knob that makes ack
  timeouts and retry backoff observable.

Faults draw from a per-connection, *per-direction*
:class:`random.Random` seeded ``stable_seed(seed, conn_id,
direction)``, so a chaos run is a pure function of the config seed and
the order connections are accepted — one resilient driver reconnecting
serially sees an exactly reproducible fault sequence.
"""

from __future__ import annotations

import asyncio
import random
import struct
from pathlib import Path
from typing import Any

from ..campaigns.spec import stable_seed
from ..obs.recorders import MetricsRegistry
from .config import ChaosConfig

__all__ = ["ChaosProxy"]

_HEADER = struct.Struct(">I")

#: refuse to buffer frames beyond this many bytes (a corrupt upstream
#: length must not make the *proxy* allocate unboundedly either).
_MAX_RELAY_FRAME = 1 << 24


class _InjectedDrop(Exception):
    """Internal signal: the fault draw killed this connection."""


class ChaosProxy:
    """Seeded fault injection between a protocol client and service.

    Exactly one upstream endpoint (``upstream_socket`` or
    ``upstream_host``/``upstream_port``) and one listen endpoint
    (``listen_socket`` or ``listen_host``/``listen_port``) must be
    given.  :meth:`start` binds the listener; clients then connect to
    the proxy exactly as they would to the service.
    """

    def __init__(
        self,
        config: ChaosConfig,
        upstream_socket: str | Path | None = None,
        upstream_host: str | None = None,
        upstream_port: int | None = None,
        listen_socket: str | Path | None = None,
        listen_host: str | None = None,
        listen_port: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if (upstream_socket is None) == (upstream_host is None or upstream_port is None):
            raise ValueError("need exactly one of upstream_socket or upstream_host+port")
        if (listen_socket is None) == (listen_host is None or listen_port is None):
            raise ValueError("need exactly one of listen_socket or listen_host+port")
        self.config = config
        self.upstream_socket = None if upstream_socket is None else str(upstream_socket)
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.listen_socket = None if listen_socket is None else str(listen_socket)
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self._conns = self.registry.counter("chaos_connections_total")
        self._frames = self.registry.counter("chaos_frames_total")
        self._dropped = self.registry.counter("chaos_dropped_total")
        self._truncated = self.registry.counter("chaos_truncated_total")
        self._corrupted = self.registry.counter("chaos_corrupted_total")
        self._duplicated = self.registry.counter("chaos_duplicated_total")
        self._delayed = self.registry.counter("chaos_delayed_total")
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        self._next_conn = 0

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("proxy already started")
        if self.listen_socket is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.listen_socket
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.listen_host, port=self.listen_port
            )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- the data path -------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = self._next_conn
        self._next_conn += 1
        self._conns.inc()
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            if self.upstream_socket is not None:
                up_reader, up_writer = await asyncio.open_unix_connection(self.upstream_socket)
            else:
                up_reader, up_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port
                )
        except OSError:
            writer.close()
            return
        c2s = asyncio.ensure_future(self._pump(reader, up_writer, conn_id, "c2s"))
        s2c = asyncio.ensure_future(self._pump(up_reader, writer, conn_id, "s2c"))
        try:
            done, pending = await asyncio.wait(
                {c2s, s2c}, return_when=asyncio.FIRST_COMPLETED
            )
            for p in pending:
                p.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            # stop() cancelling this handler: absorb it so the streams
            # machinery doesn't log a cancelled connection task.
            c2s.cancel()
            s2c.cancel()
            await asyncio.gather(c2s, s2c, return_exceptions=True)
        finally:
            for w in (writer, up_writer):
                w.close()
            for w in (writer, up_writer):
                try:
                    await w.wait_closed()
                except (ConnectionError, BrokenPipeError):  # pragma: no cover
                    pass

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn_id: int,
        direction: str,
    ) -> None:
        """Relay frames one way, applying at most one fault per frame."""
        rng = random.Random(stable_seed(self.config.seed, conn_id, direction))
        cfg = self.config
        try:
            while True:
                try:
                    header = await reader.readexactly(_HEADER.size)
                except asyncio.IncompleteReadError:
                    return  # EOF (clean or mid-header) — just stop relaying
                (length,) = _HEADER.unpack(header)
                if length > _MAX_RELAY_FRAME:
                    # Pass the poisonous header through and let the peer
                    # reject it; there is no body to relay.
                    writer.write(header)
                    await writer.drain()
                    return
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    return
                frame = header + body
                self._frames.inc()
                if cfg.latency > 0:
                    self._delayed.inc()
                    await asyncio.sleep(rng.uniform(0.0, cfg.latency))
                draw = rng.random()
                if draw < cfg.p_drop:
                    self._dropped.inc()
                    raise _InjectedDrop
                draw -= cfg.p_drop
                if draw < cfg.p_truncate:
                    self._truncated.inc()
                    cut = rng.randrange(1, len(frame))
                    writer.write(frame[:cut])
                    await writer.drain()
                    raise _InjectedDrop
                draw -= cfg.p_truncate
                if draw < cfg.p_corrupt:
                    self._corrupted.inc()
                    frame = self._flip_byte(frame, rng)
                    writer.write(frame)
                    await writer.drain()
                    continue
                draw -= cfg.p_corrupt
                if draw < cfg.p_duplicate:
                    self._duplicated.inc()
                    writer.write(frame + frame)
                    await writer.drain()
                    continue
                writer.write(frame)
                await writer.drain()
        except (_InjectedDrop, ConnectionError, BrokenPipeError):
            return

    @staticmethod
    def _flip_byte(frame: bytes, rng: random.Random) -> bytes:
        """Flip one *body* byte (the length prefix stays honest, so the
        peer reads exactly the frame and fails to decode it)."""
        if len(frame) <= _HEADER.size:  # pragma: no cover - headers imply a body here
            return frame
        i = rng.randrange(_HEADER.size, len(frame))
        return frame[:i] + bytes([frame[i] ^ 0xFF]) + frame[i + 1 :]

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {
            "connections": self._conns.value,
            "frames": self._frames.value,
            "dropped": self._dropped.value,
            "truncated": self._truncated.value,
            "corrupted": self._corrupted.value,
            "duplicated": self._duplicated.value,
            "delayed": self._delayed.value,
        }
