"""Candidate replication strategies beyond the paper (future work).

The paper's conclusion leaves open "devising a structured processing
set, or replication strategy, that would provide efficient performance
on average and in the worst case".  This module implements candidate
answers, evaluated by :mod:`repro.explore.evaluate`:

* :class:`DualPartition` — two disjoint partitions of the ring offset
  by :math:`\\lfloor k/2 \\rfloor`; each home uses the group (of the
  two) in which it sits most centrally.  Pairwise, groups are equal,
  disjoint, or half-overlapping — a middle ground between the paper's
  two strategies: more routing freedom than disjoint, fewer chained
  dependencies than overlapping.
* :class:`RandomKSets` — each home maps to ``k`` pseudo-random machines
  (hash-seeded, deterministic).  Destroys interval structure entirely;
  an expander-like spread that maximises routing freedom at the cost
  of any worst-case structure guarantee.
* :class:`MirroredIntervals` — overlapping intervals that alternate
  direction: odd homes replicate clockwise, even homes
  counter-clockwise.  Keeps every set an interval (ring) but breaks
  the uniform chaining that the Theorem 8 adversary exploits.
"""

from __future__ import annotations

import hashlib

from ..psets.replication import DisjointIntervals, OverlappingIntervals, ReplicationStrategy
from ..psets.sets import ring_interval

__all__ = ["DualPartition", "RandomKSets", "MirroredIntervals", "EXPLORATION_STRATEGIES"]


class DualPartition(ReplicationStrategy):
    """Two offset disjoint partitions; homes pick their most central
    group.

    Partition A cuts the ring at multiples of ``k`` starting from
    machine 1; partition B is A shifted by ``floor(k/2)``.  A home
    machine belongs to one group in each partition and uses the group
    where its distance to the group edge is largest (ties prefer A).
    Requires ``k >= 2`` (with ``k = 1`` both partitions degenerate).
    """

    name = "dual"

    def __init__(self, m: int, k: int) -> None:
        super().__init__(m, k)
        self.shift = k // 2

    def _group_a(self, u: int) -> frozenset[int]:
        base = self.k * ((u - 1) // self.k)
        return frozenset(
            (j - 1) % self.m + 1 for j in range(base + 1, base + self.k + 1)
        )

    def _group_b(self, u: int) -> frozenset[int]:
        # shift the ring by `shift`, partition, shift back
        v = (u - 1 - self.shift) % self.m + 1
        base = self.k * ((v - 1) // self.k)
        return frozenset(
            (j - 1 + self.shift) % self.m + 1 for j in range(base + 1, base + self.k + 1)
        )

    @staticmethod
    def _centrality(u: int, group: frozenset[int], m: int) -> int:
        """Minimum ring distance from ``u`` to a machine outside the
        group (larger = more central)."""
        outside = set(range(1, m + 1)) - group
        if not outside:
            return m
        return min(
            min((u - x) % m, (x - u) % m) for x in outside
        )

    def replicas(self, u: int) -> frozenset[int]:
        if not (1 <= u <= self.m):
            raise ValueError(f"machine {u} outside 1..{self.m}")
        a = self._group_a(u)
        b = self._group_b(u)
        if self._centrality(u, b, self.m) > self._centrality(u, a, self.m):
            return b
        return a


class RandomKSets(ReplicationStrategy):
    """Deterministic pseudo-random ``k``-subsets per home machine.

    The subset of home ``u`` is derived from ``blake2b(salt:u)``, so
    the layout is stable across runs and processes (a real system
    would store it in cluster metadata).
    """

    name = "random_k"

    def __init__(self, m: int, k: int, salt: str = "layout") -> None:
        super().__init__(m, k)
        self.salt = salt
        self._cache: dict[int, frozenset[int]] = {}

    def replicas(self, u: int) -> frozenset[int]:
        if not (1 <= u <= self.m):
            raise ValueError(f"machine {u} outside 1..{self.m}")
        cached = self._cache.get(u)
        if cached is not None:
            return cached
        chosen = {u}
        counter = 0
        while len(chosen) < self.k:
            digest = hashlib.blake2b(
                f"{self.salt}:{u}:{counter}".encode(), digest_size=8
            ).digest()
            chosen.add(int.from_bytes(digest, "big") % self.m + 1)
            counter += 1
        out = frozenset(chosen)
        self._cache[u] = out
        return out


class MirroredIntervals(ReplicationStrategy):
    """Ring intervals alternating direction by home parity: odd homes
    replicate on successors, even homes on predecessors."""

    name = "mirrored"

    def replicas(self, u: int) -> frozenset[int]:
        if not (1 <= u <= self.m):
            raise ValueError(f"machine {u} outside 1..{self.m}")
        if u % 2 == 1:
            return ring_interval(u, self.k, self.m)
        start = (u - self.k) % self.m + 1
        return ring_interval(start, self.k, self.m)


#: Strategy constructors used by the exploration harness (the paper's
#: two plus the candidates above; ``disjoint`` is the guaranteed
#: baseline).
EXPLORATION_STRATEGIES = {
    "disjoint": DisjointIntervals,
    "overlapping": OverlappingIntervals,
    "dual": DualPartition,
    "random_k": RandomKSets,
    "mirrored": MirroredIntervals,
}
