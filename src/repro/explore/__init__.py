"""Future-work exploration: replication strategies beyond the paper."""

from .evaluate import StrategyScore, adversarial_probe, evaluate_strategies, score_strategy
from .strategies import (
    EXPLORATION_STRATEGIES,
    DualPartition,
    MirroredIntervals,
    RandomKSets,
)

__all__ = [
    "DualPartition",
    "EXPLORATION_STRATEGIES",
    "MirroredIntervals",
    "RandomKSets",
    "StrategyScore",
    "adversarial_probe",
    "evaluate_strategies",
    "score_strategy",
]
