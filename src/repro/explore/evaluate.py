"""Evaluation harness for candidate replication strategies.

Scores every strategy on the two axes the paper's conclusion cares
about:

1. **Average-case capacity** — median LP (Equation 15) max-load over
   shuffled Zipf popularities, at several biases;
2. **Worst-case latency** — simulated EFT-Min ``Fmax`` under the
   Worst-case popularity near each strategy's own capacity limit, plus
   an adversarial probe: the Theorem 8 batch pattern generalised to
   arbitrary replica layouts (batches that saturate the cluster while
   steering the surplus toward a fixed set of homes).

Also reports structural facts that carry guarantees: a disjoint layout
inherits EFT's ``3 − 2/k`` bound (Corollary 1).
"""

from __future__ import annotations

import numpy as np

from ..core.eft import EFT, eft_schedule
from ..core.task import Instance, Task
from ..experiments.common import TextTable
from ..maxload.lp import max_load_lp
from ..psets.replication import ReplicationStrategy
from ..psets.structures import classify_family
from ..simulation.arrivals import poisson_release_times
from ..simulation.popularity import shuffled_case, worst_case
from .strategies import EXPLORATION_STRATEGIES

__all__ = ["StrategyScore", "score_strategy", "evaluate_strategies", "adversarial_probe"]


class StrategyScore:
    """Scores of one strategy (see module docstring)."""

    def __init__(
        self,
        name: str,
        structure: str,
        median_max_load: float,
        worst_case_max_load: float,
        sim_fmax: float,
        probe_fmax: float,
        guarantee: str,
    ) -> None:
        self.name = name
        self.structure = structure
        self.median_max_load = median_max_load
        self.worst_case_max_load = worst_case_max_load
        self.sim_fmax = sim_fmax
        self.probe_fmax = probe_fmax
        self.guarantee = guarantee


def adversarial_probe(strategy: ReplicationStrategy, steps: int = 200) -> float:
    """Generalised Theorem 8 probe.

    At each integer time, release exactly ``m`` unit tasks: one homed
    on each machine, submitted in *decreasing* home order except that
    the last ``k`` submissions are all homed on machine 1 (the paper's
    batch, expressed through the strategy's own layout).  Under EFT-Min
    this recreates the cascade for overlapping intervals and measures
    how far other layouts let it go.
    """
    m, k = strategy.m, strategy.k
    scheduler = EFT(m, tiebreak="min")
    tid = 0
    # Homes per batch: m-k+1 down to 2 (m-k tasks), then k tasks homed
    # on machine 1 — exactly the Theorem 8 type sequence.
    order = list(range(m - k + 1, 1, -1)) + [1] * k
    for t in range(steps):
        for u in order:
            scheduler.submit(
                Task(tid=tid, release=float(t), proc=1.0, machines=strategy.replicas(u))
            )
            tid += 1
    return scheduler.schedule().max_flow


def score_strategy(
    name: str,
    m: int = 15,
    k: int = 3,
    s: float = 1.0,
    n_permutations: int = 20,
    sim_tasks: int = 3000,
    rng_seed: int = 0,
) -> StrategyScore:
    """Score one strategy by name (see
    :data:`repro.explore.strategies.EXPLORATION_STRATEGIES`)."""
    cls = EXPLORATION_STRATEGIES[name]
    strategy = cls(m, k)
    rng = np.random.default_rng(rng_seed)

    # average-case capacity
    pops = [shuffled_case(m, s, rng) for _ in range(n_permutations)]
    med_load = float(np.median([max_load_lp(p, strategy).load_percent for p in pops]))
    worst_load = max_load_lp(worst_case(m, s), strategy).load_percent

    # simulated latency at 80% of own worst-case capacity
    lam = 0.8 * worst_load / 100.0 * m
    pop = worst_case(m, s)
    fmaxes = []
    for rep in range(3):
        homes = pop.sample_homes(sim_tasks, np.random.default_rng(rng_seed + rep))
        releases = poisson_release_times(lam, sim_tasks, np.random.default_rng(100 + rep))
        tasks = tuple(
            Task(
                tid=i,
                release=float(releases[i]),
                proc=1.0,
                machines=strategy.replicas(int(homes[i])),
            )
            for i in range(sim_tasks)
        )
        inst = Instance(m=m, tasks=tasks)
        fmaxes.append(eft_schedule(inst, tiebreak="min").max_flow)
    sim_fmax = float(np.median(fmaxes))

    probe = adversarial_probe(strategy, steps=10 * m)
    family = strategy.all_sets()
    structure = classify_family(family, m)
    if structure in ("disjoint", "inclusive"):
        guarantee = f"EFT <= {3 - 2 / k:.2f} (Cor 1)"
    else:
        guarantee = "none known"
    return StrategyScore(
        name=name,
        structure=structure,
        median_max_load=med_load,
        worst_case_max_load=worst_load,
        sim_fmax=sim_fmax,
        probe_fmax=probe,
        guarantee=guarantee,
    )


def evaluate_strategies(
    m: int = 15,
    k: int = 3,
    s: float = 1.0,
    names: tuple[str, ...] | None = None,
    **kwargs,
) -> TextTable:
    """Compare all (or the named) strategies; returns a report table."""
    names = tuple(EXPLORATION_STRATEGIES) if names is None else names
    table = TextTable(
        title=f"Replication strategy exploration (m={m}, k={k}, s={s:g})",
        headers=[
            "strategy",
            "structure",
            "median max-load %",
            "worst-case max-load %",
            "sim Fmax @80% own cap",
            "probe Fmax",
            "guarantee",
        ],
    )
    for name in names:
        sc = score_strategy(name, m=m, k=k, s=s, **kwargs)
        table.add_row(
            sc.name,
            sc.structure,
            round(sc.median_max_load, 1),
            round(sc.worst_case_max_load, 1),
            round(sc.sim_fmax, 2),
            round(sc.probe_fmax, 1),
            sc.guarantee,
        )
    table.notes.append(
        "probe = generalized Theorem 8 batch pattern under EFT-Min "
        f"({10 * m} steps); overlapping collapses to m-k+1"
    )
    table.notes.append(
        "disjoint's probe value is capacity divergence (the pattern's home "
        "mix exceeds its max-load), not a scheduling pathology"
    )
    return table
