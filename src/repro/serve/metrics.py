"""Live service metrics, recorded into a :mod:`repro.obs` registry.

:class:`ServeMetrics` is the observability surface of the serving
layer: the dispatcher core drives the decision-path recorders
(requests, dispatches, sheds, parks, requeues, per-machine queue-depth
gauges) and the asyncio service layer drives the completion-path ones
(completions, measured wall flow).  Everything lands in one
:class:`~repro.obs.recorders.MetricsRegistry`, so a snapshot taken at
any instant serialises in the canonical byte-stable format of
:mod:`repro.obs.snapshot` — the same format the campaign ``--metrics``
snapshots use, validatable with ``python -m repro.obs.validate``.

Decision-path metrics are a pure function of the admitted request
stream (the dispatcher is virtual-clocked), so two runs over the same
workload agree on every counter and on the ``est_flow`` histogram;
only the ``wall_flow`` histogram and the sampled gauges reflect
wall-clock reality and may differ between runs.
"""

from __future__ import annotations

from typing import Sequence

from ..obs.recorders import MetricsRegistry
from ..obs.sim import DEFAULT_FLOW_EDGES

__all__ = ["ServeMetrics"]


class ServeMetrics:
    """Recorder bundle of the dispatch service.

    Parameters
    ----------
    registry:
        Registry to record into (a fresh one by default; pass a shared
        one to merge the service into a larger snapshot).
    flow_edges:
        Bucket edges of the ``est_flow`` and ``wall_flow`` histograms,
        in virtual time units.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        flow_edges: Sequence[float] = DEFAULT_FLOW_EDGES,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.requests = self.registry.counter("requests_total")
        self.dispatched = self.registry.counter("dispatched_total")
        self.shed_total = self.registry.counter("shed_total")
        self.completed = self.registry.counter("completed_total")
        self.errors = self.registry.counter("errors_total")
        self.est_flow = self.registry.histogram("est_flow", flow_edges)
        self.wall_flow = self.registry.histogram("wall_flow", flow_edges)

    # -- decision path (dispatcher core) ------------------------------------
    def on_request(self) -> None:
        self.requests.inc()

    def on_dispatch(self, machine: int, est_flow: float, depth: int) -> None:
        self.dispatched.inc()
        self.est_flow.observe(est_flow)
        self.set_depth(machine, depth)

    def on_shed(self, reason: str) -> None:
        self.shed_total.inc()
        self.registry.counter(f"shed_{reason}_total").inc()

    # Fault-path recorders are created lazily (like the simulator's
    # SimRecorder), so a fault-free run's snapshot carries no fault keys.
    def on_park(self, n_parked: int) -> None:
        self.registry.counter("parked_total").inc()
        self.registry.gauge("parked_now").set(n_parked)

    def on_unpark(self, n_parked: int) -> None:
        self.registry.counter("unparked_total").inc()
        self.registry.gauge("parked_now").set(n_parked)

    def on_requeue(self) -> None:
        self.registry.counter("requeued_total").inc()

    # Rebalance recorders are lazy for the same reason: a run that
    # never rebalances must snapshot byte-identically to one that
    # cannot (the no-trigger golden-identity guarantee).
    def on_rebalance(
        self, version: int | None, n_migrated: int, n_added: int
    ) -> None:
        self.registry.counter("rebalance_applied_total").inc()
        self.registry.counter("rebalance_migrated_total").inc(n_migrated)
        self.registry.counter("rebalance_warmup_machines_total").inc(n_added)
        if version is not None:
            self.registry.gauge("placement_version").set(version)

    def on_kill(self, machine: int, n_alive: int) -> None:
        self.registry.counter("machine_kills_total").inc()
        self.registry.gauge("alive_machines").set(n_alive)

    def on_revive(self, machine: int, n_alive: int) -> None:
        self.registry.counter("machine_revives_total").inc()
        self.registry.gauge("alive_machines").set(n_alive)

    def set_depth(self, machine: int, depth: int) -> None:
        self.registry.gauge(f"queue_depth[{machine}]").set(depth)

    # -- completion path (service layer) ------------------------------------
    def on_complete(self, wall_flow: float) -> None:
        self.completed.inc()
        self.wall_flow.observe(wall_flow)

    def on_error(self) -> None:
        self.errors.inc()
