"""Admission control: bounded-queue backpressure and SLO load shedding.

The controller decides *before* a request touches the scheduler, from
the same analytic state the dispatch decision will use — so admission
is deterministic given the request stream, and a shed request consumes
nothing (in particular, no random tie-break draw), leaving the
decisions for every admitted request identical to a run that never saw
the shed ones.

Two independent mechanisms, each optional:

**Bounded queues** (``max_queue_depth``): a request is rejected with
reason ``"queue_full"`` when every alive machine of its processing set
already holds at least ``max_queue_depth`` uncompleted requests — the
classic per-endpoint backpressure of replicated stores.

**SLO shedding** (``slo``): the paper bounds EFT's flow by the waiting
work of the machine a task lands on (the :math:`w_t(j) + p_i` shape of
the Theorem 8 profile argument).  The controller evaluates exactly that
bound and sheds with reason ``"slo"`` when it exceeds the configured
objective.  For EFT the estimate is *exact*, not a bound: whatever the
tie-break, EFT starts task :math:`T_i` at

.. math::

    \\sigma_i = \\max\\bigl(r_i, \\min_{j \\in \\mathcal{M}_i} C_{j,i-1}\\bigr)

because the chosen machine's completion time is at most
:math:`t'_{min,i} = \\max(r_i, \\min_j C_j)` (Equation (2)) and at least
:math:`\\min_j C_j` — so ``estimated_flow`` is the flow the request
*will* achieve if admitted.  For the non-EFT baselines it is a lower
bound (they may pick a busier machine), making the shed decision
conservative: nothing is shed that any immediate-dispatch policy could
have served within the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from ..core.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dispatcher import Dispatcher

__all__ = ["AdmissionController", "SHED_QUEUE_FULL", "SHED_SLO", "estimated_flow"]

SHED_SLO = "slo"
SHED_QUEUE_FULL = "queue_full"


def estimated_flow(
    task: Task, candidates: Iterable[int], completions: Mapping[int, float]
) -> float:
    """Flow ``task`` achieves under EFT over ``candidates`` given the
    machines' committed completion times (exact for EFT, a lower bound
    for other immediate-dispatch policies — see the module notes)."""
    earliest = min(completions[j] for j in candidates)
    return max(task.release, earliest) + task.proc - task.release


@dataclass(frozen=True)
class AdmissionController:
    """Admission policy of a :class:`~repro.serve.dispatcher.Dispatcher`.

    Parameters
    ----------
    slo:
        Maximum acceptable estimated flow (virtual time units), or
        ``None`` to disable SLO shedding.
    max_queue_depth:
        Maximum uncompleted requests per machine before backpressure,
        or ``None`` to disable the bound.
    """

    slo: float | None = None
    max_queue_depth: int | None = None

    def __post_init__(self) -> None:
        if self.slo is not None and self.slo <= 0:
            raise ValueError(f"slo must be > 0, got {self.slo}")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")

    @property
    def enabled(self) -> bool:
        return self.slo is not None or self.max_queue_depth is not None

    def review(
        self, task: Task, candidates: frozenset[int], dispatcher: "Dispatcher"
    ) -> str | None:
        """Shed reason for ``task`` over the alive ``candidates``, or
        ``None`` to admit.  Queue bound first (cheaper), then SLO."""
        if self.max_queue_depth is not None:
            depth = min(dispatcher.depth(j, task.release) for j in candidates)
            if depth >= self.max_queue_depth:
                return SHED_QUEUE_FULL
        if self.slo is not None:
            flow = estimated_flow(task, candidates, dispatcher.scheduler.completions)
            if flow > self.slo:
                return SHED_SLO
        return None
