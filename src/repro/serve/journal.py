"""Write-ahead journal of dispatcher state transitions.

The serving tier's crash-recovery backbone: every state-changing
operation the frontend applies to a :class:`~repro.serve.dispatcher.
Dispatcher` — submit, kill, revive, failure-path redispatch, rebalance
``apply_placement``, and the service-layer ``complete`` — is appended
to an on-disk journal *before* it is acknowledged, so a process that
dies mid-drive can be rebuilt exactly by replaying the log
(:func:`recover` / :meth:`Dispatcher.recover`).

The dispatcher is a *virtual-clocked pure function of its operation
stream* (release stamps, not wall clocks, decide placements), which is
what makes operation-log recovery byte-exact: the journal records the
**inputs** of every transition, replay re-derives the identical
decisions, and a recovered run's assignment digest equals an
uninterrupted run's.  Wall-clocked inputs that do leak into decisions
(the ``now`` of a kill-path redispatch or a revive) are captured in the
record, so replay sees the same values the live path used.

Format — one JSONL record per line::

    {"v": 1, "seq": n, "kind": "...", "data": {...}, "crc": c}

``crc`` is the CRC-32 of the canonical JSON of the envelope without the
``crc`` field, so torn writes are detected structurally *and* by
checksum.  A corrupt or truncated **tail** record is the signature of a
crash mid-append: it is dropped, counted, and never replayed.  A
corrupt record *before* intact ones cannot be produced by a crash and
raises :class:`JournalCorruptError` — silent mid-log data loss must not
recover quietly.

Durability is batched: :meth:`Journal.append` buffers, :meth:`Journal.
commit` flushes and (policy permitting) fsyncs.  The frontend commits
before acking state-changing ops (write-ahead), while ``complete``
records ride the batch — losing a tail ``complete`` merely re-serves an
idempotent unit of simulated work (exactly-once *dispatch*,
at-least-once *service*).

Snapshots bound replay time: :meth:`Journal.write_snapshot` atomically
persists a full state dict (``snapshot.json``, temp-file + rename) and
compacts the WAL down to the records after it.  Recovery loads the
snapshot, then replays the suffix.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "JOURNAL_VERSION",
    "Journal",
    "JournalCorruptError",
    "JournalError",
    "JournalRecord",
    "Recovery",
    "decode_record",
    "encode_record",
    "recover",
    "replay_records",
]

JOURNAL_VERSION = 1

#: fsync policies: "commit" fsyncs on every :meth:`Journal.commit`,
#: "batch" only when the batch counter overflows, "never" flushes to the
#: OS but leaves syncing to the kernel (tests, throwaway runs).
FSYNC_POLICIES = ("commit", "batch", "never")

_WAL = "wal.jsonl"
_SNAPSHOT = "snapshot.json"


class JournalError(RuntimeError):
    """Raised on journal misuse or an unrecoverable journal state."""


class JournalCorruptError(JournalError):
    """Raised when a record *before* intact ones fails validation —
    corruption a crash cannot explain."""


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One decoded journal record."""

    seq: int
    kind: str
    data: Mapping[str, Any]


def _canonical(envelope: dict[str, Any]) -> str:
    return json.dumps(envelope, sort_keys=True, separators=(",", ":"))


def _crc(envelope: dict[str, Any]) -> int:
    return zlib.crc32(_canonical(envelope).encode("utf-8"))


def encode_record(seq: int, kind: str, data: Mapping[str, Any]) -> str:
    """Serialise one record to its JSONL line (no trailing newline)."""
    envelope = {"v": JOURNAL_VERSION, "seq": seq, "kind": kind, "data": dict(data)}
    envelope["crc"] = _crc({k: envelope[k] for k in ("v", "seq", "kind", "data")})
    return _canonical(envelope)


def decode_record(line: str) -> JournalRecord:
    """Parse and validate one JSONL line.

    Raises :class:`JournalCorruptError` on anything malformed: bad
    JSON, missing fields, wrong version, or a CRC mismatch.
    """
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalCorruptError(f"undecodable journal line: {exc}") from exc
    if not isinstance(envelope, dict):
        raise JournalCorruptError(
            f"journal line must be an object, got {type(envelope).__name__}"
        )
    try:
        v = envelope["v"]
        seq = envelope["seq"]
        kind = envelope["kind"]
        data = envelope["data"]
        crc = envelope["crc"]
    except KeyError as exc:
        raise JournalCorruptError(f"journal record missing field {exc}") from exc
    if v != JOURNAL_VERSION:
        raise JournalCorruptError(f"journal version {v!r} unsupported (this end writes v{JOURNAL_VERSION})")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise JournalCorruptError(f"journal record seq must be a positive int, got {seq!r}")
    if not isinstance(kind, str) or not isinstance(data, dict):
        raise JournalCorruptError("journal record kind/data ill-typed")
    if crc != _crc({"v": v, "seq": seq, "kind": kind, "data": data}):
        raise JournalCorruptError(f"journal record seq={seq} failed its CRC check")
    return JournalRecord(seq=seq, kind=kind, data=data)


@dataclass
class _Scan:
    """Outcome of reading a WAL file back."""

    records: list[JournalRecord] = field(default_factory=list)
    n_dropped_tail: int = 0


def _scan_wal(path: Path, base_seq: int) -> _Scan:
    """Read every intact record of ``path`` (seq > ``base_seq``).

    The final record is allowed to be torn (crash mid-append): it is
    dropped and counted.  Corruption anywhere earlier raises.
    """
    scan = _Scan()
    if not path.exists():
        return scan
    raw = path.read_bytes().decode("utf-8", errors="replace")
    lines = raw.split("\n")
    # A well-formed WAL ends with a newline, leaving one trailing empty
    # chunk; anything after the last newline is a torn tail.
    torn_tail = lines[-1] != ""
    body = lines[:-1]
    last_seq = base_seq
    for idx, line in enumerate(body):
        at_tail = torn_tail is False and idx == len(body) - 1
        try:
            record = decode_record(line)
            if record.seq != last_seq + 1:
                raise JournalCorruptError(
                    f"journal sequence gap: expected seq={last_seq + 1}, found {record.seq}"
                )
        except JournalCorruptError:
            if at_tail:
                scan.n_dropped_tail += 1
                return scan
            raise
        scan.records.append(record)
        last_seq = record.seq
    if torn_tail:
        scan.n_dropped_tail += 1
    return scan


class Journal:
    """Append-only, CRC-framed, snapshot-compacted operation log.

    Parameters
    ----------
    root:
        Directory holding ``wal.jsonl`` and ``snapshot.json`` (created
        if missing).
    fsync:
        ``"commit"`` (default: fsync on every :meth:`commit`),
        ``"batch"`` (fsync every ``batch_records`` appends) or
        ``"never"``.
    batch_records:
        Batch size of the ``"batch"`` policy.
    """

    def __init__(self, root: str | Path, fsync: str = "commit", batch_records: int = 64) -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if batch_records < 1:
            raise JournalError(f"batch_records must be >= 1, got {batch_records}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.batch_records = batch_records
        self._wal_path = self.root / _WAL
        self._snapshot_path = self.root / _SNAPSHOT
        self.snapshot_state: dict[str, Any] | None = None
        self.snapshot_seq = 0
        self.n_dropped_tail = 0
        self._pending_records: list[JournalRecord] = self._load()
        self.seq = (
            self._pending_records[-1].seq if self._pending_records else self.snapshot_seq
        )
        self._fh = open(self._wal_path, "a", encoding="utf-8")
        self._unsynced = 0

    # -- reading back --------------------------------------------------------
    def _load(self) -> list[JournalRecord]:
        if self._snapshot_path.exists():
            try:
                envelope = json.loads(self._snapshot_path.read_text("utf-8"))
                crc = envelope.pop("crc")
                if crc != _crc(envelope) or envelope.get("v") != JOURNAL_VERSION:
                    raise JournalCorruptError("snapshot failed its CRC/version check")
                self.snapshot_seq = int(envelope["seq"])
                self.snapshot_state = envelope["state"]
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise JournalCorruptError(f"unreadable snapshot: {exc}") from exc
        scan = _scan_wal(self._wal_path, self.snapshot_seq)
        self.n_dropped_tail = scan.n_dropped_tail
        if scan.n_dropped_tail:
            # Rewrite the WAL without the torn tail so the next append
            # lands on a clean boundary.
            self._rewrite_wal(scan.records)
        return scan.records

    @property
    def has_state(self) -> bool:
        """Whether recovery has anything to rebuild from."""
        return self.snapshot_state is not None or bool(self._pending_records)

    def records(self) -> Iterator[JournalRecord]:
        """The intact records after the snapshot, in append order."""
        return iter(list(self._pending_records))

    # -- appending -----------------------------------------------------------
    def append(self, kind: str, data: Mapping[str, Any], commit: bool = False) -> int:
        """Buffer one record; returns its sequence number."""
        if self._fh.closed:
            raise JournalError("journal is closed")
        self.seq += 1
        line = encode_record(self.seq, kind, data)
        self._fh.write(line + "\n")
        self._pending_records.append(JournalRecord(self.seq, kind, dict(data)))
        self._unsynced += 1
        if commit or (self.fsync == "batch" and self._unsynced >= self.batch_records):
            self.commit()
        return self.seq

    def commit(self) -> None:
        """Flush buffered records; fsync when the policy asks for it."""
        if self._fh.closed:
            return
        self._fh.flush()
        if self.fsync == "commit" or (
            self.fsync == "batch" and self._unsynced >= self.batch_records
        ):
            os.fsync(self._fh.fileno())
        self._unsynced = 0

    # -- snapshots + compaction ----------------------------------------------
    def write_snapshot(self, state: Mapping[str, Any]) -> None:
        """Atomically persist ``state`` at the current seq and compact
        the WAL down to the (normally empty) suffix after it."""
        envelope: dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "seq": self.seq,
            "state": dict(state),
        }
        envelope["crc"] = _crc(envelope)
        tmp = self._snapshot_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_canonical(envelope))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._snapshot_path)
        self.snapshot_state = dict(state)
        self.snapshot_seq = self.seq
        self._fh.close()
        suffix = [r for r in self._pending_records if r.seq > self.snapshot_seq]
        self._rewrite_wal(suffix)
        self._pending_records = suffix
        self._fh = open(self._wal_path, "a", encoding="utf-8")
        self._unsynced = 0

    def _rewrite_wal(self, records: list[JournalRecord]) -> None:
        tmp = self._wal_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for r in records:
                fh.write(encode_record(r.seq, r.kind, r.data) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._wal_path)

    def close(self) -> None:
        if not self._fh.closed:
            self.commit()
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- replay -------------------------------------------------------------------


@dataclass
class Recovery:
    """Everything a restarted service needs to resume.

    ``dedupe`` maps every journaled submit's dedupe key to the decision
    replay re-derived for it, so a retried (duplicate) submit is
    answered with its original outcome instead of being re-dispatched.
    ``completed`` holds the tids whose service finished pre-crash;
    anything placed but not in it is still owed wall-clock service.
    """

    dispatcher: Any
    seq: int = 0
    n_replayed: int = 0
    n_dropped_tail: int = 0
    n_replay_errors: int = 0
    completed: set[int] = field(default_factory=set)
    dedupe: dict[str, Any] = field(default_factory=dict)
    n_completed: int = 0

    def pending(self) -> list[tuple[int, int]]:
        """``(tid, machine)`` of every placed-but-unfinished task, in
        tid order — the work a recovered service must re-enqueue."""
        d = self.dispatcher
        return [
            (tid, machine)
            for tid, (machine, _start) in sorted(d.placements.items())
            if tid not in self.completed
        ]


def replay_records(
    records: Iterator[JournalRecord] | list[JournalRecord],
    dispatcher: Any,
    recovery: Recovery,
) -> None:
    """Apply ``records`` to ``dispatcher`` in order, absorbing their
    effects into ``recovery`` (shared by :func:`recover` and tests that
    replay hand-built streams)."""
    from .protocol import task_from_wire

    for record in records:
        recovery.seq = record.seq
        recovery.n_replayed += 1
        kind, data = record.kind, record.data
        try:
            if kind == "submit":
                task = task_from_wire(data["task"])
                decision = dispatcher.submit(task)
                key = data.get("dedupe")
                if key is not None:
                    recovery.dedupe[key] = decision
            elif kind == "kill":
                dispatcher.kill(int(data["machine"]))
            elif kind == "revive":
                dispatcher.revive(int(data["machine"]), float(data["now"]))
            elif kind == "redispatch":
                tid = int(data["tid"])
                task = dispatcher._tasks.get(tid)
                if task is None:
                    raise JournalCorruptError(
                        f"redispatch of unknown tid {tid} (journal suffix without its submit)"
                    )
                dispatcher.redispatch(task, float(data["now"]), reason=data.get("reason", "failure"))
            elif kind == "rebalance":
                dispatcher.apply_placement(
                    {int(u): frozenset(s) for u, s in data["old"].items()},
                    {int(u): frozenset(s) for u, s in data["new"].items()},
                    float(data["now"]),
                    warmup=float(data.get("warmup", 0.0)),
                    version=data.get("version"),
                )
            elif kind == "complete":
                tid = int(data["tid"])
                recovery.completed.add(tid)
                recovery.n_completed += 1
            else:
                raise JournalCorruptError(f"unknown journal record kind {kind!r}")
        except JournalCorruptError:
            raise
        except ValueError:
            # The live path hit the same validator (e.g. an out-of-order
            # release rejected by the scheduler) *after* journaling the
            # write-ahead record; the operation changed nothing then and
            # changes nothing now.
            recovery.n_replay_errors += 1


def recover(
    journal: Journal,
    make_dispatcher: Callable[[], Any],
    restore_state: Callable[[Any, Mapping[str, Any]], None] | None = None,
) -> Recovery:
    """Rebuild a dispatcher from ``journal``.

    ``make_dispatcher`` builds the blank dispatcher (same scheduler /
    admission / metrics wiring as the crashed process — recovery
    re-derives decisions, so the wiring must match).  When the journal
    holds a snapshot it is loaded first via ``restore_state`` (defaults
    to the dispatcher's own ``load_state_dict``), then the WAL suffix
    replays on top.
    """
    dispatcher = make_dispatcher()
    recovery = Recovery(dispatcher=dispatcher, n_dropped_tail=journal.n_dropped_tail)
    if journal.snapshot_state is not None:
        state = journal.snapshot_state
        if restore_state is not None:
            restore_state(dispatcher, state["dispatcher"])
        else:
            dispatcher.load_state_dict(state["dispatcher"])
        service = state.get("service", {})
        recovery.completed = set(int(t) for t in service.get("completed", []))
        recovery.n_completed = int(service.get("n_completed", len(recovery.completed)))
        from .protocol import task_from_wire  # local: journal stays protocol-light

        from .dispatcher import DispatchDecision

        for key, wire in service.get("dedupe", {}).items():
            recovery.dedupe[key] = DispatchDecision(
                task=task_from_wire(wire["task"]),
                status=wire["status"],
                machine=wire.get("machine"),
                start=wire.get("start"),
                est_flow=wire.get("est_flow"),
                reason=wire.get("reason"),
            )
        recovery.seq = journal.snapshot_seq
    replay_records(journal.records(), dispatcher, recovery)
    return recovery
