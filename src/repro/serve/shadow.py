"""Virtual-time shadow mode: the service cross-checked against the engine.

The live :class:`~repro.serve.dispatcher.Dispatcher` and the
discrete-event :class:`~repro.simulation.engine.Simulator` drive the
*same* scheduler object through the same ``submit`` contract, so on a
recorded arrival stream they must take identical decisions.  Shadow
mode makes that an executable guarantee: replay a stream through the
dispatcher with admission disabled, record the committed schedule as a
:mod:`repro.campaigns.trace` and compare **bytes** with the trace the
engine (or the checked-in golden fixture) produces.

This is the deployment safety net: any change to the serving layer
that would alter a placement — a reordered tie-break, a drifted
completion-time bookkeeping, an admission check that leaks into the
admitted path — shows up as a golden diff before it ships.
"""

from __future__ import annotations

from ..campaigns.goldens import GOLDEN_CASES, GoldenMismatch, golden_path
from ..campaigns.trace import Trace, dumps, record
from ..core.dispatch import ImmediateDispatchScheduler
from ..core.task import Instance
from .dispatcher import DispatchDecision, Dispatcher

__all__ = [
    "check_shadow_golden",
    "shadow_golden_trace",
    "shadow_replay",
    "shadow_trace",
]


def shadow_replay(
    instance: Instance, scheduler: ImmediateDispatchScheduler
) -> tuple[Dispatcher, list[DispatchDecision]]:
    """Feed ``instance`` through a fresh :class:`Dispatcher` in virtual
    time (no admission, no faults) and return it with its decisions."""
    if scheduler.m != instance.m:
        raise ValueError(f"instance has m={instance.m}, scheduler has m={scheduler.m}")
    if scheduler.n_dispatched:
        raise ValueError("shadow replay needs a fresh scheduler (tasks already dispatched)")
    dispatcher = Dispatcher(scheduler)
    decisions = [dispatcher.submit(task) for task in instance]
    return dispatcher, decisions


def shadow_trace(
    instance: Instance,
    scheduler: ImmediateDispatchScheduler,
    meta: dict | None = None,
) -> Trace:
    """The schedule trace of a shadow replay, in the exact format
    :func:`repro.campaigns.trace.record` emits for the engine."""
    dispatcher, _ = shadow_replay(instance, scheduler)
    return record(dispatcher.schedule(), scheduler=scheduler.name, meta=meta or {})


def shadow_golden_trace(name: str) -> Trace:
    """Regenerate the golden case ``name`` through the *dispatcher*
    (not the bare scheduler), with the golden's own provenance meta —
    byte-comparable to the checked-in fixture."""
    case = GOLDEN_CASES[name]
    return shadow_trace(
        case.make_instance(),
        case.make_scheduler(),
        meta={"golden": name, "description": case.description},
    )


def check_shadow_golden(name: str) -> Trace:
    """Assert the dispatcher reproduces golden ``name`` byte-for-byte.

    Returns the shadow trace on success; raises
    :class:`~repro.campaigns.goldens.GoldenMismatch` otherwise.
    """
    path = golden_path(name)
    if not path.is_file():
        raise GoldenMismatch(f"golden {name!r} missing on disk: {path}")
    shadow = shadow_golden_trace(name)
    if dumps(shadow) != path.read_text():
        raise GoldenMismatch(
            f"shadow dispatcher diverged from golden {name!r}: trace is not "
            f"byte-identical to {path}"
        )
    return shadow
