"""Client-side resilience: the driver that survives a hostile network.

:func:`drive_resilient` is the open-loop driver of
:mod:`repro.serve.driver` rebuilt for lossy transport — the client end
of the crash/chaos story.  Three mechanisms, composed:

* **timeout + bounded exponential backoff** — every submit must be
  acked within ``ack_timeout``; a timeout, dropped connection, or
  corrupt frame tears the connection down and the driver reconnects
  after a deterministic backoff (:class:`repro.campaigns.runner.
  RetryPolicy` — the campaign tier's retry schedule, reused verbatim);
* **idempotent submits** — every submit carries a ``dedupe`` key
  (``"{prefix}:{tid}"``); on reconnect the driver resends everything
  sent-but-unacked *in tid order* before resuming fresh sends, and the
  service answers repeats from its decision cache without dispatching,
  so at-least-once delivery never becomes more-than-once dispatch, and
  the assignment digest of a chaos run equals the clean run's;
* **a per-connection circuit breaker** — ``breaker_threshold``
  consecutive failed connection epochs open the breaker and hold
  reconnection attempts off for ``breaker_cooldown`` seconds (on top
  of backoff), then probe half-open.

Release-order is preserved across reconnects: within every connection
frames are sequential and sent in tid order, and resends always carry
tids below the next fresh tid, so the *first* time the service sees
each submit is in tid (= release) order — exactly the stream an
uninterrupted drive delivers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..campaigns.runner import RetryPolicy
from ..core.task import Instance, Task
from .driver import DriveReport
from .protocol import ProtocolError, read_frame, task_to_wire, versioned, write_frame

__all__ = ["CircuitBreaker", "ClientResilience", "ResilienceExhausted", "drive_resilient"]


class ResilienceExhausted(RuntimeError):
    """The retry budget ran out with submits still unacknowledged."""


class CircuitBreaker:
    """Consecutive-failure breaker over connection epochs.

    ``threshold`` consecutive failures open the breaker; while open,
    :meth:`holdoff` returns the remaining cooldown.  After the cooldown
    the breaker is half-open — one attempt may probe; a further failure
    re-opens (restarting the cooldown), a success closes it.  Clocks
    are passed in (``loop.time()`` values) so the breaker itself stays
    deterministic and testable.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 1.0) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.opened_at: float | None = None
        self.n_opens = 0

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            if self.opened_at is None:
                self.n_opens += 1
            self.opened_at = now

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None

    def holdoff(self, now: float) -> float:
        """Seconds the caller must wait before the next attempt."""
        if self.opened_at is None:
            return 0.0
        return max(0.0, self.opened_at + self.cooldown - now)

    def state(self, now: float) -> str:
        if self.opened_at is None:
            return "closed"
        return "open" if self.holdoff(now) > 0 else "half-open"


@dataclass(frozen=True)
class ClientResilience:
    """The retry/timeout/breaker envelope of a resilient drive."""

    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(retries=10, backoff=0.05, max_backoff=2.0)
    )
    ack_timeout: float = 2.0
    breaker_threshold: int = 5
    breaker_cooldown: float = 0.5

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be > 0, got {self.ack_timeout}")
        # breaker params validated by CircuitBreaker at build time
        CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)

    def make_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)


async def drive_resilient(
    instance: Instance,
    socket_path: str | Path | None = None,
    host: str | None = None,
    port: int | None = None,
    time_scale: float = 1.0,
    target_rate: float | None = None,
    resilience: ClientResilience | None = None,
    dedupe_prefix: str = "drive",
    drain: bool = True,
    stats: bool = True,
    shutdown: bool = False,
) -> DriveReport:
    """Replay ``instance`` over an unreliable transport and report.

    Semantics match :func:`repro.serve.driver.drive` — open-loop
    pacing, same report — plus the resilience envelope: the run either
    acks *every* submit exactly once (``n_errors`` still counts only
    server-side rejections) or raises :class:`ResilienceExhausted`.
    """
    if (socket_path is None) == (host is None or port is None):
        raise ValueError("drive_resilient needs exactly one of socket_path or host+port")
    if time_scale <= 0:
        raise ValueError("time_scale must be > 0")
    res = resilience if resilience is not None else ClientResilience()
    breaker = res.make_breaker()
    report = DriveReport(target_rate=target_rate)
    tasks = list(instance)
    n = len(tasks)
    acks: dict[int, dict[str, Any]] = {}
    unacked: dict[int, Task] = {}  # sent but not yet acked, keyed by tid
    sent: set[int] = set()
    next_i = 0  # index of the next fresh (never-sent) task
    loop = asyncio.get_running_loop()
    attempt = 0  # consecutive no-progress connection epochs

    async def connect() -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        hold = breaker.holdoff(loop.time())
        if hold > 0:
            await asyncio.sleep(hold)
        if socket_path is not None:
            return await asyncio.open_unix_connection(path=str(socket_path))
        return await asyncio.open_connection(host=host, port=port)

    def submit_frame(task: Task) -> dict[str, Any]:
        return versioned(
            {
                "op": "submit",
                **task_to_wire(task),
                "dedupe": f"{dedupe_prefix}:{task.tid}",
            }
        )

    async def sender(writer: asyncio.StreamWriter, t0: float) -> None:
        nonlocal next_i
        for tid in sorted(unacked):
            await write_frame(writer, submit_frame(unacked[tid]))
            report.n_retries += 1
        while next_i < n:
            task = tasks[next_i]
            delay = t0 + task.release * time_scale - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await write_frame(writer, submit_frame(task))
            unacked[task.tid] = task
            sent.add(task.tid)
            report.n_sent += 1
            next_i += 1

    async def receiver(reader: asyncio.StreamReader) -> None:
        while len(acks) < n:
            try:
                message = await asyncio.wait_for(read_frame(reader), res.ack_timeout)
            except asyncio.TimeoutError:
                if unacked:
                    raise
                continue  # nothing in flight — keep listening
            if message is None:
                raise ConnectionResetError("server closed the connection")
            tid = message.get("tid")
            if tid is None:
                # an un-addressed error frame: the server lost framing
                # on our stream and is about to drop the connection
                raise ProtocolError(str(message.get("error", "unaddressed error frame")))
            tid = int(tid)
            if tid in acks:
                report.n_dup_acks += 1
                continue
            acks[tid] = message
            unacked.pop(tid, None)

    t0 = loop.time()
    reader: asyncio.StreamReader | None = None
    writer: asyncio.StreamWriter | None = None
    recoverable = (ProtocolError, OSError, EOFError, asyncio.TimeoutError, TimeoutError)

    async def teardown() -> None:
        nonlocal reader, writer
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass
        reader = writer = None

    try:
        while len(acks) < n:
            acked_before = len(acks)
            try:
                reader, writer = await connect()
                send_task = loop.create_task(sender(writer, t0))
                recv_task = loop.create_task(receiver(reader))
                done, pending = await asyncio.wait(
                    {send_task, recv_task}, return_when=asyncio.FIRST_EXCEPTION
                )
                for p in pending:
                    p.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                for d in done:
                    if d.exception() is not None:
                        raise d.exception()
            except recoverable:
                await teardown()
                if len(acks) > acked_before:
                    attempt = 0
                    breaker.record_success()
                else:
                    attempt += 1
                breaker.record_failure(loop.time())
                if attempt > res.retry.retries:
                    raise ResilienceExhausted(
                        f"{len(acks)}/{n} acked after {attempt} consecutive "
                        "failed connection attempts"
                    )
                report.n_reconnects += 1
                await asyncio.sleep(res.retry.delay(dedupe_prefix, max(attempt, 1)))
            else:
                breaker.record_success()
                attempt = 0
        report.elapsed = loop.time() - t0

        # Post-drive control ops, with the same reconnect envelope.
        async def request(message: dict[str, Any]) -> dict[str, Any] | None:
            nonlocal reader, writer, attempt
            timeout = max(10.0, 20 * res.ack_timeout)
            while True:
                try:
                    if writer is None:
                        reader, writer = await connect()
                    await write_frame(writer, message)
                    response = await asyncio.wait_for(read_frame(reader), timeout)
                    if response is None:
                        raise ConnectionResetError("server closed during control op")
                    attempt = 0
                    breaker.record_success()
                    return response
                except recoverable:
                    await teardown()
                    attempt += 1
                    breaker.record_failure(loop.time())
                    if attempt > res.retry.retries:
                        raise ResilienceExhausted(
                            f"control op {message.get('op')!r} failed after "
                            f"{attempt} attempts"
                        )
                    report.n_reconnects += 1
                    await asyncio.sleep(res.retry.delay(dedupe_prefix, max(attempt, 1)))

        if drain:
            await request({"op": "drain"})
        if stats:
            response = await request({"op": "stats"})
            if response is not None and response.get("ok"):
                report.server_stats = response.get("stats")
        if shutdown:
            await request({"op": "shutdown"})
    finally:
        await teardown()

    for task in tasks:
        ack = acks.get(task.tid)
        if ack is None or not ack.get("ok"):
            report.n_errors += 1
            continue
        report.n_acked += 1
        status = ack.get("status")
        if status == "dispatched" or status == "requeued":
            report.n_dispatched += 1
            report.assignments.append((ack["tid"], ack["machine"]))
            report.est_flows.append(float(ack["est_flow"]))
        elif status == "shed":
            report.n_shed += 1
            reason = ack.get("reason") or "unknown"
            report.shed_by_reason[reason] = report.shed_by_reason.get(reason, 0) + 1
        elif status == "parked":
            report.n_parked += 1
    return report
