"""Wire protocol of the dispatch service: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one message object.  The framing is
deliberately minimal — any language can speak it with a socket and a
JSON library — and symmetric: requests and responses use the same
encoding.

Requests are objects with an ``op`` field:

``{"op": "ping"}``
    liveness probe; answered with ``{"ok": true, "op": "pong", "now": t}``
    where ``t`` is the service's current *virtual* time.
``{"op": "submit", "tid": i, "release": r, "proc": p,
  "machine_set": [..] | null, "key": k | null, "dedupe": d | null}``
    one request of the online stream (the wire form of
    :class:`repro.core.task.Task`); answered immediately with the
    dispatch decision — the service never blocks a submit on service
    completion.  ``dedupe`` (optional) is an idempotency key: a repeat
    submit carrying a key the service has already decided is answered
    with the *original* decision and dispatches nothing, so a client
    retrying over a lossy link can never double-dispatch.
``{"op": "stats"}``
    answered with the live metrics snapshot and service counters.
``{"op": "drain"}``
    blocks until every dispatched request has finished service.
``{"op": "shutdown"}``
    acknowledges, then stops the server.

Every response carries ``"ok"`` (``false`` plus an ``"error"`` string
when the request could not be handled — a malformed task, an
out-of-order release — so one bad request never tears down the
connection).

Versioning: a message may carry a ``"v"`` field naming the protocol
version it speaks.  Frames without ``"v"`` are treated as the current
version (the pre-versioning wire form stays valid); frames carrying a
*different* version are answered with an error response that names
both versions, so a router and a shard built from different revisions
detect the skew on the first frame instead of mis-parsing each other
(:func:`check_version`, :func:`versioned`).
"""

from __future__ import annotations

import asyncio
import json
import math
import struct
from typing import Any

from ..core.task import Task

__all__ = [
    "FrameTooLargeError",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "check_version",
    "decode_frame",
    "encode_frame",
    "parse_length",
    "read_frame",
    "validate_length",
    "task_from_wire",
    "task_to_wire",
    "version_error",
    "versioned",
    "write_frame",
]

PROTOCOL_VERSION = 1

#: Frames above this size are rejected — a corrupted length prefix must
#: not make the reader allocate gigabytes.
MAX_FRAME = 1 << 20

_HEADER = struct.Struct(">I")


class ProtocolError(ValueError):
    """Raised on malformed frames or messages."""


class FrameTooLargeError(ProtocolError):
    """A declared (or encoded) frame length exceeds :data:`MAX_FRAME`.

    Typed separately from the generic :class:`ProtocolError` so callers
    can distinguish an adversarial/corrupt length prefix — which must
    never turn into an unbounded read — from ordinary framing damage."""


def parse_length(header: bytes) -> int:
    """Validate a length prefix and return the frame body length.

    The wire prefix is a 4-byte big-endian unsigned int, but this
    accepts any ``bytes`` of the right size and enforces the full
    contract: a short/long header, a non-integer or negative length
    (possible if a future transport hands lengths around out-of-band)
    is a :class:`ProtocolError`; a length beyond :data:`MAX_FRAME` is a
    :class:`FrameTooLargeError` — the reader must refuse to allocate,
    not attempt the read.
    """
    if len(header) != _HEADER.size:
        raise ProtocolError(f"frame header must be {_HEADER.size} bytes, got {len(header)}")
    (length,) = _HEADER.unpack(header)
    return validate_length(length)


def validate_length(length: object) -> int:
    """The length-prefix contract on an already-decoded value."""
    if isinstance(length, bool) or not isinstance(length, int):
        raise ProtocolError(f"frame length must be an int, got {type(length).__name__}")
    if length < 0:
        raise ProtocolError(f"frame length must be >= 0, got {length}")
    if length > MAX_FRAME:
        raise FrameTooLargeError(f"declared frame length {length} exceeds MAX_FRAME={MAX_FRAME}")
    return length


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialise ``message`` to one wire frame (header + JSON body)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameTooLargeError(f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> dict[str, Any]:
    """Parse a frame body (the bytes after the length prefix)."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(message).__name__}")
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-header") from exc
    length = parse_length(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, message: dict[str, Any]) -> None:
    """Encode and send one frame, waiting for the transport to drain."""
    writer.write(encode_frame(message))
    await writer.drain()


def versioned(message: dict[str, Any]) -> dict[str, Any]:
    """Copy of ``message`` stamped with the current protocol version."""
    return {"v": PROTOCOL_VERSION, **message}


def check_version(message: dict[str, Any]) -> str | None:
    """Version-mismatch complaint for ``message``, or ``None`` if it is
    speakable.  Messages without a ``"v"`` field pass (implicit current
    version); any other value than :data:`PROTOCOL_VERSION` fails."""
    v = message.get("v")
    if v is None or v == PROTOCOL_VERSION:
        return None
    return f"protocol version mismatch: peer speaks v{v!r}, this end speaks v{PROTOCOL_VERSION}"


def version_error(message: dict[str, Any], complaint: str) -> dict[str, Any]:
    """The error response for a version-mismatched request — carries
    this end's version so the peer can log both sides of the skew."""
    return {
        "ok": False,
        "op": message.get("op"),
        "v": PROTOCOL_VERSION,
        "error": complaint,
    }


def task_to_wire(task: Task) -> dict[str, Any]:
    """The ``submit`` payload for ``task`` (sans the ``op`` field)."""
    return {
        "tid": task.tid,
        "release": task.release,
        "proc": task.proc,
        "machine_set": None if task.machines is None else sorted(task.machines),
        "key": task.key,
    }


def task_from_wire(message: dict[str, Any]) -> Task:
    """Build the :class:`Task` of a ``submit`` message.

    Raises :class:`ProtocolError` on missing or ill-typed fields (the
    :class:`Task` validators catch the value errors: negative release,
    non-positive proc, empty or out-of-range machine sets).
    """
    try:
        tid = int(message["tid"])
        release = float(message["release"])
        proc = float(message["proc"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed submit message: {exc}") from exc
    # Python's json module happily emits and parses NaN/Infinity, and
    # the Task validators don't catch NaN (``nan < 0`` is false), so
    # non-finite stamps must be rejected at the wire boundary.
    if not math.isfinite(release):
        raise ProtocolError(f"non-finite release {release!r}")
    if not math.isfinite(proc):
        raise ProtocolError(f"non-finite proc {proc!r}")
    machine_set = message.get("machine_set")
    if machine_set is not None:
        try:
            machine_set = frozenset(int(j) for j in machine_set)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed machine_set: {exc}") from exc
    key = message.get("key")
    try:
        return Task(
            tid=tid,
            release=release,
            proc=proc,
            machines=machine_set,
            key=None if key is None else int(key),
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
