"""The chaos benchmark: drive a sharded fleet through faults and a
crash, and prove nothing was lost.

``run_chaos_loopback_sync`` is :func:`repro.serve.shard.bench.
run_sharded_loopback_sync` with the full robustness stack switched on:

* every shard server journals to its own ``journal_dir``
  (:mod:`repro.serve.journal`), so a killed process is recoverable;
* a :class:`~repro.serve.supervisor.ShardSupervisor` watches the shard
  processes and restarts any that die — including the one this bench
  deliberately SIGKILLs mid-drive (``kill_shard`` / ``kill_after``);
* every client connection runs through a seeded
  :class:`~repro.chaos.proxy.ChaosProxy` injecting drops, latency,
  corrupt/truncated frames and duplicate deliveries;
* the drivers are :func:`~repro.serve.resilient.drive_resilient` —
  retry + dedupe + circuit breaker — so injected faults become counted
  retries instead of lost work.

The result carries the two numbers the acceptance bar is built on —
``lost`` (submitted but never acknowledged) and ``double_dispatched``
(server-side dispatch count in excess of unique client-side dispatch
acks) — plus recovery times and fault counters.  A correct stack
reports ``lost: 0`` and ``double-dispatched: 0`` with the merged
assignment digest equal to an undisturbed run's (``make chaos-smoke``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..campaigns.spec import stable_seed
from ..chaos import ChaosConfig, ChaosProxy
from ..core.task import Instance
from .driver import DriveReport
from .resilient import ClientResilience, drive_resilient
from .shard.bench import partition_instance, plan_for_instance
from .shard.plan import ShardPlan
from .supervisor import ShardSupervisor

__all__ = ["ChaosBenchResult", "run_chaos_loopback", "run_chaos_loopback_sync"]


@dataclass
class ChaosBenchResult:
    """Outcome of one chaos drive: the merged report plus the loss /
    duplication accounting and every fault and recovery counter."""

    report: DriveReport
    chaos: dict[str, Any]
    n_tasks: int
    lost: int
    double_dispatched: int | None
    killed_shards: list[int] = field(default_factory=list)
    recovery_seconds: list[float] = field(default_factory=list)
    restarts: dict[int, int] = field(default_factory=dict)
    proxy_stats: dict[int, dict[str, int]] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        totals: dict[str, int] = {}
        for stats in self.proxy_stats.values():
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return {
            "n_tasks": self.n_tasks,
            "lost": self.lost,
            "double_dispatched": self.double_dispatched,
            "killed_shards": self.killed_shards,
            "recovery_seconds": self.recovery_seconds,
            "restarts": {str(sid): n for sid, n in sorted(self.restarts.items())},
            "chaos": self.chaos,
            "faults": totals,
            "retries": self.report.n_retries,
            "reconnects": self.report.n_reconnects,
            "dup_acks": self.report.n_dup_acks,
            "elapsed": self.report.elapsed,
            "assignments_digest": self.report.assignments_digest,
        }

    def to_text(self) -> str:
        lines = [
            f"chaos bench: {self.n_tasks} tasks, "
            f"killed shards {self.killed_shards or 'none'}",
            f"lost: {self.lost}  double-dispatched: "
            + ("unknown" if self.double_dispatched is None else str(self.double_dispatched)),
        ]
        if self.recovery_seconds:
            mean = sum(self.recovery_seconds) / len(self.recovery_seconds)
            lines.append(
                f"recoveries: {len(self.recovery_seconds)} "
                f"(mean {mean:.3f} s, max {max(self.recovery_seconds):.3f} s)"
            )
        totals = self.to_json()["faults"]
        if totals.get("frames"):
            lines.append(
                "chaos faults: "
                + "  ".join(
                    f"{k} {totals[k]}"
                    for k in ("frames", "dropped", "truncated", "corrupted", "duplicated")
                    if k in totals
                )
            )
        lines.append(self.report.to_text())
        return "\n".join(lines)


async def _chaos_drive(
    parts: Mapping[int, Instance],
    supervisor: ShardSupervisor,
    tmp: Path,
    chaos: ChaosConfig,
    resilience: ClientResilience,
    order: list[int],
    time_scale: float,
    target_rate: float | None,
    kill_shard: int | None,
    kill_delay: float,
) -> tuple[DriveReport, dict[int, dict[str, int]], list[int]]:
    sids = sorted(parts)
    proxies: dict[int, ChaosProxy] = {}
    proxy_socks: dict[int, str] = {}
    killed: list[int] = []
    for sid in sids:
        listen = str(tmp / f"proxy{sid}.sock")
        proxy_socks[sid] = listen
        # Decorrelate the fault streams across shards while keeping the
        # whole run a pure function of the one config seed.
        per_shard = dataclasses.replace(chaos, seed=stable_seed(chaos.seed, "shard", sid))
        proxies[sid] = ChaosProxy(
            per_shard,
            upstream_socket=supervisor.socket_path(sid),
            listen_socket=listen,
        )
    background: list[asyncio.Task] = []
    loop = asyncio.get_running_loop()
    try:
        for proxy in proxies.values():
            await proxy.start()
        background.append(loop.create_task(supervisor.watch()))

        async def killer() -> None:
            await asyncio.sleep(kill_delay)
            await asyncio.to_thread(supervisor.kill, kill_shard)
            killed.append(kill_shard)

        if kill_shard is not None:
            background.append(loop.create_task(killer()))
        reports = await asyncio.gather(
            *(
                drive_resilient(
                    parts[sid],
                    socket_path=proxy_socks[sid],
                    time_scale=time_scale,
                    resilience=resilience,
                    dedupe_prefix=f"shard{sid}",
                    shutdown=False,
                )
                for sid in sids
            )
        )
    finally:
        for task in background:
            task.cancel()
        await asyncio.gather(*background, return_exceptions=True)
        for proxy in proxies.values():
            await proxy.stop()
    merged = DriveReport.merge(list(reports), order=order)
    merged.target_rate = target_rate
    stats = {sid: proxies[sid].stats() for sid in sids}
    return merged, stats, killed


def run_chaos_loopback_sync(
    instance: Instance,
    n_shards: int,
    scheduler: str = "eft-min",
    seed: int = 0,
    time_scale: float = 1.0,
    target_rate: float | None = None,
    plan: ShardPlan | None = None,
    chaos: ChaosConfig | None = None,
    resilience: ClientResilience | None = None,
    kill_shard: int | None = None,
    kill_after: float = 0.5,
    journal_fsync: str = "commit",
    snapshot_every: int = 0,
) -> ChaosBenchResult:
    """Drive ``instance`` through chaos proxies against supervised,
    journalled shard servers; optionally SIGKILL shard ``kill_shard``
    at ``kill_after`` (fraction of the workload's release span) into
    the drive and let the supervisor recover it.

    Returns the merged report with loss/duplication accounting; the
    digest is comparable to :func:`run_sharded_loopback_sync` of the
    same workload — chaos and a crash must not change placements.
    """
    if plan is None:
        plan = plan_for_instance(instance, n_shards)
    if plan.m != instance.m:
        raise ValueError(f"instance has m={instance.m}, plan has m={plan.m}")
    if not 0.0 <= kill_after <= 1.0:
        raise ValueError(f"kill_after must be in [0, 1], got {kill_after}")
    chaos = chaos if chaos is not None else ChaosConfig()
    resilience = resilience if resilience is not None else ClientResilience()
    parts = partition_instance(instance, plan)
    if kill_shard is not None and kill_shard not in parts:
        raise ValueError(f"kill_shard={kill_shard} has no tasks (shards: {sorted(parts)})")
    order = [t.tid for t in instance]
    n_tasks = len(order)
    max_release = max((t.release for t in instance), default=0.0)
    kill_delay = kill_after * max_release * time_scale
    supervisor = ShardSupervisor()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        tmp = Path(tmpdir)
        for sid in sorted(parts):
            supervisor.add_shard(
                sid,
                {
                    "m": instance.m,
                    "scheduler": scheduler,
                    "seed": seed + sid,
                    "time_scale": time_scale,
                    "journal_dir": str(tmp / f"journal{sid}"),
                    "journal_fsync": journal_fsync,
                    "journal_snapshot_every": snapshot_every,
                },
                tmp / f"shard{sid}.sock",
            )
        try:
            supervisor.start_all()
            report, proxy_stats, killed = asyncio.run(
                _chaos_drive(
                    parts,
                    supervisor,
                    tmp,
                    chaos,
                    resilience,
                    order,
                    time_scale,
                    target_rate,
                    kill_shard,
                    kill_delay,
                )
            )
        finally:
            supervisor.stop_all()
    shard_stats = (
        report.server_stats.get("shards", []) if report.server_stats is not None else []
    )
    if len(shard_stats) == len(parts) and all("dispatched" in s for s in shard_stats):
        server_dispatched = sum(s["dispatched"] for s in shard_stats)
    else:
        server_dispatched = None
    return ChaosBenchResult(
        report=report,
        chaos=chaos.to_json(),
        n_tasks=n_tasks,
        lost=n_tasks - report.n_acked,
        double_dispatched=(
            None if server_dispatched is None else server_dispatched - report.n_dispatched
        ),
        killed_shards=killed,
        recovery_seconds=list(supervisor.recovery_seconds),
        restarts=dict(supervisor.restarts),
        proxy_stats=proxy_stats,
    )


async def run_chaos_loopback(
    instance: Instance,
    n_shards: int,
    **kwargs: Any,
) -> ChaosBenchResult:
    """Async wrapper over :func:`run_chaos_loopback_sync` (the whole
    bench runs off-thread, keeping the caller's loop responsive)."""
    return await asyncio.to_thread(run_chaos_loopback_sync, instance, n_shards, **kwargs)
