"""Real-time online dispatch service.

The serving layer runs the paper's immediate-dispatch algorithms as a
live asyncio service rather than inside the discrete-event simulator:

* :mod:`~repro.serve.protocol` — length-prefixed JSON framing over
  unix sockets or TCP;
* :mod:`~repro.serve.dispatcher` — the virtual-clocked decision core,
  sharing the scheduler ``submit`` contract with the engine;
* :mod:`~repro.serve.admission` — bounded-queue backpressure and SLO
  load shedding keyed to the paper's waiting-work flow bound;
* :mod:`~repro.serve.metrics` — live :mod:`repro.obs` metrics
  (flow histograms, shed counters, queue-depth gauges, canonical
  snapshot dumps);
* :mod:`~repro.serve.frontend` — workers, fault kill/revive, the
  protocol frontend (``repro serve``);
* :mod:`~repro.serve.driver` — open-loop Poisson load generation
  (``repro drive``);
* :mod:`~repro.serve.shadow` — virtual-time replay proving the service
  takes exactly the engine's decisions (golden-trace byte identity);
* :mod:`~repro.serve.loopback` — in-process service+driver runs
  (``repro bench-serve``);
* :mod:`~repro.serve.shard` — the sharded tier: :class:`ShardPlan`
  partitioning, the interval-aware :class:`ShardRouter` with
  cross-shard failure handoff, the ``serve-sharded`` frontend and the
  multi-process ``bench-serve --shards N`` driver;
* :mod:`~repro.serve.journal` — the write-ahead operation log that
  makes a dispatcher crash-recoverable (``Dispatcher.recover``);
* :mod:`~repro.serve.supervisor` — shard-process supervision: death
  detection, restart, journal replay, fleet rejoin;
* :mod:`~repro.serve.resilient` — the chaos-tolerant client driver:
  retry with backoff, dedupe-keyed idempotent submits, circuit
  breaker;
* :mod:`~repro.serve.chaosbench` — the end-to-end chaos benchmark
  (``repro bench-serve --chaos``).
"""

from .admission import SHED_QUEUE_FULL, SHED_SLO, AdmissionController, estimated_flow
from .dispatcher import (
    DISPATCHED,
    PARKED,
    REQUEUED,
    SHED,
    DispatchDecision,
    Dispatcher,
)
from .chaosbench import ChaosBenchResult, run_chaos_loopback, run_chaos_loopback_sync
from .driver import DriveReport, build_drive_instance, drive, percentile
from .frontend import AddressInUseError, ServeConfig, ServeService, build_service, serve
from .journal import (
    Journal,
    JournalCorruptError,
    JournalError,
    JournalRecord,
    Recovery,
)
from .loopback import run_loopback, run_loopback_sync
from .metrics import ServeMetrics
from .protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameTooLargeError,
    ProtocolError,
    decode_frame,
    encode_frame,
    check_version,
    read_frame,
    task_from_wire,
    task_to_wire,
    version_error,
    versioned,
    write_frame,
)
from .resilient import CircuitBreaker, ClientResilience, ResilienceExhausted, drive_resilient
from .supervisor import ShardSupervisor
from .shadow import check_shadow_golden, shadow_golden_trace, shadow_replay, shadow_trace
from .shard import (
    Route,
    RoutedDecision,
    ShardPlan,
    ShardRouter,
    ShardServeConfig,
    ShardServeService,
    build_sharded_service,
    check_shard_shadow_golden,
    partition_instance,
    plan_for_instance,
    run_sharded_loopback,
    run_sharded_loopback_sync,
    serve_sharded,
    shard_shadow_replay,
    shard_shadow_traces,
)

__all__ = [
    "AddressInUseError",
    "AdmissionController",
    "ChaosBenchResult",
    "CircuitBreaker",
    "ClientResilience",
    "DISPATCHED",
    "DispatchDecision",
    "Dispatcher",
    "DriveReport",
    "FrameTooLargeError",
    "Journal",
    "JournalCorruptError",
    "JournalError",
    "JournalRecord",
    "MAX_FRAME",
    "PARKED",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REQUEUED",
    "Recovery",
    "ResilienceExhausted",
    "Route",
    "RoutedDecision",
    "SHED",
    "SHED_QUEUE_FULL",
    "SHED_SLO",
    "ServeConfig",
    "ServeMetrics",
    "ServeService",
    "ShardPlan",
    "ShardRouter",
    "ShardServeConfig",
    "ShardServeService",
    "ShardSupervisor",
    "build_drive_instance",
    "build_service",
    "build_sharded_service",
    "check_shadow_golden",
    "check_shard_shadow_golden",
    "check_version",
    "decode_frame",
    "drive",
    "drive_resilient",
    "encode_frame",
    "estimated_flow",
    "partition_instance",
    "percentile",
    "plan_for_instance",
    "read_frame",
    "run_chaos_loopback",
    "run_chaos_loopback_sync",
    "run_loopback",
    "run_loopback_sync",
    "run_sharded_loopback",
    "run_sharded_loopback_sync",
    "serve",
    "serve_sharded",
    "shadow_golden_trace",
    "shadow_replay",
    "shadow_trace",
    "shard_shadow_replay",
    "shard_shadow_traces",
    "task_from_wire",
    "task_to_wire",
    "version_error",
    "versioned",
    "write_frame",
]
