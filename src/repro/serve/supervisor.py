"""Shard supervision: detect a dead shard process, restart it, replay
its journal, rejoin it to the fleet.

The sharded tier (:mod:`repro.serve.shard.bench`) runs one server
process per shard.  Without supervision a SIGKILL'd shard silently
takes every queued and in-flight task of its interval with it — the
infrastructure failure mode the paper's flow-time bounds never model
and ``repro.faults`` (machine failures *inside* the simulation) does
not cover.  :class:`ShardSupervisor` closes that hole:

* every shard process is started through the supervisor with its
  :class:`~repro.serve.frontend.ServeConfig` kwargs — crucially a
  ``journal_dir``, so the server journals every state transition
  (:mod:`repro.serve.journal`);
* :meth:`poll` detects death (the process' exitcode materialised);
  :meth:`restart` unlinks the stale socket, respawns the server with
  the *same* config — on boot it finds the journal, replays it, and
  re-enqueues every placed-but-uncompleted request — and waits for the
  socket to accept again;
* :meth:`watch` runs that loop as an asyncio task next to a drive,
  restarting any shard that dies mid-run (the restart's blocking waits
  run in a worker thread so the drive's event loop never stalls);
* :meth:`kill` is the chaos hook — SIGKILL, no warning, exactly what a
  kernel OOM or a pulled cable does.

Recovery time (death observed → socket accepting) and restart/death
counts are exported through a :class:`repro.obs.recorders.
MetricsRegistry`; a router-fronted deployment pairs these hooks with
:meth:`ShardRouter.detach_shard` / ``reattach_shard`` for graceful
degradation while the shard is down.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time
from pathlib import Path
from typing import Any, Callable

from ..obs.recorders import MetricsRegistry
from .shard.bench import _shard_server_main, _wait_for_socket

__all__ = ["ShardSupervisor"]


class ShardSupervisor:
    """Start, watch, kill and restart per-shard server processes.

    Parameters
    ----------
    metrics:
        Registry for supervision counters (one is created if omitted):
        ``supervisor_starts_total``, ``supervisor_deaths_total``,
        ``supervisor_restarts_total``, the ``supervisor_recovery_seconds``
        histogram and the ``supervisor_shards_up`` gauge.
    restart_limit:
        Give up on a shard after this many restarts (a crash-looping
        shard must surface as an error, not an infinite loop).
    socket_timeout:
        Seconds to wait for a (re)started server to accept.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        restart_limit: int = 5,
        socket_timeout: float = 30.0,
    ) -> None:
        if restart_limit < 0:
            raise ValueError(f"restart_limit must be >= 0, got {restart_limit}")
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.restart_limit = restart_limit
        self.socket_timeout = socket_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._configs: dict[int, dict[str, Any]] = {}
        self._sockets: dict[int, str] = {}
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self.restarts: dict[int, int] = {}
        self.recovery_seconds: list[float] = []
        self._starts = self.registry.counter("supervisor_starts_total")
        self._deaths = self.registry.counter("supervisor_deaths_total")
        self._restarts = self.registry.counter("supervisor_restarts_total")
        self._recovery = self.registry.histogram(
            "supervisor_recovery_seconds",
            edges=(0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0),
        )
        self._up = self.registry.gauge("supervisor_shards_up")

    # -- membership ----------------------------------------------------------
    def add_shard(self, sid: int, config_kwargs: dict[str, Any], socket_path: str | Path) -> None:
        """Register shard ``sid``: the :class:`ServeConfig` kwargs its
        server boots from (include ``journal_dir`` for recoverability)
        and the unix socket it serves on."""
        if sid in self._configs:
            raise ValueError(f"shard {sid} already registered")
        self._configs[sid] = dict(config_kwargs)
        self._sockets[sid] = str(socket_path)
        self.restarts[sid] = 0

    @property
    def sids(self) -> list[int]:
        return sorted(self._configs)

    def socket_path(self, sid: int) -> str:
        return self._sockets[sid]

    def alive(self, sid: int) -> bool:
        proc = self._procs.get(sid)
        return proc is not None and proc.is_alive()

    # -- lifecycle -----------------------------------------------------------
    def _spawn(self, sid: int) -> None:
        path = self._sockets[sid]
        if Path(path).exists():
            # A stale socket from the previous incarnation would make
            # the restarted server die with AddressInUseError.
            os.unlink(path)
        proc = self._ctx.Process(
            target=_shard_server_main,
            args=(self._configs[sid], path),
            name=f"repro-shard-{sid}",
            daemon=True,
        )
        proc.start()
        self._procs[sid] = proc
        self._starts.inc()

    def start(self, sid: int) -> None:
        """Start shard ``sid`` and wait for its socket to accept."""
        if self.alive(sid):
            raise RuntimeError(f"shard {sid} already running")
        self._spawn(sid)
        _wait_for_socket(self._sockets[sid], timeout=self.socket_timeout)
        self._up.set(sum(1 for s in self.sids if self.alive(s)))

    def start_all(self) -> None:
        """Start every registered shard (spawn first, then wait — the
        boots overlap instead of serialising)."""
        for sid in self.sids:
            self._spawn(sid)
        for sid in self.sids:
            _wait_for_socket(self._sockets[sid], timeout=self.socket_timeout)
        self._up.set(len(self.sids))

    def kill(self, sid: int) -> int:
        """SIGKILL shard ``sid``'s process (the chaos hook — uncatchable,
        mid-write, exactly like an OOM kill); returns the dead pid."""
        proc = self._procs.get(sid)
        if proc is None or proc.pid is None:
            raise RuntimeError(f"shard {sid} has no running process")
        pid = proc.pid
        os.kill(pid, signal.SIGKILL)
        proc.join(timeout=self.socket_timeout)
        return pid

    def stop_all(self, timeout: float = 5.0) -> None:
        """Terminate every shard process still alive."""
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=timeout)
        self._up.set(0)

    # -- supervision ---------------------------------------------------------
    def poll(self) -> list[int]:
        """Shards whose process has died since the last poll."""
        dead = []
        for sid, proc in self._procs.items():
            if proc.exitcode is not None:
                dead.append(sid)
        return dead

    def restart(self, sid: int) -> float:
        """Restart a dead shard and return the recovery time in seconds
        (death observed → socket accepting; journal replay happens in
        the restarted server's boot, so it is *inside* the measured
        window).  Raises :class:`RuntimeError` past ``restart_limit``."""
        proc = self._procs.get(sid)
        if proc is not None and proc.is_alive():
            raise RuntimeError(f"shard {sid} is still alive")
        if self.restarts[sid] >= self.restart_limit:
            raise RuntimeError(
                f"shard {sid} crash-looping: {self.restarts[sid]} restarts "
                f"(limit {self.restart_limit})"
            )
        self._deaths.inc()
        t0 = time.monotonic()
        self._spawn(sid)
        _wait_for_socket(self._sockets[sid], timeout=self.socket_timeout)
        elapsed = time.monotonic() - t0
        self.restarts[sid] += 1
        self.recovery_seconds.append(elapsed)
        self._restarts.inc()
        self._recovery.observe(elapsed)
        self._up.set(sum(1 for s in self.sids if self.alive(s)))
        return elapsed

    async def watch(
        self,
        interval: float = 0.05,
        on_death: Callable[[int], None] | None = None,
        on_recover: Callable[[int, float], None] | None = None,
    ) -> None:
        """Supervision loop: poll for dead shards and restart them.

        Run as an asyncio task next to a drive; cancel it to stop.  The
        blocking restart (process spawn + socket wait) runs in a worker
        thread so the caller's event loop keeps serving.  ``on_death``
        fires when a death is observed (e.g. ``router.detach_shard``),
        ``on_recover`` after the socket accepts again (e.g.
        ``router.reattach_shard``).
        """
        while True:
            for sid in self.poll():
                if on_death is not None:
                    on_death(sid)
                elapsed = await asyncio.to_thread(self.restart, sid)
                if on_recover is not None:
                    on_recover(sid, elapsed)
            await asyncio.sleep(interval)

    def stats(self) -> dict[str, Any]:
        return {
            "shards": self.sids,
            "up": [sid for sid in self.sids if self.alive(sid)],
            "restarts": dict(self.restarts),
            "recovery_seconds": list(self.recovery_seconds),
        }
