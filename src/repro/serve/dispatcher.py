"""The dispatch decision core of the serving layer.

:class:`Dispatcher` is a *synchronous, virtual-clocked* wrapper around
an :class:`~repro.core.dispatch.ImmediateDispatchScheduler`: every
placement decision is a pure function of the admitted request stream
(release times stamped by the workload, not the wall clock), which is
what makes the service deterministic and shadow-checkable:

* **determinism** — two live runs over the same request stream produce
  identical task→machine assignments, whatever the wall-clock jitter,
  because the asyncio layer (:mod:`repro.serve.frontend`) only *enacts*
  decisions taken here;
* **shadow mode** — feeding a recorded arrival stream through
  :meth:`submit` reproduces the discrete-event
  :class:`~repro.simulation.engine.Simulator` exactly, decision for
  decision, since both drive the *same* scheduler object through the
  same ``submit`` contract (:mod:`repro.serve.shadow` turns this into a
  byte-identity check against the golden traces).

Fault handling mirrors the engine's degraded dispatch: a request whose
eligible set intersected with the alive machines is empty is *parked*
(or shed, with ``on_unavailable="shed"``); a partially-dead set
restricts the scheduler's view to the alive machines.  Failure-time
re-dispatch (:meth:`redispatch`) bypasses the scheduler — whose
``submit`` contract only covers fresh releases in release order — and
places the task on the alive candidate with the least committed work,
smallest index on ties, exactly like the engine's failure path.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Mapping

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.schedule import Schedule
from ..core.task import Instance, Task
from .admission import AdmissionController
from .metrics import ServeMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .journal import Journal, Recovery

__all__ = [
    "DISPATCHED",
    "PARKED",
    "REQUEUED",
    "SHED",
    "DispatchDecision",
    "Dispatcher",
]

DISPATCHED = "dispatched"
SHED = "shed"
PARKED = "parked"
REQUEUED = "requeued"

#: reason attached to requests rejected because their whole processing
#: set was down (only with ``on_unavailable="shed"``).
SHED_UNAVAILABLE = "unavailable"


@dataclass(frozen=True, slots=True)
class DispatchDecision:
    """Outcome of one submitted request.

    ``status`` is one of :data:`DISPATCHED` (placed on ``machine`` with
    analytic ``start`` and ``est_flow``), :data:`SHED` (rejected;
    ``reason`` says why), :data:`PARKED` (whole processing set down,
    held for a revival) or :data:`REQUEUED` (placed by the failure /
    unpark path rather than the scheduler).
    """

    task: Task
    status: str
    machine: int | None = None
    start: float | None = None
    est_flow: float | None = None
    reason: str | None = None


class Dispatcher:
    """Virtual-clocked immediate-dispatch decision engine.

    Parameters
    ----------
    scheduler:
        The dispatch policy (e.g. :class:`repro.core.eft.EFT` with any
        tie-break).  The dispatcher calls ``scheduler.submit`` for every
        admitted fresh release, so the scheduler's bookkeeping stays
        authoritative — the same integration contract the simulator
        uses.
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`;
        reviewed *before* the scheduler sees the request, so shed
        requests perturb nothing (not even a random tie-break draw).
    metrics:
        Optional :class:`~repro.serve.metrics.ServeMetrics`.
    on_unavailable:
        ``"park"`` (default; mirror the engine — hold until a machine
        of the set revives) or ``"shed"`` (reject with reason
        ``"unavailable"``).
    """

    def __init__(
        self,
        scheduler: ImmediateDispatchScheduler,
        admission: AdmissionController | None = None,
        metrics: ServeMetrics | None = None,
        on_unavailable: str = "park",
    ) -> None:
        if on_unavailable not in ("park", "shed"):
            raise ValueError(f"on_unavailable must be 'park' or 'shed', got {on_unavailable!r}")
        self.scheduler = scheduler
        self.m = scheduler.m
        self.admission = admission if (admission is None or admission.enabled) else None
        self.metrics = metrics
        self.on_unavailable = on_unavailable
        self.alive: set[int] = set(range(1, self.m + 1))
        self.parked: list[Task] = []
        self.decisions: list[DispatchDecision] = []
        #: committed placements ``tid -> (machine, start)`` of every
        #: dispatched/requeued task — the dispatcher's own books, so
        #: :meth:`schedule` never reaches into scheduler internals.
        self.placements: dict[int, tuple[int, float]] = {}
        self._tasks: dict[int, Task] = {}
        #: per-machine min-heap of analytic completion times — the
        #: uncompleted-request depth used by bounded-queue admission.
        self._inflight: dict[int, list[float]] = {j: [] for j in range(1, self.m + 1)}
        self.n_dispatched = 0
        self.n_shed = 0
        self.n_requeued = 0

    # -- analytic state -----------------------------------------------------
    def depth(self, machine: int, now: float) -> int:
        """Number of requests committed to ``machine`` and analytically
        uncompleted at ``now`` (completions at exactly ``now`` have
        left the queue — the half-open convention of the engine)."""
        heap = self._inflight[machine]
        while heap and heap[0] <= now:
            heappop(heap)
        return len(heap)

    def waiting_work(self, machine: int, now: float) -> float:
        """Committed-but-unfinished work on ``machine`` at ``now`` —
        the :math:`w_t(j)` the admission SLO is keyed to."""
        return max(0.0, self.scheduler.completions[machine] - now)

    # -- the decision path ---------------------------------------------------
    def submit(self, task: Task) -> DispatchDecision:
        """Decide one fresh release (requests must arrive in release
        order, the online contract of the underlying scheduler)."""
        if self.metrics is not None:
            self.metrics.on_request()
        eligible = task.eligible(self.m)
        alive_eligible = eligible & self.alive
        if not alive_eligible:
            if self.on_unavailable == "shed":
                return self._shed(task, SHED_UNAVAILABLE)
            return self._park(task)
        if self.admission is not None:
            reason = self.admission.review(task, alive_eligible, self)
            if reason is not None:
                return self._shed(task, reason)
        if alive_eligible != eligible:
            # Degraded dispatch over the alive subset, as in the engine:
            # the scheduler decides on the restricted view while the
            # original task stays authoritative in our books.
            record = self.scheduler.submit(task.restricted_to(alive_eligible))
        else:
            record = self.scheduler.submit(task)
        return self._commit(task, record.machine, record.start, DISPATCHED)

    def redispatch(self, task: Task, now: float, reason: str = "failure") -> DispatchDecision:
        """Place a displaced task (machine failure, unpark): EFT over
        the engine's authoritative committed work, least waiting work
        wins, smallest index on ties — the engine's failure-path rule.
        Parks again if the whole set is still down."""
        candidates = task.eligible(self.m) & self.alive
        if not candidates:
            return self._park(task)
        machine = min(sorted(candidates), key=lambda j: self.waiting_work(j, now))
        start = max(now, self.scheduler.completions[machine])
        # The scheduler's completion bookkeeping must absorb the
        # re-placement (future EFT decisions see the extra work), but
        # its release-order submit contract does not cover re-dispatch,
        # so the books are updated directly — as the engine does.
        self.scheduler.completions[machine] = start + task.proc
        self.scheduler.task_counts[machine] += 1
        self.n_requeued += 1
        if self.metrics is not None:
            self.metrics.on_requeue()
        return self._commit(task, machine, start, REQUEUED, reason=reason)

    def _commit(
        self, task: Task, machine: int, start: float, status: str, reason: str | None = None
    ) -> DispatchDecision:
        heappush(self._inflight[machine], start + task.proc)
        self.placements[task.tid] = (machine, start)
        self._tasks[task.tid] = task
        est_flow = start + task.proc - task.release
        decision = DispatchDecision(
            task=task, status=status, machine=machine, start=start,
            est_flow=est_flow, reason=reason,
        )
        self.decisions.append(decision)
        self.n_dispatched += 1
        if self.metrics is not None:
            self.metrics.on_dispatch(machine, est_flow, self.depth(machine, task.release))
        return decision

    def _shed(self, task: Task, reason: str) -> DispatchDecision:
        decision = DispatchDecision(task=task, status=SHED, reason=reason)
        self.decisions.append(decision)
        self.n_shed += 1
        if self.metrics is not None:
            self.metrics.on_shed(reason)
        return decision

    def _park(self, task: Task) -> DispatchDecision:
        self.parked.append(task)
        decision = DispatchDecision(task=task, status=PARKED)
        self.decisions.append(decision)
        if self.metrics is not None:
            self.metrics.on_park(len(self.parked))
        return decision

    # -- rebalance surface ---------------------------------------------------
    def withdraw(self, tid: int, now: float) -> Task | None:
        """Remove a committed-but-unstarted request from the books so it
        can be re-placed (the migration half of a rebalance).

        Only requests whose analytic ``start`` is strictly after ``now``
        can be withdrawn — a request already running stays where its
        data is.  Returns the task, or ``None`` if it is unknown or
        already started.

        Completion unwinding is deliberately conservative: if the
        withdrawn request was the machine's committed tail
        (``completions == start + proc``) the tail shrinks to ``start``
        (remaining work finishes no later than that); a mid-queue
        withdrawal leaves ``completions`` untouched, keeping a
        deterministic idle hole rather than inventing an earlier finish
        that later commits might overlap.
        """
        placed = self.placements.get(tid)
        if placed is None:
            return None
        machine, start = placed
        if start <= now:
            return None
        task = self._tasks.pop(tid)
        del self.placements[tid]
        completion = start + task.proc
        if self.scheduler.completions[machine] == completion:
            self.scheduler.completions[machine] = start
        self.scheduler.task_counts[machine] -= 1
        heap = self._inflight[machine]
        try:
            heap.remove(completion)
            heapify(heap)
        except ValueError:  # pragma: no cover - popped by a depth() probe
            pass
        return task

    def apply_placement(
        self,
        old_sets: Mapping[int, frozenset[int]],
        new_sets: Mapping[int, frozenset[int]],
        now: float,
        warmup: float = 0.0,
        version: int | None = None,
    ) -> list[DispatchDecision]:
        """Enact a re-replication decision on the live queues.

        ``old_sets``/``new_sets`` map each home machine to its replica
        set before and after the rebalance.  Three effects, in order:

        1. every machine *joining* some home's set is charged the
           deterministic ``warmup`` penalty (data fetch before serving:
           its committed-work horizon moves to ``max(completions, now)
           + warmup``);
        2. every queued-but-unstarted request whose current machine is
           no longer in its home's new set is withdrawn and re-placed
           with the engine's least-waiting-work rule
           (:meth:`redispatch`, ``reason="rebalance"``), in tid order;
        3. the rebalance counters and placement-version gauge roll into
           the metrics registry (created lazily, so runs that never
           rebalance snapshot without any rebalance keys).

        Requests whose machine survives in the new set stay put — a
        rebalance never perturbs work it does not have to move.
        Returns the migration decisions.
        """
        added = sorted(
            {
                j
                for u, new in new_sets.items()
                for j in new - old_sets.get(u, frozenset())
            }
        )
        if warmup > 0.0:
            for j in added:
                if 1 <= j <= self.m:
                    base = max(self.scheduler.completions[j], now)
                    self.scheduler.completions[j] = base + warmup
        if added:
            # Setup-time policies (NC-Setup) invalidate their warm
            # state so widened replicas pay the cache-warmup penalty
            # again; probed, so every other policy is unaffected.
            hook = getattr(self.scheduler, "on_replicas_added", None)
            if hook is not None:
                hook([j for j in added if 1 <= j <= self.m], now)
        migrated: list[DispatchDecision] = []
        for tid in sorted(self.placements):
            machine, start = self.placements[tid]
            if start <= now:
                continue
            task = self._tasks[tid]
            if task.key is None or task.key not in new_sets:
                continue
            new_set = new_sets[task.key]
            if machine in new_set:
                continue
            pulled = self.withdraw(tid, now)
            if pulled is None:  # pragma: no cover - guarded by start > now
                continue
            moved = Task(
                tid=pulled.tid,
                release=pulled.release,
                proc=pulled.proc,
                machines=frozenset(new_set),
                key=pulled.key,
            )
            migrated.append(self.redispatch(moved, now, reason="rebalance"))
        if self.metrics is not None:
            self.metrics.on_rebalance(
                version=version, n_migrated=len(migrated), n_added=len(added)
            )
        return migrated

    # -- fault surface -------------------------------------------------------
    def kill(self, machine: int) -> None:
        """Mark ``machine`` dead: it receives no further dispatches.
        Re-routing its queued work is the service layer's job (it owns
        the live queues) via :meth:`redispatch`."""
        if not (1 <= machine <= self.m):
            raise ValueError(f"machine {machine} outside 1..{self.m}")
        if machine not in self.alive:
            return
        self.alive.discard(machine)
        if self.metrics is not None:
            self.metrics.on_kill(machine, len(self.alive))

    def revive(self, machine: int, now: float = 0.0) -> list[DispatchDecision]:
        """Mark ``machine`` alive again and re-dispatch every parked
        task whose set now intersects the alive machines, in park order
        (the engine's recovery rule).  Returns the unpark decisions."""
        if not (1 <= machine <= self.m):
            raise ValueError(f"machine {machine} outside 1..{self.m}")
        if machine in self.alive:
            return []
        self.alive.add(machine)
        if self.metrics is not None:
            self.metrics.on_revive(machine, len(self.alive))
        pending, self.parked = self.parked, []
        unparked: list[DispatchDecision] = []
        still_parked: list[Task] = []
        for task in pending:
            if task.eligible(self.m) & self.alive:
                unparked.append(self.redispatch(task, now, reason="unpark"))
                if self.metrics is not None:
                    self.metrics.on_unpark(len(still_parked))
            else:
                still_parked.append(task)
        # ``redispatch`` cannot have re-parked (candidates were checked
        # and the alive set only grew), so ``self.parked`` is empty here.
        self.parked = still_parked + self.parked
        return unparked

    # -- results -------------------------------------------------------------
    def schedule(self) -> Schedule:
        """The committed schedule of every dispatched request (shed and
        still-parked requests excluded)."""
        inst = Instance(m=self.m, tasks=tuple(self._tasks.values()))
        return Schedule(inst, dict(self.placements))

    # -- crash recovery ------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Everything a journal snapshot needs to rebuild this
        dispatcher mid-stream: the books, the alive set, the parking
        lot, and the scheduler's decision-relevant state (completion
        horizons, task counts, release watermark, and — for randomised
        tie-breaks — the RNG state, so post-restore draws continue the
        crashed process's sequence exactly)."""
        from .protocol import task_to_wire

        scheduler_state: dict[str, Any] = {
            "completions": {str(j): c for j, c in self.scheduler.completions.items()},
            "task_counts": {str(j): c for j, c in self.scheduler.task_counts.items()},
            "last_release": self.scheduler._last_release,
        }
        cursor = getattr(self.scheduler, "_cursor", None)
        if cursor is not None:
            scheduler_state["cursor"] = cursor
        rng = getattr(self.scheduler, "rng", None)
        if rng is None:
            rng = getattr(getattr(self.scheduler, "tiebreak", None), "rng", None)
        if rng is not None:
            scheduler_state["rng_state"] = rng.bit_generator.state
        return {
            "m": self.m,
            "on_unavailable": self.on_unavailable,
            "alive": sorted(self.alive),
            "parked": [task_to_wire(t) for t in self.parked],
            "tasks": [task_to_wire(t) for t in self._tasks.values()],
            "placements": {
                str(tid): [machine, start] for tid, (machine, start) in self.placements.items()
            },
            "inflight": {str(j): sorted(h) for j, h in self._inflight.items()},
            "counters": {
                "n_dispatched": self.n_dispatched,
                "n_shed": self.n_shed,
                "n_requeued": self.n_requeued,
            },
            "scheduler": scheduler_state,
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state_dict` output onto this (freshly built)
        dispatcher.  The scheduler must be wired the same way as the
        one that produced the snapshot."""
        from .protocol import task_from_wire

        if int(state["m"]) != self.m:
            raise ValueError(f"snapshot has m={state['m']}, dispatcher has m={self.m}")
        self.alive = set(int(j) for j in state["alive"])
        self.parked = [task_from_wire(w) for w in state["parked"]]
        self._tasks = {t.tid: t for t in (task_from_wire(w) for w in state["tasks"])}
        self.placements = {
            int(tid): (int(machine), float(start))
            for tid, (machine, start) in state["placements"].items()
        }
        self._inflight = {int(j): list(h) for j, h in state["inflight"].items()}
        for heap in self._inflight.values():
            heapify(heap)
        counters = state["counters"]
        self.n_dispatched = int(counters["n_dispatched"])
        self.n_shed = int(counters["n_shed"])
        self.n_requeued = int(counters["n_requeued"])
        sched = state["scheduler"]
        self.scheduler.completions = {int(j): float(c) for j, c in sched["completions"].items()}
        self.scheduler.task_counts = {int(j): int(c) for j, c in sched["task_counts"].items()}
        self.scheduler._last_release = float(sched["last_release"])
        if "cursor" in sched and hasattr(self.scheduler, "_cursor"):
            self.scheduler._cursor = int(sched["cursor"])
        if "rng_state" in sched:
            rng = getattr(self.scheduler, "rng", None)
            if rng is None:
                rng = getattr(getattr(self.scheduler, "tiebreak", None), "rng", None)
            if rng is None:
                raise ValueError(
                    "snapshot carries RNG state but the scheduler has no rng — "
                    "recovery must be wired with the same scheduler kind"
                )
            rng.bit_generator.state = sched["rng_state"]

    @classmethod
    def recover(
        cls,
        journal: "Journal",
        scheduler: ImmediateDispatchScheduler,
        admission: AdmissionController | None = None,
        metrics: ServeMetrics | None = None,
        on_unavailable: str = "park",
    ) -> "Recovery":
        """Rebuild a dispatcher from a write-ahead ``journal``: restore
        the latest snapshot (if any), then replay the WAL suffix.  The
        scheduler/admission wiring must match the crashed process's —
        replay re-derives every decision, byte-for-byte.  Returns the
        full :class:`~repro.serve.journal.Recovery` (the dispatcher is
        ``recovery.dispatcher``)."""
        from .journal import recover as _recover

        return _recover(
            journal,
            lambda: cls(
                scheduler, admission=admission, metrics=metrics, on_unavailable=on_unavailable
            ),
        )
