"""Self-contained loopback runs: service + driver in one event loop.

The zero-setup way to exercise the whole serving stack — frontend,
protocol, dispatcher, admission, workers, metrics — without a separate
server process: a unix socket in a temporary directory, the service on
one side, the driver on the other.  Used by ``repro bench-serve``,
``make serve-smoke`` and the throughput benchmark.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from ..faults.schedule import FaultSchedule
from ..obs.snapshot import write_metrics
from ..core.task import Instance
from .driver import DriveReport, drive
from .frontend import ServeConfig, build_service

__all__ = ["run_loopback", "run_loopback_sync"]


async def run_loopback(
    instance: Instance,
    config: ServeConfig,
    time_scale: float | None = None,
    target_rate: float | None = None,
    faults: FaultSchedule | None = None,
    metrics_path: str | Path | None = None,
) -> DriveReport:
    """Serve ``instance`` over an in-process unix-socket loopback and
    return the drive report.

    ``time_scale`` defaults to the service's own scale; a final
    canonical metrics snapshot is written to ``metrics_path`` if given.
    """
    scale = config.time_scale if time_scale is None else time_scale
    service = build_service(config)
    await service.start()
    fault_task = None
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        socket_path = str(Path(tmp) / "serve.sock")

        async def on_connection(reader, writer):
            await service.handle_connection(reader, writer)

        server = await asyncio.start_unix_server(on_connection, path=socket_path)
        try:
            if faults is not None and faults:
                fault_task = asyncio.get_running_loop().create_task(
                    service.apply_faults(faults)
                )
            async with server:
                report = await drive(
                    instance,
                    socket_path=socket_path,
                    time_scale=scale,
                    target_rate=target_rate,
                )
        finally:
            if fault_task is not None:
                fault_task.cancel()
                await asyncio.gather(fault_task, return_exceptions=True)
            await service.stop()
    if metrics_path is not None:
        write_metrics(
            service.metrics.registry, metrics_path, meta={"source": "repro-serve-loopback"}
        )
    return report


def run_loopback_sync(*args, **kwargs) -> DriveReport:
    """:func:`run_loopback` from synchronous code (own event loop)."""
    return asyncio.run(run_loopback(*args, **kwargs))
