"""Shadow mode for the sharded tier: goldens as the fleet oracle.

The single-dispatcher shadow (:mod:`repro.serve.shadow`) proves the
serve layer takes the engine's decisions; this module extends the
guarantee across the router.  On a **disjoint** plan (every processing
set local to one shard — the Theorem 6 composition condition) the
sharded fleet must reproduce the single-dispatcher golden traces
*twice over*:

* **merged**: the union of all shard placements, serialised as a
  trace, is byte-identical to the golden file — sharding changed
  nothing;
* **per shard**: each shard dispatcher's own trace records are
  byte-identical to the golden's records filtered to that shard's
  tasks — no shard ever saw (or perturbed) another shard's stream.

Both hold for the deterministic schedulers (``eft-min``, ``eft-max``,
``least-work``, …) because EFT reads only the eligible machines'
completion times and, on a disjoint plan, only the owner shard's tasks
ever write them.  Randomised tie-breaks (``eft-rand``) are excluded:
each shard draws from its own RNG stream, so per-shard draws cannot
reproduce the fleet-wide sequence — that is a property of RNG
plumbing, not of the composition theorem.
"""

from __future__ import annotations

from ...campaigns.goldens import GOLDEN_CASES, GoldenMismatch, golden_path
from ...campaigns.trace import Trace, _record_line, dumps, record
from ...core.task import Instance
from .plan import ShardPlan
from .router import RoutedDecision, ShardRouter

__all__ = [
    "check_shard_shadow_golden",
    "shard_shadow_replay",
    "shard_shadow_traces",
]


def shard_shadow_replay(
    instance: Instance,
    plan: ShardPlan,
    scheduler: str = "eft-min",
    seed: int = 0,
) -> tuple[ShardRouter, list[RoutedDecision]]:
    """Feed ``instance`` through a fresh :class:`ShardRouter` in virtual
    time (no admission, no faults) and return it with its decisions."""
    if plan.m != instance.m:
        raise ValueError(f"instance has m={instance.m}, plan has m={plan.m}")
    router = ShardRouter(plan, scheduler=scheduler, seed=seed)
    decisions = [router.submit(task) for task in instance]
    return router, decisions


def shard_shadow_traces(
    instance: Instance,
    plan: ShardPlan,
    scheduler: str = "eft-min",
    seed: int = 0,
    meta: dict | None = None,
) -> tuple[Trace, dict[int, Trace]]:
    """Replay ``instance`` through the sharded tier and record both
    views: the merged fleet trace and one trace per shard (each shard
    dispatcher's own books)."""
    router, _ = shard_shadow_replay(instance, plan, scheduler=scheduler, seed=seed)
    sched_name = router.dispatchers[0].scheduler.name
    merged = record(router.schedule(), scheduler=sched_name, meta=meta or {})
    per_shard = {
        sid: record(
            router.shard_schedule(sid),
            scheduler=sched_name,
            meta={**(meta or {}), "shard": sid},
        )
        for sid in range(plan.n_shards)
    }
    return merged, per_shard


def check_shard_shadow_golden(name: str, n_shards: int) -> tuple[Trace, dict[int, Trace]]:
    """Assert the sharded tier reproduces golden ``name`` byte-for-byte
    on a disjoint ``n_shards``-way plan, merged *and* per shard.

    The plan is derived from the golden workload's own processing-set
    family (:meth:`ShardPlan.for_family`), so this raises
    :class:`ValueError` when the family admits no disjoint
    ``n_shards``-way cut (e.g. overlapping ring replication with more
    than one shard).  Returns ``(merged, per_shard)`` traces on
    success; raises :class:`GoldenMismatch` on any byte difference.
    """
    case = GOLDEN_CASES[name]
    scheduler_name = case.make_scheduler().name
    if "rand" in scheduler_name.lower():
        raise ValueError(
            f"golden {name!r} uses randomised scheduler {scheduler_name!r}; "
            "sharded byte-identity only holds for deterministic tie-breaks "
            "(per-shard RNG streams cannot reproduce the fleet-wide draw "
            "sequence)"
        )
    path = golden_path(name)
    if not path.is_file():
        raise GoldenMismatch(f"golden {name!r} missing on disk: {path}")
    golden_text = path.read_text()
    instance = case.make_instance()
    plan = ShardPlan.for_family(instance.processing_sets(), instance.m, n_shards)
    if not plan.is_disjoint_for(instance.processing_sets()):
        raise AssertionError(f"for_family produced a non-disjoint plan for {name!r}")
    merged, per_shard = shard_shadow_traces(
        instance,
        plan,
        scheduler=scheduler_name,
        meta={"golden": name, "description": case.description},
    )
    if dumps(merged) != golden_text:
        raise GoldenMismatch(
            f"sharded shadow (merged, {n_shards} shards) diverged from golden "
            f"{name!r}: trace is not byte-identical to {path}"
        )
    golden_lines = golden_text.splitlines()[1:]  # drop the header line
    owner_of = {t.tid: plan.route(t.eligible(instance.m)).owner for t in instance}
    for sid, trace in per_shard.items():
        want = [
            line
            for line, t in zip(golden_lines, instance)
            if owner_of[t.tid] == sid
        ]
        got = [_record_line(r) for r in trace.records]
        if got != want:
            raise GoldenMismatch(
                f"sharded shadow diverged from golden {name!r} on shard {sid}: "
                f"records are not byte-identical to the golden's lines for "
                f"that shard's tasks"
            )
    return merged, per_shard
