"""Sharded serve tier: N dispatcher shards behind an interval-aware router.

Scales :mod:`repro.serve` from one dispatcher to a fleet, on the
paper's own structure:

* :mod:`~repro.serve.shard.plan` — :class:`ShardPlan`, partitioning
  machines ``1..m`` into contiguous shard intervals: exact disjoint
  partitions (Theorem 6 composition, zero cross-talk) and interval
  covers for overlapping rings with an explicit bounded handoff set;
* :mod:`~repro.serve.shard.router` — :class:`ShardRouter`, the
  virtual-clocked decision tier: shard-local dispatch, shard-local
  admission, deterministic cross-shard failure handoff via the
  engine's least-waiting-work rule;
* :mod:`~repro.serve.shard.service` — :class:`ShardServeService` /
  :func:`serve_sharded`, the asyncio frontend (same wire protocol,
  plus ``route`` / ``kill`` / ``revive`` ops) with fleet-rollup
  metrics (``repro serve-sharded``);
* :mod:`~repro.serve.shard.shadow` — golden byte-identity of the
  sharded tier on disjoint plans, merged and per shard;
* :mod:`~repro.serve.shard.bench` — one real server process per shard
  with client-side routing (``repro bench-serve --shards N``).
"""

from .bench import (
    partition_instance,
    plan_for_instance,
    run_sharded_loopback,
    run_sharded_loopback_sync,
)
from .plan import Route, ShardPlan
from .router import RoutedDecision, ShardRouter
from .service import ShardServeConfig, ShardServeService, build_sharded_service, serve_sharded
from .shadow import check_shard_shadow_golden, shard_shadow_replay, shard_shadow_traces

__all__ = [
    "Route",
    "RoutedDecision",
    "ShardPlan",
    "ShardRouter",
    "ShardServeConfig",
    "ShardServeService",
    "build_sharded_service",
    "check_shard_shadow_golden",
    "partition_instance",
    "plan_for_instance",
    "run_sharded_loopback",
    "run_sharded_loopback_sync",
    "serve_sharded",
    "shard_shadow_replay",
    "shard_shadow_traces",
]
