"""Multi-process sharded loopback: real throughput, same placements.

The in-process :class:`~repro.serve.shard.service.ShardServeService`
demonstrates the router frontend, but all N shards share one event
loop — it cannot show a throughput win.  This module runs the sharded
tier the way a deployment would: **one server process per shard**, each
a plain single-dispatcher service on its own unix socket, with the
:class:`~repro.serve.shard.plan.ShardPlan` applied *client side* (the
``route``-op pattern: fetch the plan once, route every submit locally).
The driver opens one connection per shard and drives the per-shard
substreams concurrently; reports merge into one fleet
:class:`~repro.serve.driver.DriveReport` whose assignments are
reassembled in submission order — so on a disjoint plan with a
deterministic scheduler the merged ``assignments_digest`` is *equal*
to a single-server drive of the same workload (Theorem 6 composition,
checked by ``make shard-smoke``), while the achieved request rate
scales with the shard count once one server process saturates.

Used by ``repro bench-serve --shards N`` and the throughput benchmark.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import tempfile
import time
from pathlib import Path
from typing import Mapping, Sequence

from ...core.task import Instance, Task
from ..driver import DriveReport, drive
from .plan import ShardPlan

__all__ = [
    "partition_instance",
    "plan_for_instance",
    "run_sharded_loopback",
    "run_sharded_loopback_sync",
]


def plan_for_instance(instance: Instance, n_shards: int) -> ShardPlan:
    """The plan a sharded run of ``instance`` should use: a disjoint
    (zero cross-talk) cut of its processing-set family when one exists,
    else an even interval cover (straddling sets routed by fragment)."""
    if n_shards == 1:
        return ShardPlan.single(instance.m)
    try:
        return ShardPlan.for_family(instance.processing_sets(), instance.m, n_shards)
    except ValueError:
        return ShardPlan.even(instance.m, n_shards)


def partition_instance(instance: Instance, plan: ShardPlan) -> dict[int, Instance]:
    """Client-side routing: split ``instance`` into per-shard
    substreams, restricting straddling sets to their owner fragment
    (exactly what the router does server-side).  Shards with no tasks
    are omitted."""
    per: dict[int, list[Task]] = {}
    for task in instance:
        route = plan.route(task.eligible(instance.m))
        sub = task if route.is_local else task.restricted_to(route.owner_fragment)
        per.setdefault(route.owner, []).append(sub)
    return {
        sid: Instance(m=instance.m, tasks=tuple(tasks)) for sid, tasks in sorted(per.items())
    }


def _shard_server_main(config_kwargs: dict, socket_path: str) -> None:
    """Entry point of one shard server process (spawn-safe)."""
    import asyncio as _asyncio

    from ..frontend import ServeConfig, serve

    _asyncio.run(serve(ServeConfig(**config_kwargs), socket_path=socket_path))


def _wait_for_socket(path: str, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if Path(path).exists():
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(path)
                return
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.02)
    raise TimeoutError(f"shard server socket {path} not accepting within {timeout}s")


async def _drive_shards(
    parts: Mapping[int, Instance],
    socket_paths: Mapping[int, str],
    order: Sequence[int],
    time_scale: float,
    target_rate: float | None,
) -> DriveReport:
    sids = sorted(parts)
    reports = await asyncio.gather(
        *(
            drive(
                parts[sid],
                socket_path=socket_paths[sid],
                time_scale=time_scale,
                shutdown=True,
            )
            for sid in sids
        )
    )
    merged = DriveReport.merge(list(reports), order=order)
    merged.target_rate = target_rate
    return merged


def run_sharded_loopback_sync(
    instance: Instance,
    n_shards: int,
    scheduler: str = "eft-min",
    seed: int = 0,
    time_scale: float = 1.0,
    target_rate: float | None = None,
    plan: ShardPlan | None = None,
) -> DriveReport:
    """Drive ``instance`` against ``n_shards`` real server processes
    over unix-socket loopback and return the merged fleet report.

    Each shard process runs a plain single-dispatcher service (seeded
    ``seed + shard_id``, matching :class:`ShardRouter`); the plan is
    applied client side.  ``n_shards=1`` runs the identical machinery
    with one process — the fair baseline for throughput comparisons.
    """
    if plan is None:
        plan = plan_for_instance(instance, n_shards)
    if plan.m != instance.m:
        raise ValueError(f"instance has m={instance.m}, plan has m={plan.m}")
    parts = partition_instance(instance, plan)
    order = [t.tid for t in instance]
    ctx = multiprocessing.get_context("spawn")
    with tempfile.TemporaryDirectory(prefix="repro-serve-shard-") as tmp:
        socket_paths = {sid: str(Path(tmp) / f"shard{sid}.sock") for sid in parts}
        procs = []
        try:
            for sid in sorted(parts):
                config_kwargs = {
                    "m": instance.m,
                    "scheduler": scheduler,
                    "seed": seed + sid,
                    "time_scale": time_scale,
                }
                proc = ctx.Process(
                    target=_shard_server_main,
                    args=(config_kwargs, socket_paths[sid]),
                    name=f"repro-shard-{sid}",
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            for sid in sorted(parts):
                _wait_for_socket(socket_paths[sid])
            report = asyncio.run(
                _drive_shards(parts, socket_paths, order, time_scale, target_rate)
            )
            # Each drive sent `shutdown`, so the servers exit on their own.
            for proc in procs:
                proc.join(timeout=10.0)
            return report
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)


async def run_sharded_loopback(
    instance: Instance,
    n_shards: int,
    scheduler: str = "eft-min",
    seed: int = 0,
    time_scale: float = 1.0,
    target_rate: float | None = None,
    plan: ShardPlan | None = None,
) -> DriveReport:
    """Async wrapper over :func:`run_sharded_loopback_sync` (the server
    processes and the drive run off this loop's thread, so the caller's
    event loop stays responsive)."""
    return await asyncio.to_thread(
        run_sharded_loopback_sync,
        instance,
        n_shards,
        scheduler=scheduler,
        seed=seed,
        time_scale=time_scale,
        target_rate=target_rate,
        plan=plan,
    )
