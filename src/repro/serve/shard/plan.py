"""Shard plans: partitioning the fleet into dispatcher shards.

A :class:`ShardPlan` cuts the machine ring ``1..m`` into ``N``
contiguous intervals, one per dispatcher shard.  The paper's Theorem 6
(composition over disjoint processing sets) is what makes this sound:
if every processing set lies entirely inside one shard's interval, the
shards compose with **zero cross-talk** — per-shard EFT takes exactly
the decisions fleet-wide EFT would, and the ``(3 - 2/k)`` bound of
Corollary 1 survives sharding unchanged.  :meth:`ShardPlan.aligned`
builds such plans for disjoint interval replication (shard boundaries
on replication-group boundaries); :meth:`ShardPlan.for_family` finds
one for an arbitrary recorded workload, or refuses.

Overlapping ring replication (Figure 9) admits no cross-talk-free cut:
every shard boundary is straddled by exactly ``k - 1`` of the ``m``
ring intervals :math:`I_k(u)`.  Those straddling sets form the
**handoff set** of the plan — enumerable in advance
(:meth:`handoff_sets`), bounded by ``N * (k - 1)`` — and the router
handles them with interval-aware routing: the shard owning the
interval's *start* machine owns the task, and only a failure that
empties the owner-side fragment triggers a cross-shard handoff.

Routing is a pure function of the processing set (:meth:`route`), so a
fleet of shards places requests deterministically from release stamps
alone, exactly like the single dispatcher it replaces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Sequence

from ...psets.sets import is_contiguous

__all__ = ["Route", "ShardPlan"]


@dataclass(frozen=True)
class Route:
    """Routing of one processing set through a plan.

    ``fragments`` maps each shard that owns part of the set to its
    fragment (in shard order); ``owner`` is the shard the request is
    dispatched to while any of its fragment machines is alive.  A route
    with a single fragment equal to the whole set is shard-local
    (``is_local``); anything else is a cross-shard (handoff-capable)
    route.
    """

    owner: int
    fragments: tuple[tuple[int, frozenset[int]], ...]

    @property
    def is_local(self) -> bool:
        return len(self.fragments) == 1

    @property
    def owner_fragment(self) -> frozenset[int]:
        return dict(self.fragments)[self.owner]

    def fragment(self, shard: int) -> frozenset[int]:
        """The set's machines owned by ``shard`` (empty if none)."""
        return dict(self.fragments).get(shard, frozenset())


def _ring_start(s: frozenset[int], m: int) -> int | None:
    """Start machine of a (possibly wrapped) ring interval, or ``None``
    if ``s`` is not a proper ring interval (e.g. the full ring)."""
    if is_contiguous(s):
        return min(s)
    starts = [j for j in s if ((j - 2) % m + 1) not in s]
    return starts[0] if len(starts) == 1 else None


@dataclass(frozen=True)
class ShardPlan:
    """A partition of machines ``1..m`` into contiguous shard intervals.

    ``intervals`` are 1-based inclusive ``(lo, hi)`` pairs, consecutive
    and covering ``1..m`` exactly; shard ids are their 0-based indices.
    """

    m: int
    intervals: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("need at least one machine")
        if not self.intervals:
            raise ValueError("plan needs at least one shard")
        object.__setattr__(self, "intervals", tuple((int(a), int(b)) for a, b in self.intervals))
        expected_lo = 1
        for lo, hi in self.intervals:
            if lo != expected_lo or hi < lo:
                raise ValueError(
                    f"shard intervals must be consecutive and cover 1..{self.m}: "
                    f"{list(self.intervals)}"
                )
            expected_lo = hi + 1
        if expected_lo != self.m + 1:
            raise ValueError(f"shard intervals do not cover 1..{self.m}: {list(self.intervals)}")

    # -- constructors --------------------------------------------------------
    @staticmethod
    def single(m: int) -> "ShardPlan":
        """The degenerate one-shard plan (the unsharded tier)."""
        return ShardPlan(m=m, intervals=((1, m),))

    @staticmethod
    def even(m: int, n_shards: int) -> "ShardPlan":
        """``n_shards`` near-equal contiguous intervals (interval cover
        for overlapping ring replication — straddling sets become the
        handoff set)."""
        if not (1 <= n_shards <= m):
            raise ValueError(f"n_shards {n_shards} outside 1..{m}")
        base, extra = divmod(m, n_shards)
        intervals, lo = [], 1
        for s in range(n_shards):
            hi = lo + base - 1 + (1 if s < extra else 0)
            intervals.append((lo, hi))
            lo = hi + 1
        return ShardPlan(m=m, intervals=tuple(intervals))

    @staticmethod
    def aligned(m: int, k: int, n_shards: int) -> "ShardPlan":
        """An exact disjoint partition for ``DisjointIntervals(m, k)``:
        shard boundaries fall on replication-group boundaries, so no
        replica set straddles a shard (Theorem 6 composition, zero
        cross-talk).  Requires at least as many groups as shards."""
        if not (1 <= k <= m):
            raise ValueError(f"k {k} outside 1..{m}")
        n_groups = -(-m // k)
        if not (1 <= n_shards <= n_groups):
            raise ValueError(
                f"n_shards {n_shards} outside 1..{n_groups} "
                f"(m={m}, k={k} gives {n_groups} disjoint groups)"
            )
        base, extra = divmod(n_groups, n_shards)
        intervals, group_lo = [], 1
        for s in range(n_shards):
            take = base + (1 if s < extra else 0)
            hi_group = group_lo + take - 1
            lo = (group_lo - 1) * k + 1
            hi = min(m, hi_group * k)
            intervals.append((lo, hi))
            group_lo = hi_group + 1
        return ShardPlan(m=m, intervals=tuple(intervals))

    @staticmethod
    def for_family(
        family: Iterable[Iterable[int]], m: int, n_shards: int
    ) -> "ShardPlan":
        """A plan with ``n_shards`` shards that no set of ``family``
        straddles, boundaries as evenly spread as the family allows.

        Raises :class:`ValueError` when the family pins too few legal
        cut points (e.g. overlapping ring replication, which admits
        only the trivial one-shard plan).
        """
        sets = [frozenset(s) for s in family]
        if any(not s or min(s) < 1 or max(s) > m for s in sets):
            raise ValueError("family sets must be non-empty within 1..m")
        if n_shards > 1 and any(1 in s and m in s for s in sets):
            # A set holding both ends of the linear layout straddles
            # the shard-0 / shard-(N-1) split whatever the cuts.
            raise ValueError(
                "family wraps the ring seam (a set holds both machine 1 "
                f"and machine {m}); no cross-talk-free multi-shard plan exists"
            )
        # A cut after machine p is legal iff no set spans it: a set
        # covering lo..hi (gaps included — min and max must stay
        # together) forbids every cut in lo..hi-1.
        legal = set(range(1, m))
        for s in sets:
            legal -= set(range(min(s), max(s)))
        if n_shards - 1 > len(legal):
            raise ValueError(
                f"family admits only {len(legal) + 1} shard(s), wanted {n_shards}"
            )
        if n_shards == 1:
            return ShardPlan.single(m)
        # Pick the legal cut nearest each ideal even boundary, left to
        # right, never reusing a cut.
        cuts: list[int] = []
        available = sorted(legal)
        for i in range(1, n_shards):
            ideal = round(i * m / n_shards)
            candidates = [p for p in available if p > (cuts[-1] if cuts else 0)]
            if len(candidates) < n_shards - i:
                raise ValueError(f"family admits no even {n_shards}-shard plan")
            best = min(candidates[: len(candidates) - (n_shards - i - 1)],
                       key=lambda p: (abs(p - ideal), p))
            cuts.append(best)
        bounds = [0] + cuts + [m]
        return ShardPlan(
            m=m, intervals=tuple((a + 1, b) for a, b in zip(bounds, bounds[1:]))
        )

    # -- lookup --------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.intervals)

    def shard_of(self, machine: int) -> int:
        """0-based shard id owning ``machine``."""
        if not (1 <= machine <= self.m):
            raise ValueError(f"machine {machine} outside 1..{self.m}")
        for sid, (lo, hi) in enumerate(self.intervals):
            if lo <= machine <= hi:
                return sid
        raise AssertionError("unreachable: intervals cover 1..m")

    def machines(self, shard: int) -> frozenset[int]:
        """The machines shard ``shard`` owns."""
        lo, hi = self.intervals[shard]
        return frozenset(range(lo, hi + 1))

    # -- routing -------------------------------------------------------------
    def route(self, machine_set: Iterable[int]) -> Route:
        """Route a processing set: fragments per shard, plus the owner.

        The owner is the shard holding the set's ring-interval *start*
        machine (interval-aware routing — the home machine of a
        Dynamo-style replica chain); for sets that are not ring
        intervals (including the full ring), the shard with the largest
        fragment owns, smallest shard id on ties.  Pure function of the
        set, so placements stay reproducible.
        """
        s = frozenset(machine_set)
        if not s:
            raise ValueError("cannot route an empty machine set")
        if min(s) < 1 or max(s) > self.m:
            raise ValueError(f"machine set {sorted(s)} outside 1..{self.m}")
        fragments = tuple(
            (sid, frag)
            for sid in range(self.n_shards)
            if (frag := s & self.machines(sid))
        )
        if len(fragments) == 1:
            return Route(owner=fragments[0][0], fragments=fragments)
        start = _ring_start(s, self.m)
        if start is not None:
            owner = self.shard_of(start)
        else:
            owner = max(fragments, key=lambda f: (len(f[1]), -f[0]))[0]
        return Route(owner=owner, fragments=fragments)

    def is_disjoint_for(self, family: Iterable[Iterable[int]]) -> bool:
        """Whether every set of ``family`` is local to one shard (the
        Theorem 6 zero-cross-talk condition)."""
        return all(self.route(s).is_local for s in family)

    def handoff_sets(self, family: Iterable[Iterable[int]]) -> list[frozenset[int]]:
        """The distinct sets of ``family`` that straddle a shard
        boundary — the plan's bounded cross-shard handoff set (for ring
        replication with factor ``k``: at most ``n_shards * (k - 1)``
        sets)."""
        out: list[frozenset[int]] = []
        seen: set[frozenset[int]] = set()
        for s in family:
            fs = frozenset(s)
            if fs not in seen and not self.route(fs).is_local:
                seen.add(fs)
                out.append(fs)
        return sorted(out, key=lambda s: sorted(s))

    # -- serialisation -------------------------------------------------------
    def to_json(self) -> str:
        """Serialise (round-trips via :meth:`from_json`); also the
        payload of the wire ``route`` op, so smart clients can route
        submits shard-side without a round trip per request."""
        return json.dumps(
            {"m": self.m, "intervals": [list(iv) for iv in self.intervals]},
            separators=(",", ":"),
        )

    @staticmethod
    def from_json(payload: str) -> "ShardPlan":
        data = json.loads(payload)
        return ShardPlan(
            m=int(data["m"]),
            intervals=tuple((int(a), int(b)) for a, b in data["intervals"]),
        )

    def describe(self) -> str:
        """Human-readable one-plan summary (the ``repro route`` verb)."""
        lines = [f"shard plan: m={self.m}, {self.n_shards} shard(s)"]
        for sid, (lo, hi) in enumerate(self.intervals):
            lines.append(f"  shard {sid}: machines {lo}..{hi} ({hi - lo + 1})")
        return "\n".join(lines)
