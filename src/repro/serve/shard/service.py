"""The sharded asyncio tier: router frontend over N dispatcher shards.

:class:`ShardServeService` is the real-time enactment of a
:class:`~repro.serve.shard.router.ShardRouter`, the sharded analogue of
:class:`repro.serve.frontend.ServeService`: one asyncio worker per
*global* machine pulls dispatched requests off its FIFO queue and
serves each for ``proc * time_scale`` wall seconds.  The frontend
speaks the same length-prefixed JSON protocol as the single-dispatcher
service — every existing client and driver works unchanged — plus three
router-only ops:

``{"op": "route"}``
    answered with the shard plan (``ShardPlan.to_json`` payload), so a
    smart client can route submits shard-side without a round trip per
    request (:mod:`repro.serve.shard.bench` does exactly this);
``{"op": "kill", "machine": j}`` / ``{"op": "revive", "machine": j}``
    live fault injection *through the router*: the kill drains the
    machine's queue and re-places the displaced work fleet-wide with
    the cross-shard handoff rule; the revive re-places router-parked
    requests.
``{"op": "detach-shard", "shard": s}`` / ``{"op": "reattach-shard", "shard": s}``
    the supervision surface (:mod:`repro.serve.supervisor`): detach
    marks a whole shard's process dead — routing degrades to the
    cross-shard failure rule or parks — and reattach rejoins it after
    recovery, re-placing anything parked in the interim.

The division of labour matches the single-dispatcher tier: *which
shard and machine* a request lands on is the router's virtual-clocked
decision (pure function of release stamps); the asyncio layer only
controls when the work physically runs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ...faults.schedule import FaultSchedule
from ...obs.snapshot import write_metrics
from ..dispatcher import DISPATCHED, REQUEUED
from ..frontend import start_endpoint
from ..protocol import (
    ProtocolError,
    check_version,
    read_frame,
    task_from_wire,
    version_error,
    write_frame,
)
from .plan import ShardPlan
from .router import RoutedDecision, ShardRouter

__all__ = ["ShardServeConfig", "ShardServeService", "build_sharded_service", "serve_sharded"]


@dataclass(frozen=True)
class ShardServeConfig:
    """Construction parameters of a sharded dispatch service.

    The plan comes from ``intervals`` when given (explicit 1-based
    inclusive shard intervals), else from :meth:`ShardPlan.aligned`
    when ``align_k`` is set (disjoint-replication-aligned boundaries,
    zero cross-talk), else :meth:`ShardPlan.even`.  The remaining knobs
    mirror :class:`repro.serve.frontend.ServeConfig`; ``slo`` and
    ``max_queue_depth`` configure *shard-local* admission.
    """

    m: int = 4
    shards: int = 1
    scheduler: str = "eft-min"
    seed: int = 0
    align_k: int | None = None
    intervals: tuple[tuple[int, int], ...] | None = None
    slo: float | None = None
    max_queue_depth: int | None = None
    time_scale: float = 1.0
    on_unavailable: str = "park"
    snapshot_path: str | None = None
    snapshot_every: float = 1.0

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("need at least one machine")
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        if self.snapshot_every <= 0:
            raise ValueError("snapshot_every must be > 0")

    def make_plan(self) -> ShardPlan:
        if self.intervals is not None:
            return ShardPlan(m=self.m, intervals=tuple(self.intervals))
        if self.align_k is not None:
            return ShardPlan.aligned(self.m, self.align_k, self.shards)
        return ShardPlan.even(self.m, self.shards)


def build_sharded_service(config: ShardServeConfig) -> "ShardServeService":
    """Wire a :class:`ShardServeService` from a :class:`ShardServeConfig`."""
    router = ShardRouter(
        config.make_plan(),
        scheduler=config.scheduler,
        seed=config.seed,
        slo=config.slo,
        max_queue_depth=config.max_queue_depth,
        on_unavailable=config.on_unavailable,
    )
    return ShardServeService(router, time_scale=config.time_scale)


class ShardServeService:
    """Real-time enactment of a :class:`ShardRouter`.

    Must be :meth:`start`-ed inside a running event loop; :meth:`stop`
    cancels the workers.  ``time_scale`` converts virtual time units to
    wall seconds.
    """

    def __init__(self, router: ShardRouter, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        self.router = router
        self.time_scale = time_scale
        self.m = router.m
        self._queues: dict[int, asyncio.Queue] = {}
        self._workers: list[asyncio.Task] = []
        self._t0: float | None = None
        self._outstanding = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.n_completed = 0
        self.n_errors = 0

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._workers:
            raise RuntimeError("service already started")
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        self._queues = {j: asyncio.Queue() for j in range(1, self.m + 1)}
        self._workers = [
            loop.create_task(self._worker(j), name=f"shard-worker-{j}")
            for j in range(1, self.m + 1)
        ]

    async def stop(self) -> None:
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []

    def now(self) -> float:
        """Wall time since :meth:`start`, in virtual units."""
        if self._t0 is None:
            return 0.0
        return (asyncio.get_running_loop().time() - self._t0) / self.time_scale

    # -- request path --------------------------------------------------------
    def submit(self, task) -> RoutedDecision:
        """Route, decide and, if dispatched, enqueue for real-time
        service on the placed machine's worker."""
        routed = self.router.submit(task)
        if routed.status in (DISPATCHED, REQUEUED):
            self._enqueue(routed)
        return routed

    def _enqueue(self, routed: RoutedDecision) -> None:
        self._outstanding += 1
        self._idle.clear()
        arrival = asyncio.get_running_loop().time()
        self._queues[routed.machine].put_nowait((routed.decision.task, arrival))

    def _alive(self, machine: int) -> bool:
        sid = self.router.plan.shard_of(machine)
        return machine in self.router.dispatchers[sid].alive

    async def _worker(self, machine: int) -> None:
        queue = self._queues[machine]
        while True:
            task, arrival = await queue.get()
            if not self._alive(machine):
                # Killed with work still queued: route it like any
                # displaced task (possibly across shards).
                self._outstanding -= 1
                self._route_displaced(task, arrival)
                self._settle()
                continue
            await asyncio.sleep(task.proc * self.time_scale)
            loop_now = asyncio.get_running_loop().time()
            sid = self.router.plan.shard_of(machine)
            self.router.shard_metrics[sid].on_complete((loop_now - arrival) / self.time_scale)
            self.n_completed += 1
            self._outstanding -= 1
            self._settle()

    def _settle(self) -> None:
        if self._outstanding == 0:
            self._idle.set()

    def _route_displaced(self, task, arrival: float) -> None:
        routed = self.router.redispatch(task, self.now())
        if routed.status == REQUEUED:
            self._outstanding += 1
            self._idle.clear()
            self._queues[routed.machine].put_nowait((task, arrival))
        # parked at the router: re-enters the queues at the next revive

    async def drain(self) -> int:
        """Wait until every dispatched request finished service (parked
        requests don't count — they hold no machine); returns the
        completion count so far."""
        await self._idle.wait()
        return self.n_completed

    # -- fault surface -------------------------------------------------------
    def kill(self, machine: int) -> int:
        """Stop ``machine`` through the router: no further dispatches,
        its queued requests re-placed fleet-wide (cross-shard handoff
        when the home shard is out).  Returns how many were displaced."""
        self.router.kill(machine)
        displaced = []
        queue = self._queues.get(machine)
        if queue is not None:
            while not queue.empty():
                displaced.append(queue.get_nowait())
        for task, arrival in displaced:
            self._outstanding -= 1
            self._route_displaced(task, arrival)
        self._settle()
        return len(displaced)

    def revive(self, machine: int) -> int:
        """Revive ``machine`` through the router and enqueue any
        re-placed router-parked requests; returns how many left the
        parking lot."""
        arrival = asyncio.get_running_loop().time()
        replaced = self.router.revive(machine, self.now())
        for routed in replaced:
            if routed.status == REQUEUED:
                self._outstanding += 1
                self._idle.clear()
                self._queues[routed.machine].put_nowait((routed.decision.task, arrival))
        return len(replaced)

    # -- supervision surface -------------------------------------------------
    def detach_shard(self, sid: int) -> None:
        """Mark shard ``sid`` down at the router (its process died);
        idempotent — see :meth:`ShardRouter.detach_shard`."""
        self.router.detach_shard(sid)

    def reattach_shard(self, sid: int) -> int:
        """Rejoin shard ``sid`` at the router and enqueue any re-placed
        router-parked requests; returns how many left the parking
        lot."""
        arrival = asyncio.get_running_loop().time()
        replaced = self.router.reattach_shard(sid, now=self.now())
        for routed in replaced:
            if routed.status == REQUEUED:
                self._outstanding += 1
                self._idle.clear()
                self._queues[routed.machine].put_nowait((routed.decision.task, arrival))
        return len(replaced)

    async def apply_faults(self, faults: FaultSchedule) -> None:
        """Replay ``faults`` in scaled wall time through the router
        (run as a background task alongside the frontend)."""
        if faults.max_machine() > self.m:
            raise ValueError(
                f"fault schedule references machine {faults.max_machine()}, "
                f"but the service has m={self.m}"
            )
        loop = asyncio.get_running_loop()
        t0 = self._t0 if self._t0 is not None else loop.time()
        for time_, kind, machine in faults.events():
            delay = t0 + time_ * self.time_scale - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if kind == "down":
                self.kill(machine)
            else:
                self.revive(machine)

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Router + per-shard counters plus the fleet metrics rollup
        (the ``stats`` op payload)."""
        stats = self.router.stats()
        stats.update(
            {
                "now": self.now(),
                "completed": self.n_completed,
                "outstanding": self._outstanding,
                "errors": self.n_errors,
                "metrics": self.router.fleet_registry().snapshot(),
            }
        )
        return stats

    async def snapshot_loop(self, path: str | Path, every: float) -> None:
        """Periodically dump the canonical fleet-rollup snapshot to
        ``path`` (run as a background task; the final state is written
        by :func:`serve_sharded` on shutdown)."""
        while True:
            await asyncio.sleep(every)
            write_metrics(
                self.router.fleet_registry(), path, meta={"source": "repro-serve-sharded"}
            )

    # -- frontend ------------------------------------------------------------
    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stop_event: asyncio.Event | None = None,
    ) -> None:
        """Serve one protocol connection until EOF (or ``shutdown``,
        which also sets ``stop_event`` for the server loop)."""
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    self.n_errors += 1
                    await write_frame(writer, {"ok": False, "error": str(exc)})
                    break  # framing is lost; drop the connection
                if message is None:
                    break
                response = await self._handle_op(message)
                await write_frame(writer, response)
                if message.get("op") == "shutdown":
                    if stop_event is not None:
                        stop_event.set()
                    break
        except (ConnectionError, BrokenPipeError):
            pass  # peer vanished mid-response; committed state stands
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_op(self, message: dict[str, Any]) -> dict[str, Any]:
        complaint = check_version(message)
        if complaint is not None:
            self.n_errors += 1
            return version_error(message, complaint)
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "op": "pong", "now": self.now(), "shards": self.router.n_shards}
        if op == "submit":
            try:
                routed = self.submit(task_from_wire(message))
            except (ProtocolError, ValueError) as exc:
                self.n_errors += 1
                return {"ok": False, "op": "submit", "tid": message.get("tid"), "error": str(exc)}
            d = routed.decision
            return {
                "ok": True,
                "op": "submit",
                "tid": d.task.tid,
                "status": d.status,
                "machine": d.machine,
                "start": d.start,
                "est_flow": d.est_flow,
                "reason": d.reason,
                "shard": routed.shard,
                "handoff": routed.handoff,
            }
        if op == "route":
            return {"ok": True, "op": "route", "plan": self.router.plan.to_json()}
        if op == "kill":
            try:
                displaced = self.kill(int(message["machine"]))
            except (KeyError, TypeError, ValueError) as exc:
                self.n_errors += 1
                return {"ok": False, "op": "kill", "error": str(exc)}
            return {"ok": True, "op": "kill", "displaced": displaced}
        if op == "revive":
            try:
                unparked = self.revive(int(message["machine"]))
            except (KeyError, TypeError, ValueError) as exc:
                self.n_errors += 1
                return {"ok": False, "op": "revive", "error": str(exc)}
            return {"ok": True, "op": "revive", "unparked": unparked}
        if op == "detach-shard":
            try:
                self.detach_shard(int(message["shard"]))
            except (KeyError, TypeError, ValueError) as exc:
                self.n_errors += 1
                return {"ok": False, "op": "detach-shard", "error": str(exc)}
            return {"ok": True, "op": "detach-shard", "down": sorted(self.router.down_shards)}
        if op == "reattach-shard":
            try:
                unparked = self.reattach_shard(int(message["shard"]))
            except (KeyError, TypeError, ValueError) as exc:
                self.n_errors += 1
                return {"ok": False, "op": "reattach-shard", "error": str(exc)}
            return {"ok": True, "op": "reattach-shard", "unparked": unparked}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.stats()}
        if op == "drain":
            completed = await self.drain()
            return {"ok": True, "op": "drain", "completed": completed}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        self.n_errors += 1
        return {"ok": False, "error": f"unknown op {op!r}"}


async def serve_sharded(
    config: ShardServeConfig,
    socket_path: str | Path | None = None,
    host: str | None = None,
    port: int | None = None,
    faults: FaultSchedule | None = None,
) -> dict[str, Any]:
    """Run a sharded dispatch service until a client sends ``shutdown``
    (or the task is cancelled); returns the final stats.

    Exactly one endpoint must be given: a unix ``socket_path`` or a TCP
    ``host``/``port`` pair.
    """
    if (socket_path is None) == (host is None or port is None):
        raise ValueError("serve_sharded needs exactly one of socket_path or host+port")
    service = build_sharded_service(config)
    await service.start()
    stop_event = asyncio.Event()

    async def on_connection(reader, writer):
        await service.handle_connection(reader, writer, stop_event)

    try:
        server = await start_endpoint(
            on_connection, socket_path=socket_path, host=host, port=port
        )
    except OSError:
        await service.stop()
        raise
    background: list[asyncio.Task] = []
    loop = asyncio.get_running_loop()
    if faults is not None and faults:
        background.append(loop.create_task(service.apply_faults(faults)))
    if config.snapshot_path is not None:
        background.append(
            loop.create_task(service.snapshot_loop(config.snapshot_path, config.snapshot_every))
        )
    try:
        async with server:
            await stop_event.wait()
    finally:
        for task in background:
            task.cancel()
        await asyncio.gather(*background, return_exceptions=True)
        await service.stop()
        if config.snapshot_path is not None:
            write_metrics(
                service.router.fleet_registry(),
                config.snapshot_path,
                meta={"source": "repro-serve-sharded"},
            )
    return service.stats()
