"""The sharded decision tier: N dispatchers behind one router.

:class:`ShardRouter` scales :class:`~repro.serve.dispatcher.Dispatcher`
out horizontally: one dispatcher per shard of a :class:`ShardPlan`,
each with its own scheduler, shard-local
:class:`~repro.serve.admission.AdmissionController` and
:class:`~repro.serve.metrics.ServeMetrics` registry.  Like the single
dispatcher, the router is *synchronous and virtual-clocked* — every
placement is a pure function of the admitted request stream — which is
what lets shadow mode byte-compare a sharded run against the
single-dispatcher golden traces (:mod:`repro.serve.shard.shadow`).

Routing invariants:

* **shard-local sets** (the whole processing set inside one shard —
  always the case on a Theorem-6 disjoint plan) are submitted to the
  owner shard's dispatcher unchanged, so per-shard decisions are
  *identical* to the fleet-wide dispatcher's (EFT only reads the
  eligible machines' completion times, and only this shard's tasks
  write them);
* **straddling sets** (the plan's bounded handoff set, overlapping
  ring replication) are dispatched to the owner shard restricted to
  the owner-side fragment; the cross-shard remainder is touched only
  when the owner fragment's alive set goes empty, at which point the
  router *hands off* using the engine's failure rule — least waiting
  work over all alive remote candidates, smallest index on ties — via
  the target dispatcher's ``redispatch`` path;
* a request with **no alive machine anywhere** in its set is parked at
  the router (or shed with ``on_unavailable="shed"``) and re-placed on
  the first revival that intersects it, in park order.

Every dispatcher addresses machines by their *global* 1-based index
(each is built over the full ``m``), so placements merge without
renumbering; a shard only ever receives tasks restricted to its own
interval, so its scheduler state never references foreign machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...campaigns.trace import make_scheduler
from ...core.schedule import Schedule
from ...core.task import Instance, Task
from ...obs.recorders import MetricsRegistry
from ...obs.rollup import rollup_registries
from ..admission import AdmissionController
from ..dispatcher import DISPATCHED, PARKED, REQUEUED, SHED, DispatchDecision, Dispatcher
from ..metrics import ServeMetrics
from .plan import ShardPlan

__all__ = ["RoutedDecision", "ShardRouter"]

#: reason attached to router-shed requests whose whole set was down.
SHED_UNAVAILABLE = "unavailable"


@dataclass(frozen=True, slots=True)
class RoutedDecision:
    """A dispatch decision plus its routing: which shard took it and
    whether it travelled the cross-shard handoff path."""

    decision: DispatchDecision
    shard: int | None
    handoff: bool = False

    @property
    def status(self) -> str:
        return self.decision.status

    @property
    def machine(self) -> int | None:
        return self.decision.machine


class ShardRouter:
    """N shard dispatchers behind interval-aware routing.

    Parameters
    ----------
    plan:
        The :class:`ShardPlan` partitioning machines into shards.
    scheduler:
        Scheduler name per shard (``eft-min`` etc.); each shard gets
        its own instance, seeded ``seed + shard_id`` for the randomised
        ones.
    slo / max_queue_depth:
        Shard-local admission (each shard reviews against its own
        analytic state only — per-shard admission ceilings).
    on_unavailable:
        ``"park"`` (default) or ``"shed"`` for requests whose whole
        set is dead fleet-wide.
    """

    def __init__(
        self,
        plan: ShardPlan,
        scheduler: str = "eft-min",
        seed: int = 0,
        slo: float | None = None,
        max_queue_depth: int | None = None,
        on_unavailable: str = "park",
    ) -> None:
        if on_unavailable not in ("park", "shed"):
            raise ValueError(f"on_unavailable must be 'park' or 'shed', got {on_unavailable!r}")
        self.plan = plan
        self.m = plan.m
        self.scheduler_name = scheduler
        self.on_unavailable = on_unavailable
        self.shard_metrics: list[ServeMetrics] = []
        self.dispatchers: list[Dispatcher] = []
        for sid in range(plan.n_shards):
            metrics = ServeMetrics()
            admission = AdmissionController(slo=slo, max_queue_depth=max_queue_depth)
            self.dispatchers.append(
                Dispatcher(
                    make_scheduler(scheduler, plan.m, seed=seed + sid),
                    admission=admission if admission.enabled else None,
                    metrics=metrics,
                )
            )
            self.shard_metrics.append(metrics)
        self.router_registry = MetricsRegistry()
        self._routed = self.router_registry.counter("router_routed_total")
        self._handoffs = self.router_registry.counter("router_handoffs_total")
        self.down_shards: set[int] = set()
        self.parked: list[Task] = []
        self.decisions: list[RoutedDecision] = []
        self._tasks: dict[int, Task] = {}
        self.placements: dict[int, tuple[int, float]] = {}
        self.n_handoffs = 0
        self.n_shed = 0

    # -- state ---------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    def shard_alive(self, sid: int) -> frozenset[int]:
        """Alive machines of shard ``sid`` (its own interval only).
        A detached shard counts as fully dead regardless of its
        dispatcher's books — its process is gone."""
        if sid in self.down_shards:
            return frozenset()
        return frozenset(self.plan.machines(sid) & self.dispatchers[sid].alive)

    def alive(self) -> frozenset[int]:
        """Fleet-wide alive set."""
        out: set[int] = set()
        for sid in range(self.n_shards):
            out |= self.shard_alive(sid)
        return frozenset(out)

    # -- the decision path ---------------------------------------------------
    def submit(self, task: Task) -> RoutedDecision:
        """Route and decide one fresh release (release order, as the
        dispatcher contract requires — per-shard substreams of a
        release-ordered stream are release-ordered)."""
        route = self.plan.route(task.eligible(self.m))
        self._routed.inc()
        self.router_registry.counter(f"router_routed_shard[{route.owner}]_total").inc()
        owner = route.owner
        owner_frag = route.owner_fragment
        if owner not in self.down_shards and owner_frag & self.dispatchers[owner].alive:
            if route.is_local:
                decision = self.dispatchers[owner].submit(task)
            else:
                decision = self.dispatchers[owner].submit(task.restricted_to(owner_frag))
            return self._book(task, decision, owner)
        # Owner-side fragment fully dead: cross-shard failure handoff.
        return self._place_failed(task, route, now=task.release, reason="handoff")

    def _place_failed(self, task: Task, route, now: float, reason: str) -> RoutedDecision:
        """The failure path: place over every alive candidate fleet-wide
        with the engine's least-waiting-work rule, or park/shed."""
        candidates = [
            (sid, j)
            for sid, frag in route.fragments
            if sid not in self.down_shards
            for j in sorted(frag & self.dispatchers[sid].alive)
        ]
        if not candidates:
            if self.on_unavailable == "shed":
                decision = DispatchDecision(task=task, status=SHED, reason=SHED_UNAVAILABLE)
                self.decisions.append(RoutedDecision(decision=decision, shard=None))
                self.n_shed += 1
                self.router_registry.counter("router_shed_unavailable_total").inc()
                return self.decisions[-1]
            self.parked.append(task)
            decision = DispatchDecision(task=task, status=PARKED)
            self.decisions.append(RoutedDecision(decision=decision, shard=None))
            self.router_registry.counter("router_parked_total").inc()
            self.router_registry.gauge("router_parked_now").set(len(self.parked))
            return self.decisions[-1]
        sid, _ = min(
            candidates,
            key=lambda c: (self.dispatchers[c[0]].waiting_work(c[1], now), c[1]),
        )
        frag = route.fragment(sid)
        sub = task if frag == task.eligible(self.m) else task.restricted_to(frag)
        decision = self.dispatchers[sid].redispatch(sub, now, reason=reason)
        handoff = sid != route.owner
        if handoff:
            self.n_handoffs += 1
            self._handoffs.inc()
        return self._book(task, decision, sid, handoff=handoff)

    def _book(
        self, task: Task, decision: DispatchDecision, shard: int, handoff: bool = False
    ) -> RoutedDecision:
        """Record a shard decision under the *original* task (the shard
        may have seen a fragment-restricted copy)."""
        if decision.status in (DISPATCHED, REQUEUED):
            self._tasks[task.tid] = task
            self.placements[task.tid] = (decision.machine, decision.start)
        elif decision.status == SHED:
            self.n_shed += 1
        elif decision.status == PARKED:
            # The shard parked it (a race only possible through direct
            # dispatcher use); keep router books consistent anyway.
            pass
        routed = RoutedDecision(decision=decision, shard=shard, handoff=handoff)
        self.decisions.append(routed)
        return routed

    # -- rebalance surface ---------------------------------------------------
    def apply_placement(
        self,
        old_sets: dict[int, frozenset[int]],
        new_sets: dict[int, frozenset[int]],
        now: float,
        warmup: float = 0.0,
        version: int | None = None,
    ) -> list[RoutedDecision]:
        """Enact a re-replication decision fleet-wide.

        The sharded analogue of
        :meth:`repro.serve.dispatcher.Dispatcher.apply_placement`:
        machines joining a home's replica set are charged ``warmup`` on
        their owning shard's scheduler; queued-but-unstarted requests
        whose machine left their home's set are withdrawn from the
        shard that booked them and re-placed through the router's
        cross-shard failure rule (least waiting work over every alive
        candidate, smallest index on ties), in tid order — a migration
        may therefore *hand off* to another shard.  Counters and the
        placement-version gauge land in the router registry (lazily, so
        never-rebalanced fleets snapshot without rebalance keys).
        """
        added = sorted(
            {
                j
                for u, new in new_sets.items()
                for j in new - old_sets.get(u, frozenset())
            }
        )
        if warmup > 0.0:
            for j in added:
                d = self.dispatchers[self.plan.shard_of(j)]
                d.scheduler.completions[j] = max(d.scheduler.completions[j], now) + warmup
        migrated: list[RoutedDecision] = []
        for tid in sorted(self.placements):
            machine, start = self.placements[tid]
            if start <= now:
                continue
            task = self._tasks[tid]
            if task.key is None or task.key not in new_sets:
                continue
            new_set = new_sets[task.key]
            if machine in new_set:
                continue
            sid = self.plan.shard_of(machine)
            pulled = self.dispatchers[sid].withdraw(tid, now)
            if pulled is None:  # pragma: no cover - guarded by start > now
                continue
            del self.placements[tid]
            del self._tasks[tid]
            moved = Task(
                tid=task.tid,
                release=task.release,
                proc=task.proc,
                machines=frozenset(new_set),
                key=task.key,
            )
            migrated.append(self.redispatch(moved, now, reason="rebalance"))
        self.router_registry.counter("router_rebalance_applied_total").inc()
        self.router_registry.counter("router_rebalance_migrated_total").inc(len(migrated))
        self.router_registry.counter("router_rebalance_warmup_machines_total").inc(len(added))
        if version is not None:
            self.router_registry.gauge("router_placement_version").set(version)
        return migrated

    # -- fault surface -------------------------------------------------------
    def kill(self, machine: int) -> int:
        """Mark ``machine`` dead on its owning shard; returns the shard
        id.  Re-routing queued work is the service layer's job."""
        sid = self.plan.shard_of(machine)
        self.dispatchers[sid].kill(machine)
        return sid

    def redispatch(self, task: Task, now: float, reason: str = "failure") -> RoutedDecision:
        """Re-place a displaced task (machine failure) fleet-wide: the
        cross-shard handoff rule over every alive candidate."""
        return self._place_failed(task, self.plan.route(task.eligible(self.m)), now, reason)

    def revive(self, machine: int, now: float = 0.0) -> list[RoutedDecision]:
        """Revive ``machine`` and re-place every router-parked task
        whose set now intersects the fleet's alive machines, in park
        order (the engine's recovery rule)."""
        sid = self.plan.shard_of(machine)
        if machine in self.dispatchers[sid].alive:
            return []
        # The shard dispatcher holds no parked tasks (the router parks
        # before a doomed submit reaches a shard), so its revive only
        # flips the alive bit and records the metric.
        self.dispatchers[sid].revive(machine, now)
        return self._unpark(now)

    def _unpark(self, now: float) -> list[RoutedDecision]:
        """Re-place every router-parked task whose set now intersects
        the fleet's alive machines, in park order (the engine's
        recovery rule)."""
        alive = self.alive()
        pending, self.parked = self.parked, []
        replaced: list[RoutedDecision] = []
        still_parked: list[Task] = []
        for task in pending:
            if task.eligible(self.m) & alive:
                replaced.append(self.redispatch(task, now, reason="unpark"))
                self.router_registry.counter("router_unparked_total").inc()
            else:
                still_parked.append(task)
        self.parked = still_parked + self.parked
        self.router_registry.gauge("router_parked_now").set(len(self.parked))
        return replaced

    # -- supervision surface -------------------------------------------------
    def detach_shard(self, sid: int) -> None:
        """Mark shard ``sid`` down — its *process* died, so the router
        must stop routing to it regardless of the (stale) alive bits in
        its dispatcher's books.  Submits owned by a detached shard take
        the cross-shard failure path (least waiting work over every
        alive candidate elsewhere) or park when no shard can serve
        them.  Idempotent."""
        if not 0 <= sid < self.n_shards:
            raise ValueError(f"shard {sid} out of range [0, {self.n_shards})")
        if sid in self.down_shards:
            return
        self.down_shards.add(sid)
        self.router_registry.counter("router_detached_total").inc()
        self.router_registry.gauge("router_shards_down").set(len(self.down_shards))

    def reattach_shard(
        self, sid: int, dispatcher: Dispatcher | None = None, now: float = 0.0
    ) -> list[RoutedDecision]:
        """Rejoin shard ``sid`` after a restart.

        ``dispatcher`` (when given) replaces the shard's dispatcher
        with the journal-recovered instance — its books, scheduler
        state and metrics registry carry over from before the crash.
        Router-parked tasks whose sets the rejoined shard can now
        serve are re-placed in park order, exactly like a machine
        revival.  Returns those re-placements."""
        if not 0 <= sid < self.n_shards:
            raise ValueError(f"shard {sid} out of range [0, {self.n_shards})")
        if sid not in self.down_shards:
            return []
        if dispatcher is not None:
            if dispatcher.m != self.m:
                raise ValueError(
                    f"recovered dispatcher has m={dispatcher.m}, router has m={self.m}"
                )
            self.dispatchers[sid] = dispatcher
            if dispatcher.metrics is not None:
                self.shard_metrics[sid] = dispatcher.metrics
        self.down_shards.discard(sid)
        self.router_registry.counter("router_reattached_total").inc()
        self.router_registry.gauge("router_shards_down").set(len(self.down_shards))
        return self._unpark(now)

    # -- results -------------------------------------------------------------
    def schedule(self) -> Schedule:
        """The merged committed schedule across every shard, under the
        original (unfragmented) tasks."""
        inst = Instance(m=self.m, tasks=tuple(self._tasks.values()))
        return Schedule(inst, dict(self.placements))

    def shard_schedule(self, sid: int) -> Schedule:
        """Shard ``sid``'s own committed schedule (its dispatcher's
        books — fragment-restricted tasks appear restricted)."""
        return self.dispatchers[sid].schedule()

    def fleet_registry(self, members: bool = True) -> MetricsRegistry:
        """Per-shard + router metrics rolled into one registry
        (:func:`repro.obs.rollup.rollup_registries`)."""
        named = {f"shard{sid}": m.registry for sid, m in enumerate(self.shard_metrics)}
        named["router"] = self.router_registry
        return rollup_registries(named, members=members)

    def stats(self) -> dict[str, Any]:
        """Router counters plus per-shard dispatcher counters."""
        per_shard = []
        for sid, d in enumerate(self.dispatchers):
            lo, hi = self.plan.intervals[sid]
            per_shard.append(
                {
                    "shard": sid,
                    "machines": [lo, hi],
                    "alive": sorted(self.shard_alive(sid)),
                    "dispatched": d.n_dispatched,
                    "shed": d.n_shed,
                    "requeued": d.n_requeued,
                    "parked": len(d.parked),
                }
            )
        return {
            "m": self.m,
            "shards": per_shard,
            "down_shards": sorted(self.down_shards),
            "routed": self._routed.value,
            "handoffs": self.n_handoffs,
            "parked": len(self.parked),
            "shed": self.n_shed,
        }
