"""Open-loop load generator for the dispatch service.

The driver replays a scheduling :class:`~repro.core.task.Instance` —
built from a :class:`~repro.simulation.workload.WorkloadSpec` or a
:class:`~repro.simulation.kvstore.KeyValueStore` request stream — over
the wire at the workload's own Poisson pacing: request ``i`` is sent at
wall offset ``release_i * time_scale`` whether or not earlier responses
have arrived (open loop, so a saturated service sees the true arrival
process, not one throttled by its own latency).  Responses are
collected concurrently on the same connection.

Because the service decides placements from the *virtual* release
stamps carried by the requests, a drive of the same workload (same
seed) reports identical task→machine assignments on every run — the
:attr:`DriveReport.assignments_digest` makes that a one-line check.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..core.task import Instance
from ..simulation.kvstore import KeyValueStore
from ..simulation.workload import WorkloadSpec, generate_workload
from ..obs.rollup import rollup_snapshots
from .protocol import read_frame, task_to_wire, versioned, write_frame

__all__ = ["DriveReport", "build_drive_instance", "drive", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` by nearest-rank on the
    sorted data.

    Raises :class:`ValueError` on an empty sequence — a percentile of
    nothing is not 0, and silently reporting one hid empty-tail bugs.
    """
    if not values:
        raise ValueError("percentile() of an empty sequence")
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


@dataclass
class DriveReport:
    """Outcome of one drive run.

    ``n_errors`` counts requests the server answered with ``ok: false``
    *plus* submits that never got a response — a correct run reports
    zero (the "no requests dropped by a bug" invariant; shed requests
    are accounted separately, they are policy, not bugs).
    """

    n_sent: int = 0
    n_acked: int = 0
    n_dispatched: int = 0
    n_shed: int = 0
    n_parked: int = 0
    n_errors: int = 0
    n_retries: int = 0
    n_reconnects: int = 0
    n_dup_acks: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    est_flows: list[float] = field(default_factory=list)
    assignments: list[tuple[int, int]] = field(default_factory=list)
    elapsed: float = 0.0
    target_rate: float | None = None
    server_stats: dict[str, Any] | None = None

    @property
    def achieved_rate(self) -> float:
        return self.n_sent / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def assignments_digest(self) -> str:
        """SHA-256 over the ``tid:machine`` assignment list in
        submission order — equal digests mean identical placements."""
        payload = ",".join(f"{tid}:{machine}" for tid, machine in self.assignments)
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_text(self) -> str:
        lines = [
            f"drive report: sent {self.n_sent} requests in {self.elapsed:.3f} s "
            + (
                f"(target {self.target_rate:.1f} rps, achieved {self.achieved_rate:.1f} rps)"
                if self.target_rate
                else f"(achieved {self.achieved_rate:.1f} rps)"
            ),
            f"acked: {self.n_acked}/{self.n_sent}  errors: {self.n_errors}",
            f"dispatched: {self.n_dispatched}  shed: {self.n_shed}"
            + (
                " (" + ", ".join(f"{k} {v}" for k, v in sorted(self.shed_by_reason.items())) + ")"
                if self.shed_by_reason
                else ""
            )
            + f"  parked: {self.n_parked}",
        ]
        if self.n_retries or self.n_reconnects or self.n_dup_acks:
            lines.append(
                f"resilience: retries {self.n_retries}  reconnects {self.n_reconnects}  "
                f"duplicate acks {self.n_dup_acks}"
            )
        if self.est_flows:
            lines.append(
                "est flow (virtual units): "
                f"p50={percentile(self.est_flows, 0.50):.6g}  "
                f"p99={percentile(self.est_flows, 0.99):.6g}  "
                f"max={max(self.est_flows):.6g}"
            )
        if self.server_stats is not None:
            s = self.server_stats
            wall = s.get("metrics", {}).get("histograms", {}).get("wall_flow")
            extra = ""
            if wall and wall.get("count"):
                extra = (
                    f", wall flow mean={wall['sum'] / wall['count']:.6g} "
                    f"max={wall['max']:.6g} (virtual units)"
                )
            lines.append(f"server: completed {s.get('completed', 0)}{extra}")
        lines.append(f"assignments sha256: {self.assignments_digest}")
        return "\n".join(lines)

    @classmethod
    def merge(
        cls, reports: Sequence["DriveReport"], order: Sequence[int] | None = None
    ) -> "DriveReport":
        """Merge per-shard drive reports into one fleet report.

        Counters sum; ``elapsed`` is the slowest shard (the drives ran
        concurrently); assignments and estimated flows are reassembled
        in ``order`` (the tid sequence of the full instance — submission
        order, so the merged :attr:`assignments_digest` is directly
        comparable to a single-connection drive of the same workload),
        falling back to tid order.  Per-shard server stats are kept
        under ``"shards"`` with their metrics rolled up fleet-wide
        (:func:`repro.obs.rollup.rollup_snapshots`).
        """
        if not reports:
            raise ValueError("merge() of no reports")
        merged = cls()
        placed: list[tuple[int, int, float]] = []
        targets = [r.target_rate for r in reports if r.target_rate]
        merged.target_rate = sum(targets) if targets else None
        for r in reports:
            merged.n_sent += r.n_sent
            merged.n_acked += r.n_acked
            merged.n_dispatched += r.n_dispatched
            merged.n_shed += r.n_shed
            merged.n_parked += r.n_parked
            merged.n_errors += r.n_errors
            merged.n_retries += r.n_retries
            merged.n_reconnects += r.n_reconnects
            merged.n_dup_acks += r.n_dup_acks
            for reason, count in r.shed_by_reason.items():
                merged.shed_by_reason[reason] = merged.shed_by_reason.get(reason, 0) + count
            placed.extend(
                (tid, machine, flow)
                for (tid, machine), flow in zip(r.assignments, r.est_flows)
            )
            merged.elapsed = max(merged.elapsed, r.elapsed)
        rank = (
            {tid: i for i, tid in enumerate(order)}
            if order is not None
            else {tid: tid for tid, _, _ in placed}
        )
        placed.sort(key=lambda p: rank.get(p[0], p[0]))
        merged.assignments = [(tid, machine) for tid, machine, _ in placed]
        merged.est_flows = [flow for _, _, flow in placed]
        shard_stats = [r.server_stats for r in reports if r.server_stats is not None]
        if shard_stats:
            merged.server_stats = {
                "shards": shard_stats,
                "completed": sum(s.get("completed", 0) for s in shard_stats),
                "metrics": rollup_snapshots(
                    {
                        f"shard{i}": s["metrics"]
                        for i, s in enumerate(shard_stats)
                        if "metrics" in s
                    },
                    members=False,
                ),
            }
        return merged


def build_drive_instance(
    source: str = "spec",
    m: int = 4,
    n: int = 200,
    rate: float = 100.0,
    k: int = 2,
    strategy: str = "overlapping",
    proc: float = 0.01,
    seed: int = 0,
    n_keys: int = 512,
    key_zipf_s: float = 0.0,
) -> Instance:
    """Build the request stream a drive replays.

    ``source="spec"`` draws a Figure-11-style workload (machine-level
    popularity) from a :class:`WorkloadSpec`; ``source="kv"`` runs the
    key-granularity pipeline (hash ring, per-key replica sets) of
    :class:`KeyValueStore`.  Either way releases are Poisson with
    ``rate`` arrivals per virtual unit and every request runs ``proc``
    units, so the offered load is ``rate * proc / m``.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if proc <= 0:
        raise ValueError("proc must be > 0")
    rng = np.random.default_rng(seed)
    if source == "spec":
        spec = WorkloadSpec(m=m, n=n, lam=rate, k=k, strategy=strategy, case="uniform", proc=proc)
        return generate_workload(spec, rng=rng)
    if source == "kv":
        store = KeyValueStore.build(m, n_keys=n_keys, k=k, strategy=strategy, key_zipf_s=key_zipf_s)
        return store.request_stream(lam=rate, n=n, rng=rng, proc=proc)
    raise ValueError(f"unknown drive source {source!r} (expected 'spec' or 'kv')")


async def drive(
    instance: Instance,
    socket_path: str | Path | None = None,
    host: str | None = None,
    port: int | None = None,
    time_scale: float = 1.0,
    target_rate: float | None = None,
    drain: bool = True,
    stats: bool = True,
    shutdown: bool = False,
) -> DriveReport:
    """Replay ``instance`` against a running service and report.

    Requests go out open-loop at ``release * time_scale`` wall offsets;
    after the last submit the driver (optionally) drains the service,
    pulls the final stats and (optionally) shuts the server down.
    """
    if (socket_path is None) == (host is None or port is None):
        raise ValueError("drive needs exactly one of socket_path or host+port")
    if time_scale <= 0:
        raise ValueError("time_scale must be > 0")
    if socket_path is not None:
        reader, writer = await asyncio.open_unix_connection(path=str(socket_path))
    else:
        reader, writer = await asyncio.open_connection(host=host, port=port)
    report = DriveReport(target_rate=target_rate)
    tasks = list(instance)
    acks: list[dict[str, Any] | None] = []

    async def collect() -> None:
        for _ in range(len(tasks)):
            acks.append(await read_frame(reader))

    loop = asyncio.get_running_loop()
    collector = loop.create_task(collect())
    try:
        t0 = loop.time()
        for task in tasks:
            delay = t0 + task.release * time_scale - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await write_frame(writer, versioned({"op": "submit", **task_to_wire(task)}))
            report.n_sent += 1
        await collector
        report.elapsed = loop.time() - t0
        if drain:
            await write_frame(writer, {"op": "drain"})
            await read_frame(reader)
        if stats:
            await write_frame(writer, {"op": "stats"})
            response = await read_frame(reader)
            if response is not None and response.get("ok"):
                report.server_stats = response.get("stats")
        if shutdown:
            await write_frame(writer, {"op": "shutdown"})
            await read_frame(reader)
    finally:
        collector.cancel()
        await asyncio.gather(collector, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass

    for ack in acks:
        if ack is None or not ack.get("ok"):
            report.n_errors += 1
            continue
        report.n_acked += 1
        status = ack.get("status")
        if status == "dispatched" or status == "requeued":
            report.n_dispatched += 1
            report.assignments.append((ack["tid"], ack["machine"]))
            report.est_flows.append(float(ack["est_flow"]))
        elif status == "shed":
            report.n_shed += 1
            reason = ack.get("reason") or "unknown"
            report.shed_by_reason[reason] = report.shed_by_reason.get(reason, 0) + 1
        elif status == "parked":
            report.n_parked += 1
    report.n_errors += report.n_sent - len(acks)
    return report
