"""The asyncio serving layer: workers, frontend, live faults.

:class:`ServeService` enacts the virtual-clocked decisions of a
:class:`~repro.serve.dispatcher.Dispatcher` in real time: one asyncio
worker per machine pulls dispatched requests off its FIFO queue and
"serves" each for ``proc * time_scale`` wall seconds — the same
one-task-at-a-time, run-to-completion machine model as the engine.
The frontend accepts :mod:`repro.serve.protocol` frames over a unix
socket or TCP and answers every ``submit`` immediately with the
dispatch decision (the push model: no response ever waits on service
completion).

The division of labour is strict: *which machine gets a request* is
decided by the dispatcher from the request's virtual release stamp, so
assignments are reproducible run over run; the asyncio layer only
controls *when* the work physically happens, which is where wall-clock
jitter lives (and is measured, in the ``wall_flow`` histogram).

Fault injection: :meth:`ServeService.kill` stops a machine (its queued
requests are re-dispatched over the alive machines; the in-flight one
finishes — drain-on-failure semantics), :meth:`ServeService.revive`
brings it back and re-dispatches parked requests.
:meth:`ServeService.apply_faults` replays a
:class:`repro.faults.FaultSchedule` in scaled wall time, so the same
outage scenarios used in degraded-mode simulation drive the live
service.
"""

from __future__ import annotations

import asyncio
import errno
import socket as socket_module
import stat as stat_module
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..campaigns.trace import make_scheduler
from ..faults.schedule import FaultSchedule
from ..obs.snapshot import write_metrics
from .admission import AdmissionController
from .dispatcher import DISPATCHED, REQUEUED, DispatchDecision, Dispatcher
from .journal import Journal, Recovery
from .metrics import ServeMetrics
from .protocol import (
    ProtocolError,
    check_version,
    read_frame,
    task_from_wire,
    task_to_wire,
    version_error,
    write_frame,
)

__all__ = [
    "AddressInUseError",
    "ServeConfig",
    "ServeService",
    "build_service",
    "serve",
    "start_endpoint",
]


class AddressInUseError(OSError):
    """The requested socket path / TCP port is already bound.

    Raised instead of letting the raw :class:`OSError` escape as an
    asyncio traceback, so callers (and the CLI, which maps this to its
    own exit code) can tell "the operator pointed two services at one
    endpoint" apart from every other failure.
    """

    def __init__(self, endpoint: str, cause: OSError) -> None:
        super().__init__(cause.errno, f"address already in use: {endpoint}")
        self.endpoint = endpoint


async def start_endpoint(
    on_connection: Any,
    socket_path: str | Path | None = None,
    host: str | None = None,
    port: int | None = None,
) -> asyncio.AbstractServer:
    """Bind the server endpoint, translating EADDRINUSE into the typed
    :class:`AddressInUseError` (shared by ``serve`` and
    ``serve_sharded``).

    TCP binds surface EADDRINUSE on their own.  Unix sockets need a
    probe: asyncio *unlinks* an existing socket path before binding —
    it would silently steal the endpoint from a live service — so an
    existing path that still accepts connections is refused here, and
    only a stale one (dead server, connection refused) is rebound.
    """
    try:
        if socket_path is not None:
            path = str(socket_path)
            if _unix_socket_active(path):
                raise AddressInUseError(path, OSError(errno.EADDRINUSE, "address in use"))
            return await asyncio.start_unix_server(on_connection, path=path)
        return await asyncio.start_server(on_connection, host=host, port=port)
    except AddressInUseError:
        raise
    except OSError as exc:
        if exc.errno == errno.EADDRINUSE:
            endpoint = str(socket_path) if socket_path is not None else f"{host}:{port}"
            raise AddressInUseError(endpoint, exc) from exc
        raise


def _unix_socket_active(path: str) -> bool:
    """Whether ``path`` is a unix socket with a live listener behind it."""
    try:
        if not stat_module.S_ISSOCK(Path(path).stat().st_mode):
            return False
    except OSError:
        return False
    probe = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    try:
        probe.settimeout(1.0)
        probe.connect(path)
    except OSError:
        return False  # stale socket file: safe to rebind
    finally:
        probe.close()
    return True


@dataclass(frozen=True)
class ServeConfig:
    """Construction parameters of a dispatch service.

    ``time_scale`` is wall seconds per virtual time unit: a request
    with ``proc=0.01`` occupies its machine for ``0.01 * time_scale``
    wall seconds.  ``slo`` / ``max_queue_depth`` configure admission
    (``None`` disables each); ``snapshot_path`` + ``snapshot_every``
    enable the periodic canonical metrics dump.

    ``journal_dir`` enables the write-ahead journal
    (:mod:`repro.serve.journal`): every state transition is logged
    before it is acknowledged, and a service built over a directory
    that already holds a journal *recovers* — snapshot restore plus WAL
    replay — before accepting traffic.  ``journal_fsync`` picks the
    durability policy; ``journal_snapshot_every`` triggers a state
    snapshot + log compaction every N journal records (0 = never).
    """

    m: int = 4
    scheduler: str = "eft-min"
    seed: int = 0
    slo: float | None = None
    max_queue_depth: int | None = None
    time_scale: float = 1.0
    on_unavailable: str = "park"
    snapshot_path: str | None = None
    snapshot_every: float = 1.0
    journal_dir: str | None = None
    journal_fsync: str = "commit"
    journal_snapshot_every: int = 0

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("need at least one machine")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        if self.snapshot_every <= 0:
            raise ValueError("snapshot_every must be > 0")
        if self.journal_snapshot_every < 0:
            raise ValueError("journal_snapshot_every must be >= 0")


def build_service(config: ServeConfig) -> "ServeService":
    """Wire a :class:`ServeService` from a :class:`ServeConfig`.

    With ``journal_dir`` set, an existing journal there is recovered:
    the dispatcher is rebuilt decision-for-decision (the replay also
    re-drives the metrics recorders), recovery counters land in the
    registry, and the service resumes the unfinished work on start.
    """
    scheduler = make_scheduler(config.scheduler, config.m, seed=config.seed)
    metrics = ServeMetrics()
    admission = AdmissionController(slo=config.slo, max_queue_depth=config.max_queue_depth)
    admission = admission if admission.enabled else None
    journal: Journal | None = None
    recovery: Recovery | None = None
    if config.journal_dir is not None:
        journal = Journal(config.journal_dir, fsync=config.journal_fsync)
        if journal.has_state:
            t0 = time.perf_counter()
            recovery = Dispatcher.recover(
                journal,
                scheduler,
                admission=admission,
                metrics=metrics,
                on_unavailable=config.on_unavailable,
            )
            registry = metrics.registry
            registry.counter("recovery_runs_total").inc()
            registry.counter("recovery_replayed_total").inc(recovery.n_replayed)
            registry.counter("recovery_dropped_tail_total").inc(recovery.n_dropped_tail)
            registry.gauge("recovery_seconds").set(time.perf_counter() - t0)
    if recovery is not None:
        dispatcher = recovery.dispatcher
    else:
        dispatcher = Dispatcher(
            scheduler,
            admission=admission,
            metrics=metrics,
            on_unavailable=config.on_unavailable,
        )
    return ServeService(
        dispatcher,
        metrics,
        time_scale=config.time_scale,
        journal=journal,
        recovery=recovery,
        journal_snapshot_every=config.journal_snapshot_every,
    )


class ServeService:
    """Real-time enactment of a :class:`Dispatcher`.

    Must be :meth:`start`-ed inside a running event loop; :meth:`stop`
    cancels the workers.  ``time_scale`` converts virtual time units to
    wall seconds.
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        metrics: ServeMetrics,
        time_scale: float = 1.0,
        journal: Journal | None = None,
        recovery: Recovery | None = None,
        journal_snapshot_every: int = 0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        self.dispatcher = dispatcher
        self.metrics = metrics
        self.time_scale = time_scale
        self.m = dispatcher.m
        self.journal = journal
        self.recovery = recovery
        self.journal_snapshot_every = journal_snapshot_every
        self._queues: dict[int, asyncio.Queue] = {}
        self._workers: list[asyncio.Task] = []
        self._t0: float | None = None
        self._outstanding = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.n_completed = 0
        self._completed_tids: set[int] = set()
        #: dedupe key -> original decision (idempotent retries are
        #: answered from here without touching the dispatcher).
        self._dedupe: dict[str, DispatchDecision] = {}
        if recovery is not None:
            self.n_completed = recovery.n_completed
            self._completed_tids = set(recovery.completed)
            self._dedupe = dict(recovery.dedupe)

    # -- journal plumbing ----------------------------------------------------
    def _journal_append(self, kind: str, data: dict[str, Any], commit: bool = False) -> None:
        if self.journal is not None:
            self.journal.append(kind, data, commit=commit)

    def _maybe_snapshot(self) -> None:
        journal = self.journal
        if (
            journal is None
            or self.journal_snapshot_every <= 0
            or journal.seq - journal.snapshot_seq < self.journal_snapshot_every
        ):
            return
        journal.write_snapshot(self._snapshot_state())
        self.metrics.registry.counter("journal_snapshots_total").inc()

    def _snapshot_state(self) -> dict[str, Any]:
        dedupe_wire = {
            key: {
                "task": task_to_wire(d.task),
                "status": d.status,
                "machine": d.machine,
                "start": d.start,
                "est_flow": d.est_flow,
                "reason": d.reason,
            }
            for key, d in self._dedupe.items()
        }
        return {
            "dispatcher": self.dispatcher.state_dict(),
            "service": {
                "completed": sorted(self._completed_tids),
                "n_completed": self.n_completed,
                "dedupe": dedupe_wire,
            },
        }

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        if self._workers:
            raise RuntimeError("service already started")
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        self._queues = {j: asyncio.Queue() for j in range(1, self.m + 1)}
        self._workers = [
            loop.create_task(self._worker(j), name=f"serve-worker-{j}")
            for j in range(1, self.m + 1)
        ]
        if self.recovery is not None:
            # Re-enqueue the work the crashed process had placed but
            # not finished (at-least-once service; dispatch stays
            # exactly-once through the journal + dedupe cache).
            arrival = loop.time()
            for tid, machine in self.recovery.pending():
                task = self.dispatcher._tasks[tid]
                self._outstanding += 1
                self._idle.clear()
                self._queues[machine].put_nowait((task, arrival))

    async def stop(self) -> None:
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self.journal is not None:
            self.journal.close()

    def now(self) -> float:
        """Wall time since :meth:`start`, in virtual units."""
        if self._t0 is None:
            return 0.0
        return (asyncio.get_running_loop().time() - self._t0) / self.time_scale

    # -- request path --------------------------------------------------------
    def submit(self, task) -> DispatchDecision:
        """Decide and, if dispatched, enqueue for real-time service."""
        decision = self.dispatcher.submit(task)
        if decision.status == DISPATCHED:
            self._enqueue(decision)
        return decision

    def _enqueue(self, decision: DispatchDecision) -> None:
        self._outstanding += 1
        self._idle.clear()
        arrival = asyncio.get_running_loop().time()
        self._queues[decision.machine].put_nowait((decision.task, arrival))

    async def _worker(self, machine: int) -> None:
        queue = self._queues[machine]
        while True:
            task, arrival = await queue.get()
            if machine not in self.dispatcher.alive:
                # Killed with work still queued (race with kill's own
                # drain): route it like any displaced task.
                self._outstanding -= 1
                self._route_displaced(task, arrival)
                self._settle()
                continue
            await asyncio.sleep(task.proc * self.time_scale)
            loop_now = asyncio.get_running_loop().time()
            self.metrics.on_complete((loop_now - arrival) / self.time_scale)
            self.n_completed += 1
            self._completed_tids.add(task.tid)
            # Completion durability rides the batch: a torn tail
            # ``complete`` only re-serves idempotent simulated work.
            self._journal_append("complete", {"tid": task.tid})
            self._outstanding -= 1
            self._settle()

    def _settle(self) -> None:
        if self._outstanding == 0:
            self._idle.set()

    def _route_displaced(self, task, arrival: float) -> None:
        now = self.now()
        self._journal_append("redispatch", {"tid": task.tid, "now": now}, commit=True)
        decision = self.dispatcher.redispatch(task, now)
        if decision.status == REQUEUED:
            self._outstanding += 1
            self._idle.clear()
            self._queues[decision.machine].put_nowait((task, arrival))
        # parked: it re-enters the queues at the next revive

    async def drain(self) -> int:
        """Wait until every dispatched request finished service (parked
        requests don't count — they hold no machine); returns the
        completion count so far."""
        await self._idle.wait()
        return self.n_completed

    # -- fault surface -------------------------------------------------------
    def kill(self, machine: int) -> int:
        """Stop ``machine``: no further dispatches, queued requests are
        re-dispatched over the alive machines (the in-flight request
        finishes — drain-on-failure).  Returns how many were displaced."""
        self._journal_append("kill", {"machine": machine, "now": self.now()}, commit=True)
        self.dispatcher.kill(machine)
        displaced = []
        queue = self._queues.get(machine)
        if queue is not None:
            while not queue.empty():
                displaced.append(queue.get_nowait())
        for task, arrival in displaced:
            self._outstanding -= 1
            self._route_displaced(task, arrival)
        self._settle()
        return len(displaced)

    def revive(self, machine: int) -> int:
        """Revive ``machine`` and enqueue any unparked requests;
        returns how many left the parking lot."""
        arrival = asyncio.get_running_loop().time()
        now = self.now()
        self._journal_append("revive", {"machine": machine, "now": now}, commit=True)
        unparked = self.dispatcher.revive(machine, now)
        for decision in unparked:
            self._outstanding += 1
            self._idle.clear()
            self._queues[decision.machine].put_nowait((decision.task, arrival))
        return len(unparked)

    async def apply_faults(self, faults: FaultSchedule) -> None:
        """Replay ``faults`` in scaled wall time (run as a background
        task alongside the frontend)."""
        if faults.max_machine() > self.m:
            raise ValueError(
                f"fault schedule references machine {faults.max_machine()}, "
                f"but the service has m={self.m}"
            )
        loop = asyncio.get_running_loop()
        t0 = self._t0 if self._t0 is not None else loop.time()
        for time_, kind, machine in faults.events():
            delay = t0 + time_ * self.time_scale - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if kind == "down":
                self.kill(machine)
            else:
                self.revive(machine)

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Service counters plus the live metrics snapshot (the
        ``stats`` op payload)."""
        d = self.dispatcher
        stats: dict[str, Any] = {
            "now": self.now(),
            "m": self.m,
            "alive": sorted(d.alive),
            "requests": d.n_dispatched + d.n_shed + len(d.parked),
            "dispatched": d.n_dispatched,
            "shed": d.n_shed,
            "requeued": d.n_requeued,
            "parked": len(d.parked),
            "completed": self.n_completed,
            "outstanding": self._outstanding,
            "metrics": self.metrics.registry.snapshot(),
        }
        if self.journal is not None:
            stats["journal"] = {
                "seq": self.journal.seq,
                "snapshot_seq": self.journal.snapshot_seq,
                "dedupe_keys": len(self._dedupe),
            }
        if self.recovery is not None:
            stats["recovered"] = {
                "replayed": self.recovery.n_replayed,
                "dropped_tail": self.recovery.n_dropped_tail,
                "completed_precrash": self.recovery.n_completed,
            }
        return stats

    async def snapshot_loop(self, path: str | Path, every: float) -> None:
        """Periodically dump the canonical metrics snapshot to ``path``
        (run as a background task; the final state is written by
        :func:`serve` on shutdown)."""
        while True:
            await asyncio.sleep(every)
            write_metrics(self.metrics.registry, path, meta={"source": "repro-serve"})

    # -- frontend ------------------------------------------------------------
    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stop_event: asyncio.Event | None = None,
    ) -> None:
        """Serve one protocol connection until EOF (or ``shutdown``,
        which also sets ``stop_event`` for the server loop).  A peer
        that vanishes mid-response (reset, broken pipe — routine under
        chaos) just ends the connection; state already committed for
        the request stays committed, and the client's retry will be
        answered from the dedupe cache."""
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as exc:
                    self.metrics.on_error()
                    await write_frame(writer, {"ok": False, "error": str(exc)})
                    break  # framing is lost; drop the connection
                if message is None:
                    break
                response = await self._handle_op(message)
                await write_frame(writer, response)
                if message.get("op") == "shutdown":
                    if stop_event is not None:
                        stop_event.set()
                    break
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    def _submit_response(decision: DispatchDecision) -> dict[str, Any]:
        return {
            "ok": True,
            "op": "submit",
            "tid": decision.task.tid,
            "status": decision.status,
            "machine": decision.machine,
            "start": decision.start,
            "est_flow": decision.est_flow,
            "reason": decision.reason,
        }

    async def _handle_op(self, message: dict[str, Any]) -> dict[str, Any]:
        complaint = check_version(message)
        if complaint is not None:
            self.metrics.on_error()
            return version_error(message, complaint)
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "op": "pong", "now": self.now()}
        if op == "submit":
            key = message.get("dedupe")
            if key is not None and not isinstance(key, str):
                self.metrics.on_error()
                return {
                    "ok": False,
                    "op": "submit",
                    "tid": message.get("tid"),
                    "error": f"dedupe key must be a string, got {type(key).__name__}",
                }
            if key is not None and key in self._dedupe:
                self.metrics.registry.counter("dedupe_hits_total").inc()
                return self._submit_response(self._dedupe[key])
            try:
                task = task_from_wire(message)
            except ProtocolError as exc:
                self.metrics.on_error()
                return {"ok": False, "op": "submit", "tid": message.get("tid"), "error": str(exc)}
            # Write-ahead: the journal record lands (and syncs) before
            # the decision is taken or acknowledged, so a crash after
            # this line replays the submit and a retried duplicate hits
            # the rebuilt dedupe cache instead of re-dispatching.
            self._journal_append(
                "submit", {"task": task_to_wire(task), "dedupe": key}, commit=True
            )
            try:
                decision = self.submit(task)
            except ValueError as exc:
                self.metrics.on_error()
                return {"ok": False, "op": "submit", "tid": message.get("tid"), "error": str(exc)}
            if key is not None:
                self._dedupe[key] = decision
            self._maybe_snapshot()
            return self._submit_response(decision)
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.stats()}
        if op == "drain":
            completed = await self.drain()
            return {"ok": True, "op": "drain", "completed": completed}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        self.metrics.on_error()
        return {"ok": False, "error": f"unknown op {op!r}"}


async def serve(
    config: ServeConfig,
    socket_path: str | Path | None = None,
    host: str | None = None,
    port: int | None = None,
    faults: FaultSchedule | None = None,
) -> dict[str, Any]:
    """Run a dispatch service until a client sends ``shutdown`` (or the
    task is cancelled); returns the final stats.

    Exactly one endpoint must be given: a unix ``socket_path`` or a TCP
    ``host``/``port`` pair.
    """
    if (socket_path is None) == (host is None or port is None):
        raise ValueError("serve needs exactly one of socket_path or host+port")
    service = build_service(config)
    await service.start()
    stop_event = asyncio.Event()

    async def on_connection(reader, writer):
        await service.handle_connection(reader, writer, stop_event)

    try:
        server = await start_endpoint(
            on_connection, socket_path=socket_path, host=host, port=port
        )
    except OSError:
        await service.stop()
        raise
    background: list[asyncio.Task] = []
    loop = asyncio.get_running_loop()
    if faults is not None and faults:
        background.append(loop.create_task(service.apply_faults(faults)))
    if config.snapshot_path is not None:
        background.append(
            loop.create_task(service.snapshot_loop(config.snapshot_path, config.snapshot_every))
        )
    try:
        async with server:
            await stop_event.wait()
    finally:
        for task in background:
            task.cancel()
        await asyncio.gather(*background, return_exceptions=True)
        await service.stop()
        if config.snapshot_path is not None:
            write_metrics(
                service.metrics.registry, config.snapshot_path, meta={"source": "repro-serve"}
            )
    return service.stats()
