"""Fleet rollups: aggregate per-member metric snapshots into one view.

The sharded serve tier runs one :class:`~repro.obs.recorders.MetricsRegistry`
per dispatcher shard (plus one for the router).  Operators want both
views at once: the per-shard breakdown *and* the fleet total, in one
canonical byte-stable snapshot.  :func:`rollup_snapshots` produces
exactly that from the members' ``registry.snapshot()`` dicts:

* **counters** are summed — every decision happens on exactly one
  shard, so fleet totals are exact;
* **gauges** are summed — the serve-tier gauges (queue depths, parked
  counts, alive machines) are all additive over disjoint shards; a
  last-write-wins gauge that is *not* additive should not be rolled up;
* **histograms** with identical edges are merged bucket-wise (counts,
  totals, running min/max); differing edges are an error, not a silent
  mix;
* **series** are concatenated in member order (member names sorted),
  which keeps the rollup deterministic.

With ``members=True`` the rollup additionally carries every member's
metrics under a ``<member>/`` name prefix, so one snapshot file holds
the whole hierarchy.  Rollups are pure functions of the member
snapshots: equal inputs give byte-identical canonical JSON, the same
discipline as :mod:`repro.obs.snapshot`.
"""

from __future__ import annotations

from typing import Any, Mapping

from .recorders import MetricsRegistry

__all__ = ["rollup_registries", "rollup_snapshots"]

_SECTIONS = ("counters", "gauges", "series", "histograms")


def _merge_histogram(where: str, into: dict[str, Any], hist: Mapping[str, Any]) -> None:
    if list(into["edges"]) != list(hist["edges"]):
        raise ValueError(
            f"histogram {where!r}: members disagree on bucket edges "
            f"({into['edges']} vs {hist['edges']}) — cannot roll up"
        )
    into["counts"] = [a + b for a, b in zip(into["counts"], hist["counts"])]
    if hist["count"]:
        if into["count"]:
            into["min"] = min(into["min"], hist["min"])
            into["max"] = max(into["max"], hist["max"])
        else:
            into["min"], into["max"] = hist["min"], hist["max"]
    into["count"] += hist["count"]
    into["sum"] += hist["sum"]


def rollup_snapshots(
    snapshots: Mapping[str, Mapping[str, Any]], members: bool = True
) -> dict[str, Any]:
    """Aggregate member ``registry.snapshot()`` dicts into one fleet
    snapshot dict (same ``counters/gauges/series/histograms`` shape).

    ``snapshots`` maps a member name (e.g. ``"shard0"``) to its
    snapshot; members are processed in sorted name order.  With
    ``members=True`` the result also contains every member metric under
    the prefixed name ``"<member>/<metric>"``.
    """
    fleet: dict[str, dict[str, Any]] = {section: {} for section in _SECTIONS}
    for member in sorted(snapshots):
        snap = snapshots[member]
        unknown = set(snap) - set(_SECTIONS)
        if unknown:
            raise ValueError(f"member {member!r}: unknown metric sections {sorted(unknown)}")
        for name, value in snap.get("counters", {}).items():
            fleet["counters"][name] = fleet["counters"].get(name, 0) + value
            if members:
                fleet["counters"][f"{member}/{name}"] = value
        for name, value in snap.get("gauges", {}).items():
            fleet["gauges"][name] = fleet["gauges"].get(name, 0.0) + value
            if members:
                fleet["gauges"][f"{member}/{name}"] = value
        for name, series in snap.get("series", {}).items():
            agg = fleet["series"].setdefault(name, {"times": [], "values": []})
            agg["times"].extend(series["times"])
            agg["values"].extend(series["values"])
            if members:
                fleet["series"][f"{member}/{name}"] = {
                    "times": list(series["times"]),
                    "values": list(series["values"]),
                }
        for name, hist in snap.get("histograms", {}).items():
            agg = fleet["histograms"].get(name)
            if agg is None:
                fleet["histograms"][name] = {
                    "edges": list(hist["edges"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                }
            else:
                _merge_histogram(name, agg, hist)
            if members:
                fleet["histograms"][f"{member}/{name}"] = {
                    "edges": list(hist["edges"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                }
    return fleet


def rollup_registries(
    registries: Mapping[str, MetricsRegistry], members: bool = True
) -> MetricsRegistry:
    """Roll member registries up into a fresh :class:`MetricsRegistry`
    (snapshot-compatible with :func:`repro.obs.snapshot.write_metrics`)."""
    fleet_snap = rollup_snapshots(
        {name: reg.snapshot() for name, reg in registries.items()}, members=members
    )
    out = MetricsRegistry()
    for name, value in fleet_snap["counters"].items():
        out.counter(name).inc(value)
    for name, value in fleet_snap["gauges"].items():
        out.gauge(name).set(value)
    for name, series in fleet_snap["series"].items():
        ts = out.series(name)
        for t, v in zip(series["times"], series["values"]):
            ts.observe(t, v)
    for name, hist in fleet_snap["histograms"].items():
        h = out.histogram(name, tuple(hist["edges"]))
        h.counts = list(hist["counts"])
        h.count = hist["count"]
        h.total = hist["sum"]
        h.vmin = hist["min"]
        h.vmax = hist["max"]
    return out
