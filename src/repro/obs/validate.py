"""Stand-alone snapshot validator: ``python -m repro.obs.validate f.json``.

Exit code 0 when every file is a schema-valid metrics snapshot, 1
otherwise — the check behind ``make obs-smoke``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .snapshot import MetricsSchemaError, load_metrics

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="validate repro-metrics snapshot files",
    )
    parser.add_argument("paths", nargs="+", help="metrics JSON files to check")
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            data = load_metrics(path)
        except (OSError, ValueError, MetricsSchemaError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            status = 1
            continue
        metrics = data["metrics"]
        counts = ", ".join(
            f"{len(metrics.get(section, {}))} {section}"
            for section in ("counters", "gauges", "series", "histograms")
        )
        print(f"{path}: ok ({counts})")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
