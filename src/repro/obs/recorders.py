"""Metric primitives: counters, gauges, time series and histograms.

The recorders are deliberately dependency-free (no numpy) and purely
additive: feeding the same observations in the same order always
produces the same state, so snapshots serialise to byte-identical JSON
whatever process or worker count produced them (the same discipline as
:func:`repro.campaigns.spec.canonical_json`).

All recorders live in a :class:`MetricsRegistry`, which hands out one
recorder per name and renders the whole collection as a nested
``snapshot()`` dict — the payload of :mod:`repro.obs.snapshot`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "linear_edges",
]


@dataclass(slots=True)
class Counter:
    """A monotonically increasing integer count."""

    name: str
    value: int = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name}: negative increment {delta}")
        self.value += delta

    def snapshot(self) -> int:
        return self.value


@dataclass(slots=True)
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


@dataclass(slots=True)
class TimeSeries:
    """An append-only ``(time, value)`` series.

    ``observe`` does not require monotone times, but simulator-fed
    series are naturally time-ordered, which keeps snapshots stable.
    """

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def observe(self, time: float, value: float) -> None:
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> float | None:
        return self.values[-1] if self.values else None

    def snapshot(self) -> dict[str, list[float]]:
        return {"times": list(self.times), "values": list(self.values)}


def linear_edges(lo: float, hi: float, n_buckets: int = 10) -> tuple[float, ...]:
    """``n_buckets + 1`` evenly spaced bucket edges over ``[lo, hi]``
    (degenerate ranges collapse to a single ``[lo, lo]`` bucket)."""
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    lo, hi = float(lo), float(hi)
    if hi <= lo:
        return (lo,)
    step = (hi - lo) / n_buckets
    return tuple(lo + i * step for i in range(n_buckets)) + (hi,)


@dataclass(slots=True)
class Histogram:
    """A fixed-bucket histogram with configurable edges.

    ``edges`` are the non-decreasing bucket boundaries; ``counts`` has
    ``len(edges) + 1`` entries: ``counts[0]`` is the underflow bucket
    (``v < edges[0]``), ``counts[i]`` counts ``edges[i-1] <= v <
    edges[i]`` and ``counts[-1]`` is the overflow bucket
    (``v >= edges[-1]``).  Running count/sum/min/max ride along so the
    snapshot is self-describing.
    """

    name: str
    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    vmin: float = 0.0
    vmax: float = 0.0

    def __post_init__(self) -> None:
        self.edges = tuple(float(e) for e in self.edges)
        if not self.edges:
            raise ValueError(f"histogram {self.name}: needs at least one edge")
        if any(b < a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError(f"histogram {self.name}: edges must be non-decreasing")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float, n: int = 1) -> None:
        value = float(value)
        self.counts[bisect_right(self.edges, value)] += n
        if self.count == 0:
            self.vmin = self.vmax = value
        else:
            self.vmin = min(self.vmin, value)
            self.vmax = max(self.vmax, value)
        self.count += n
        self.total += value * n

    def observe_all(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }


#: recorder kind -> snapshot section name.
_SECTIONS = {
    Counter: "counters",
    Gauge: "gauges",
    TimeSeries: "series",
    Histogram: "histograms",
}


class MetricsRegistry:
    """A named collection of recorders.

    Accessors are idempotent: asking twice for the same name returns
    the same recorder, and asking for an existing name with a different
    recorder type raises.
    """

    def __init__(self) -> None:
        self._recorders: dict[str, Any] = {}

    def _get(self, cls, name: str, *args, **kwargs):
        existing = self._recorders.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        recorder = cls(name, *args, **kwargs)
        self._recorders[name] = recorder
        return recorder

    def counter(self, name: str) -> Counter:
        return self._get(Counter, name)

    def gauge(self, name: str) -> Gauge:
        return self._get(Gauge, name)

    def series(self, name: str) -> TimeSeries:
        return self._get(TimeSeries, name)

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        hist = self._get(Histogram, name, tuple(edges))
        if hist.edges != tuple(float(e) for e in edges):
            raise ValueError(f"histogram {name!r} already registered with different edges")
        return hist

    def __len__(self) -> int:
        return len(self._recorders)

    def __contains__(self, name: str) -> bool:
        return name in self._recorders

    def __getitem__(self, name: str) -> Any:
        return self._recorders[name]

    def names(self) -> list[str]:
        return sorted(self._recorders)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All recorders by section, names sorted — the ``metrics``
        payload of a :func:`repro.obs.snapshot.metrics_snapshot`."""
        out: dict[str, dict[str, Any]] = {s: {} for s in _SECTIONS.values()}
        for name in self.names():
            recorder = self._recorders[name]
            out[_SECTIONS[type(recorder)]][name] = recorder.snapshot()
        return out
