"""Metrics and observability substrate.

A lightweight, dependency-free metrics layer for the simulator and the
campaign runner:

* :mod:`~repro.obs.recorders` — :class:`Counter`, :class:`Gauge`,
  :class:`TimeSeries`, :class:`Histogram` (configurable bucket edges)
  collected in a :class:`MetricsRegistry`;
* :mod:`~repro.obs.sim` — :class:`SimRecorder`, the ``obs=`` hook of
  :class:`repro.simulation.engine.Simulator` (flow histogram,
  inter-start gaps, queue-length / waiting-work series);
* :mod:`~repro.obs.spans` — :class:`SpanSet` wall-clock timing spans,
  folded into the campaign :class:`~repro.campaigns.manifest.RunManifest`;
* :mod:`~repro.obs.campaign` — :func:`campaign_metrics`, deterministic
  per-field aggregation of unit results (the ``--metrics`` payload);
* :mod:`~repro.obs.snapshot` — versioned, canonical-JSON snapshots
  with a hand-rolled schema validator
  (``python -m repro.obs.validate``);
* :mod:`~repro.obs.rollup` — fleet aggregation of per-member
  registries/snapshots (the sharded serve tier's per-shard + rollup
  metrics view).

``repro.obs`` is a leaf package: it imports nothing from the engine or
the campaign layer at run time, so both can instrument themselves with
it without cycles.
"""

from .campaign import campaign_metrics, numeric_leaves
from .recorders import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries, linear_edges
from .rollup import rollup_registries, rollup_snapshots
from .sim import DEFAULT_FLOW_EDGES, DEFAULT_GAP_EDGES, SimObserver, SimRecorder
from .snapshot import (
    METRICS_FORMAT,
    METRICS_VERSION,
    MetricsSchemaError,
    load_metrics,
    metrics_snapshot,
    metrics_to_json,
    validate_metrics,
    write_metrics,
)
from .spans import SpanSet

__all__ = [
    "Counter",
    "DEFAULT_FLOW_EDGES",
    "DEFAULT_GAP_EDGES",
    "Gauge",
    "Histogram",
    "METRICS_FORMAT",
    "METRICS_VERSION",
    "MetricsRegistry",
    "MetricsSchemaError",
    "SimObserver",
    "SimRecorder",
    "SpanSet",
    "TimeSeries",
    "campaign_metrics",
    "linear_edges",
    "load_metrics",
    "metrics_snapshot",
    "metrics_to_json",
    "numeric_leaves",
    "rollup_registries",
    "rollup_snapshots",
    "validate_metrics",
    "write_metrics",
]
