"""Deterministic campaign-level metrics.

:func:`campaign_metrics` folds the per-unit results of a finished
campaign — in unit order — into a :class:`MetricsRegistry`: one
``unit/<key>`` series (value per occurrence, indexed by occurrence
order) and one ``dist/<key>`` histogram per numeric result field,
plus unit counters.  Everything derives purely from the unit results,
which are themselves deterministic, so the snapshot is byte-identical
whatever ``-j`` produced it — the acceptance bar of the ``--metrics``
CLI flag.

Wall-clock data (span timings, cache hits) is deliberately excluded:
it is non-deterministic and belongs in the run manifest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

from .recorders import MetricsRegistry, linear_edges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..campaigns.spec import CampaignSpec

__all__ = ["campaign_metrics", "numeric_leaves"]


def numeric_leaves(obj: Any, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf of a
    JSON-shaped object, keys in sorted order, list elements in list
    order under their parent key (bools are not numbers here)."""
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return
    if isinstance(obj, (int, float)):
        yield prefix or "value", float(obj)
        return
    if isinstance(obj, Mapping):
        for key in sorted(obj, key=str):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from numeric_leaves(obj[key], path)
        return
    if isinstance(obj, Sequence):
        for item in obj:
            yield from numeric_leaves(item, prefix)


def campaign_metrics(
    spec: "CampaignSpec",
    unit_results: Sequence[Mapping[str, Any]],
    n_buckets: int = 10,
) -> MetricsRegistry:
    """Aggregate ``unit_results`` (in unit order, as returned by
    ``CampaignResult.results()``) into a fresh registry.

    Histogram edges are ``n_buckets`` linear buckets spanning each
    field's observed range — a function of the data alone, hence
    deterministic.
    """
    registry = MetricsRegistry()
    registry.counter("units").inc(len(spec.units))
    registry.counter("units_distinct").inc(len(set(spec.unit_hashes())))

    collected: dict[str, list[float]] = {}
    for result in unit_results:
        for path, value in numeric_leaves(result):
            collected.setdefault(path, []).append(value)

    for path in sorted(collected):
        values = collected[path]
        series = registry.series(f"unit/{path}")
        for i, v in enumerate(values):
            series.observe(float(i), v)
        hist = registry.histogram(
            f"dist/{path}", linear_edges(min(values), max(values), n_buckets)
        )
        hist.observe_all(values)
    return registry
