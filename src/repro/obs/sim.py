"""Simulator instrumentation: the ``obs=`` recorder of the engine.

:class:`SimRecorder` implements the :class:`SimObserver` hook protocol
of :class:`repro.simulation.engine.Simulator` and feeds a
:class:`~repro.obs.recorders.MetricsRegistry` with the time-domain
quantities the Section 7 experiments (and the related work — tail flow
under SRPT, endpoint-capacity flow traces) observe:

* counters ``tasks_released`` / ``tasks_started`` / ``tasks_completed``;
* a flow-time histogram with configurable bucket edges, observed at
  every completion;
* an inter-start-gap histogram (time between consecutive starts on the
  same machine — a dispatch-smoothness signal);
* sampled time series: queue length and waiting work :math:`w_t(j)`
  per machine plus system-wide totals (install with :meth:`install`).

The recorder is duck-typed — the engine never imports this module at
run time — so ``repro.obs`` stays a leaf package.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

from .recorders import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import Task
    from ..simulation.engine import Simulator

__all__ = ["DEFAULT_FLOW_EDGES", "DEFAULT_GAP_EDGES", "SimObserver", "SimRecorder"]

#: Default flow-time bucket edges: powers of two spanning unit-task
#: flows up to deep truncation backlogs.
DEFAULT_FLOW_EDGES: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Default inter-start-gap bucket edges (same dynamic range, finer head).
DEFAULT_GAP_EDGES: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


class SimObserver(Protocol):
    """Hook protocol the engine drives at its three lifecycle points.

    The fault lifecycle hooks (below the first three) are *optional*:
    the engine probes for them with ``getattr``, so observers that
    implement only the release/start/complete trio keep working on
    faulted runs.
    """

    def on_release(self, sim: "Simulator", task: "Task") -> None: ...

    def on_start(self, sim: "Simulator", task: "Task", machine: int) -> None: ...

    def on_complete(self, sim: "Simulator", task: "Task", machine: int) -> None: ...

    def on_machine_down(self, sim: "Simulator", machine: int) -> None: ...

    def on_machine_up(self, sim: "Simulator", machine: int) -> None: ...

    def on_requeue(self, sim: "Simulator", task: "Task", machine: int) -> None: ...

    def on_park(self, sim: "Simulator", task: "Task") -> None: ...

    def on_unpark(self, sim: "Simulator", task: "Task", machine: int) -> None: ...

    def on_resume(self, sim: "Simulator", task: "Task", machine: int) -> None: ...

    def on_preempt(self, sim: "Simulator", task: "Task", machine: int) -> None: ...

    def on_preempt_resume(self, sim: "Simulator", task: "Task", machine: int) -> None: ...


class SimRecorder:
    """Metrics-backed :class:`SimObserver`.

    Parameters
    ----------
    registry:
        Registry to record into (a fresh one by default; share one to
        merge several runs into a single snapshot).
    flow_edges / gap_edges:
        Bucket edges of the flow-time and inter-start-gap histograms.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        flow_edges: Sequence[float] = DEFAULT_FLOW_EDGES,
        gap_edges: Sequence[float] = DEFAULT_GAP_EDGES,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.released = self.registry.counter("tasks_released")
        self.started = self.registry.counter("tasks_started")
        self.completed = self.registry.counter("tasks_completed")
        self.flow_hist = self.registry.histogram("flow", flow_edges)
        self.gap_hist = self.registry.histogram("inter_start_gap", gap_edges)
        self._last_start: dict[int, float] = {}

    # -- engine hooks -------------------------------------------------------
    def on_release(self, sim: "Simulator", task: "Task") -> None:
        self.released.inc()

    def on_start(self, sim: "Simulator", task: "Task", machine: int) -> None:
        self.started.inc()
        prev = self._last_start.get(machine)
        if prev is not None:
            self.gap_hist.observe(sim.now - prev)
        self._last_start[machine] = sim.now

    def on_complete(self, sim: "Simulator", task: "Task", machine: int) -> None:
        self.completed.inc()
        self.flow_hist.observe(sim.now - task.release)

    # -- fault hooks --------------------------------------------------------
    # Recorders are created lazily at the first fault event, so the
    # snapshot of a fault-free run (or an empty FaultSchedule) stays
    # byte-identical to one taken before fault injection existed.
    def on_machine_down(self, sim: "Simulator", machine: int) -> None:
        self.registry.counter("machine_failures").inc()
        self.registry.series(f"machine_down[{machine}]").observe(sim.now, 1.0)

    def on_machine_up(self, sim: "Simulator", machine: int) -> None:
        self.registry.counter("machine_recoveries").inc()
        self.registry.series(f"machine_down[{machine}]").observe(sim.now, 0.0)
        self.registry.gauge("downtime_total").set(
            sum(m.downtime for m in sim.machines.values())
        )

    def on_requeue(self, sim: "Simulator", task: "Task", machine: int) -> None:
        self.registry.counter("tasks_requeued").inc()

    def on_park(self, sim: "Simulator", task: "Task") -> None:
        self.registry.counter("tasks_parked").inc()
        self.registry.gauge("parked_now").set(len(sim.parked))

    def on_unpark(self, sim: "Simulator", task: "Task", machine: int) -> None:
        self.registry.counter("tasks_unparked").inc()
        # Age at unpark: how long the task waited (from release) for a
        # machine of its set to come back.
        self.registry.histogram("park_wait", DEFAULT_GAP_EDGES).observe(
            sim.now - task.release
        )

    def on_resume(self, sim: "Simulator", task: "Task", machine: int) -> None:
        self.registry.counter("tasks_resumed").inc()

    # -- preemption hooks ---------------------------------------------------
    # Lazily created like the fault recorders: snapshots of runs under
    # non-preemptive policies stay byte-identical to the pre-zoo format.
    def on_preempt(self, sim: "Simulator", task: "Task", machine: int) -> None:
        self.registry.counter("tasks_preempted").inc()

    def on_preempt_resume(self, sim: "Simulator", task: "Task", machine: int) -> None:
        self.registry.counter("preempt_resumes").inc()

    # -- sampled series -----------------------------------------------------
    def install(self, sim: "Simulator", horizon: float, period: float = 1.0) -> None:
        """Schedule periodic OBSERVE sampling on ``sim`` up to
        ``horizon``: per-machine queue length and waiting work, plus
        the system totals.  Samples land *after* same-instant releases
        and completions (the pinned event order), so each sample is the
        settled state of its instant."""
        if period <= 0:
            raise ValueError("period must be positive")
        t = period
        while t <= horizon:
            sim.at(t, self.sample)
            t += period

    def sample(self, sim: "Simulator") -> None:
        """Record one sample of the queue/waiting-work series at
        ``sim.now`` (usable directly as a ``sim.at`` callback)."""
        now = sim.now
        total_queued = 0
        total_work = 0.0
        for j in range(1, sim.m + 1):
            mach = sim.machines[j]
            queued = len(mach.queue)
            work = mach.waiting_work(now)
            self.registry.series(f"queue_len[{j}]").observe(now, queued)
            self.registry.series(f"waiting_work[{j}]").observe(now, work)
            total_queued += queued
            total_work += work
        self.registry.series("queue_len_total").observe(now, total_queued)
        self.registry.series("waiting_work_total").observe(now, total_work)
