"""Wall-clock timing spans for the campaign runner.

A :class:`SpanSet` accumulates named wall-clock durations
(``perf_counter`` based) and occurrence counts.  Spans are *not* part
of the deterministic metrics snapshot — wall time varies run to run —
so they are folded into the :class:`repro.campaigns.manifest.RunManifest`
(provenance) instead of the ``--metrics`` JSON (byte-stable data).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SpanSet"]


class SpanSet:
    """Accumulates named wall-clock durations.

    Use :meth:`span` as a context manager around a region, or
    :meth:`add` to fold in an externally measured duration (e.g. a
    worker-reported unit time).
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def add(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"span {name!r}: negative duration {seconds}")
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)
        self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Total accumulated duration of ``name`` (0.0 if never seen)."""
        return self._seconds.get(name, 0.0)

    def count(self, name: str) -> int:
        """How many times ``name`` was recorded."""
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._seconds

    def __len__(self) -> int:
        return len(self._seconds)

    def as_dict(self, ndigits: int = 6) -> dict[str, float]:
        """``{name: total_seconds}`` with names sorted and durations
        rounded (manifest-friendly)."""
        return {k: round(v, ndigits) for k, v in sorted(self._seconds.items())}
