"""Metrics snapshots: canonical JSON serialisation and schema checks.

A snapshot is a versioned JSON document::

    {
      "format": "repro-metrics",
      "version": 1,
      "meta": {...},                      # free-form provenance
      "metrics": {
        "counters":   {name: int},
        "gauges":     {name: float},
        "series":     {name: {"times": [...], "values": [...]}},
        "histograms": {name: {"edges": [...], "counts": [...],
                              "count": n, "sum": s, "min": lo, "max": hi}}
      }
    }

Serialisation follows the same canonicality discipline as
:func:`repro.campaigns.spec.canonical_json` (sorted keys, floats via
``repr``): snapshots built from the same deterministic data are
byte-identical whatever worker count produced them, so they can be
diffed in CI.  The encoder is local so ``repro.obs`` stays a leaf
package (the campaign runner imports ``repro.obs.spans``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .recorders import MetricsRegistry

__all__ = [
    "METRICS_FORMAT",
    "METRICS_VERSION",
    "MetricsSchemaError",
    "load_metrics",
    "metrics_snapshot",
    "metrics_to_json",
    "validate_metrics",
    "write_metrics",
]

METRICS_FORMAT = "repro-metrics"
METRICS_VERSION = 1

_SECTIONS = ("counters", "gauges", "series", "histograms")


class MetricsSchemaError(ValueError):
    """Raised when a document is not a valid metrics snapshot."""


def _jsonable(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, Mapping):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy arrays / scalars, without importing numpy
        return _jsonable(obj.tolist())
    if hasattr(obj, "item"):
        return _jsonable(obj.item())
    raise TypeError(f"cannot serialise {type(obj).__name__} in a metrics snapshot: {obj!r}")


def metrics_snapshot(
    registry: MetricsRegistry, meta: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Freeze ``registry`` into a versioned snapshot document."""
    return {
        "format": METRICS_FORMAT,
        "version": METRICS_VERSION,
        "meta": _jsonable(dict(meta or {})),
        "metrics": _jsonable(registry.snapshot()),
    }


def metrics_to_json(snapshot: Mapping[str, Any]) -> str:
    """Canonical rendering: sorted keys, two-space indent, trailing
    newline — equal snapshots encode to equal bytes."""
    return json.dumps(_jsonable(snapshot), indent=2, sort_keys=True) + "\n"


def write_metrics(
    registry: MetricsRegistry, path: str | Path, meta: Mapping[str, Any] | None = None
) -> Path:
    """Snapshot ``registry`` and write it to ``path``; returns the path."""
    snapshot = metrics_snapshot(registry, meta=meta)
    validate_metrics(snapshot)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_to_json(snapshot))
    return path


def load_metrics(path: str | Path) -> dict[str, Any]:
    """Read and validate a snapshot file."""
    data = json.loads(Path(path).read_text())
    validate_metrics(data)
    return data


def _fail(where: str, problem: str) -> None:
    raise MetricsSchemaError(f"{where}: {problem}")


def _check_numbers(where: str, values: Any) -> None:
    if not isinstance(values, list):
        _fail(where, "expected a list of numbers")
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            _fail(where, f"non-numeric entry {v!r}")


def validate_metrics(data: Any) -> None:
    """Validate a snapshot document; raises :class:`MetricsSchemaError`.

    Checks structure and internal consistency (series lengths agree,
    histogram counts match their edges and total, min <= max).
    """
    if not isinstance(data, Mapping):
        _fail("document", "expected a JSON object")
    if data.get("format") != METRICS_FORMAT:
        _fail("format", f"expected {METRICS_FORMAT!r}, got {data.get('format')!r}")
    if data.get("version") != METRICS_VERSION:
        _fail("version", f"unsupported version {data.get('version')!r}")
    if not isinstance(data.get("meta", {}), Mapping):
        _fail("meta", "expected a JSON object")
    metrics = data.get("metrics")
    if not isinstance(metrics, Mapping):
        _fail("metrics", "expected a JSON object")
    unknown = set(metrics) - set(_SECTIONS)
    if unknown:
        _fail("metrics", f"unknown sections {sorted(unknown)}")
    for section in _SECTIONS:
        if not isinstance(metrics.get(section, {}), Mapping):
            _fail(f"metrics.{section}", "expected a JSON object")

    for name, value in metrics.get("counters", {}).items():
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            _fail(f"counters.{name}", f"expected a non-negative integer, got {value!r}")
    for name, value in metrics.get("gauges", {}).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(f"gauges.{name}", f"expected a number, got {value!r}")
    for name, series in metrics.get("series", {}).items():
        where = f"series.{name}"
        if not isinstance(series, Mapping) or set(series) != {"times", "values"}:
            _fail(where, "expected {'times': [...], 'values': [...]}")
        _check_numbers(f"{where}.times", series["times"])
        _check_numbers(f"{where}.values", series["values"])
        if len(series["times"]) != len(series["values"]):
            _fail(where, "times and values lengths differ")
    for name, hist in metrics.get("histograms", {}).items():
        where = f"histograms.{name}"
        expected = {"edges", "counts", "count", "sum", "min", "max"}
        if not isinstance(hist, Mapping) or set(hist) != expected:
            _fail(where, f"expected keys {sorted(expected)}")
        _check_numbers(f"{where}.edges", hist["edges"])
        _check_numbers(f"{where}.counts", hist["counts"])
        edges, counts = hist["edges"], hist["counts"]
        if not edges:
            _fail(where, "needs at least one edge")
        if any(b < a for a, b in zip(edges, edges[1:])):
            _fail(where, "edges must be non-decreasing")
        if len(counts) != len(edges) + 1:
            _fail(where, f"expected {len(edges) + 1} buckets, got {len(counts)}")
        if any(isinstance(c, bool) or not isinstance(c, int) or c < 0 for c in counts):
            _fail(where, "bucket counts must be non-negative integers")
        if sum(counts) != hist["count"]:
            _fail(where, f"bucket counts sum to {sum(counts)}, count says {hist['count']}")
        if hist["count"] > 0 and hist["min"] > hist["max"]:
            _fail(where, "min exceeds max")
