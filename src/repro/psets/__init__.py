"""Processing-set structures, classification and replication schemes."""

from .generators import (
    random_disjoint_family,
    random_fixed_k_intervals,
    random_inclusive_family,
    random_interval_family,
    random_nested_family,
)
from .replication import (
    DisjointIntervals,
    NoReplication,
    OverlappingIntervals,
    ReplicationStrategy,
    get_strategy,
    replicate_instance,
)
from .sets import (
    degraded_family,
    interval,
    interval_bounds,
    is_circular_interval,
    is_contiguous,
    ring_interval,
)
from .structures import (
    REDUCTION_GRAPH,
    STRUCTURES,
    classify_family,
    is_disjoint_family,
    is_inclusive_family,
    is_interval_family,
    is_nested_family,
    nested_interval_order,
    specializes,
)

__all__ = [
    "DisjointIntervals",
    "NoReplication",
    "OverlappingIntervals",
    "REDUCTION_GRAPH",
    "ReplicationStrategy",
    "STRUCTURES",
    "classify_family",
    "degraded_family",
    "get_strategy",
    "interval",
    "interval_bounds",
    "is_circular_interval",
    "is_contiguous",
    "is_disjoint_family",
    "is_inclusive_family",
    "is_interval_family",
    "is_nested_family",
    "nested_interval_order",
    "random_disjoint_family",
    "random_fixed_k_intervals",
    "random_inclusive_family",
    "random_interval_family",
    "random_nested_family",
    "replicate_instance",
    "ring_interval",
    "specializes",
]
