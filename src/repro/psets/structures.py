"""Structure predicates and classification for processing-set families.

Section 3 of the paper defines four special structures over the
*family* of processing sets of an instance:

* ``interval`` — every set is an interval of consecutive machines (or a
  wrapped/ring interval);
* ``nested`` — any two sets are disjoint or one contains the other
  (a laminar family);
* ``inclusive`` — any two sets are comparable by inclusion (a chain);
* ``disjoint`` — any two sets are equal or disjoint (a partition-like
  family).

Their reduction graph (Figure 1)::

    inclusive ─→ nested ─→ interval ─→ (general) M_i
    disjoint  ─→ nested

``inclusive`` and ``disjoint`` are special cases of ``nested``; nested
families can always be renumbered into intervals, so ``nested`` is a
special case of ``interval`` *up to machine reordering* — the predicate
:func:`is_interval_family` therefore optionally searches for a
permutation (exactly the paper's "it is always possible to reorder the
machines").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .sets import is_circular_interval, is_contiguous

__all__ = [
    "STRUCTURES",
    "REDUCTION_GRAPH",
    "is_disjoint_family",
    "is_inclusive_family",
    "is_nested_family",
    "is_interval_family",
    "classify_family",
    "specializes",
    "nested_interval_order",
]

#: Names of the recognised structures, from most to least specific.
STRUCTURES = ("inclusive", "disjoint", "nested", "interval", "general")

#: Edges A -> B meaning "A is a special case of B" (Figure 1).
REDUCTION_GRAPH: dict[str, tuple[str, ...]] = {
    "inclusive": ("nested",),
    "disjoint": ("nested",),
    "nested": ("interval",),
    "interval": ("general",),
    "general": (),
}


def _as_sets(family: Iterable[Iterable[int]]) -> list[frozenset[int]]:
    sets = [frozenset(s) for s in family]
    for s in sets:
        if not s:
            raise ValueError("processing sets may not be empty")
    return sets


def is_disjoint_family(family: Iterable[Iterable[int]]) -> bool:
    """All pairs of sets are equal or disjoint (``M_i(disjoint)``)."""
    sets = set(_as_sets(family))
    seen: dict[int, frozenset[int]] = {}
    for s in sets:
        for j in s:
            if j in seen and seen[j] != s:
                return False
            seen[j] = s
    return True


def is_inclusive_family(family: Iterable[Iterable[int]]) -> bool:
    """All pairs of sets are comparable by inclusion
    (``M_i(inclusive)`` — a chain)."""
    sets = sorted(set(_as_sets(family)), key=len)
    for a, b in zip(sets, sets[1:]):
        if not a <= b:
            return False
    # With distinct sets sorted by size, pairwise chain checks suffice;
    # equal-size distinct sets are incomparable and already rejected.
    return True


def is_nested_family(family: Iterable[Iterable[int]]) -> bool:
    """All pairs are nested or disjoint (``M_i(nested)`` — laminar)."""
    sets = sorted(set(_as_sets(family)), key=lambda s: (-len(s), sorted(s)))
    for i, a in enumerate(sets):
        for b in sets[i + 1 :]:
            inter = a & b
            if inter and not (b <= a):
                return False
    return True


def is_interval_family(
    family: Iterable[Iterable[int]],
    m: int,
    *,
    allow_ring: bool = True,
    allow_reorder: bool = False,
) -> bool:
    """Every set is an interval of machines (``M_i(interval)``).

    With ``allow_ring`` the wrapped form ``{j <= a or b <= j}`` counts
    (the paper's second branch).  With ``allow_reorder`` the predicate
    asks whether *some* machine permutation makes every set contiguous
    — the consecutive-ones property of the set/machine incidence
    matrix, decided via PQ-tree-free booth detection on small inputs
    (here: a simple laminar/greedy search adequate for families that
    are nested, plus a brute-force fallback for m <= 8).
    """
    sets = _as_sets(family)
    if any(max(s) > m for s in sets):
        raise ValueError("set exceeds machine count")
    ok = all(
        is_circular_interval(s, m) if allow_ring else is_contiguous(s) for s in sets
    )
    if ok or not allow_reorder:
        return ok
    # Nested families always admit an interval renumbering (paper, §3).
    if is_nested_family(sets):
        return True
    if m <= 8:
        from itertools import permutations

        for perm in permutations(range(1, m + 1)):
            relabel = {old: new + 1 for new, old in enumerate(perm)}
            if all(is_contiguous({relabel[j] for j in s}) for s in sets):
                return True
        return False
    return False


def classify_family(family: Sequence[Iterable[int]], m: int) -> str:
    """Most specific structure name of the family, following Figure 1.

    Returns one of :data:`STRUCTURES`.  ``inclusive`` is checked before
    ``disjoint``; a family that is both (all sets equal) reports
    ``inclusive``.
    """
    sets = _as_sets(family)
    if is_inclusive_family(sets):
        return "inclusive"
    if is_disjoint_family(sets):
        return "disjoint"
    if is_nested_family(sets):
        return "nested"
    if is_interval_family(sets, m):
        return "interval"
    return "general"


def specializes(a: str, b: str) -> bool:
    """Whether structure ``a`` is a special case of structure ``b``
    (reflexive-transitive closure of :data:`REDUCTION_GRAPH`)."""
    if a not in REDUCTION_GRAPH or b not in REDUCTION_GRAPH:
        raise ValueError(f"unknown structure: {a!r} or {b!r}")
    frontier = {a}
    seen = set()
    while frontier:
        cur = frontier.pop()
        if cur == b:
            return True
        seen.add(cur)
        frontier.update(x for x in REDUCTION_GRAPH[cur] if x not in seen)
    return False


def nested_interval_order(family: Sequence[Iterable[int]], m: int) -> list[int]:
    """Machine permutation making a *nested* family contiguous.

    Returns machines ``1..m`` reordered so that every set of the family
    maps to consecutive positions — a constructive witness of the
    "nested ⊂ interval (after reordering)" edge of Figure 1.  Machines
    in no set are appended at the end.  Raises if the family is not
    nested.
    """
    sets = _as_sets(family)
    if not is_nested_family(sets):
        raise ValueError("family is not nested")
    distinct = sorted(set(sets), key=lambda s: (-len(s), sorted(s)))

    def lay_out(universe: list[int], children: list[frozenset[int]]) -> list[int]:
        # children are maximal sets strictly inside `universe`'s set.
        order: list[int] = []
        used: set[int] = set()
        for child in children:
            grand = [s for s in distinct if s < child]
            maximal = [s for s in grand if not any(s < t for t in grand)]
            order.extend(lay_out(sorted(child), maximal))
            used |= child
        order.extend(j for j in universe if j not in used)
        return order

    top = [s for s in distinct if not any(s < t for t in distinct)]
    return lay_out(list(range(1, m + 1)), top)
