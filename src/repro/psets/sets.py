"""Processing-set primitives: contiguous and circular machine intervals.

The paper's structures are defined over 1-based machine indices.  Two
interval flavours appear:

* a **linear interval** ``{M_j : a <= j <= b}``;
* a **wrapping interval** ``{M_j : j <= a or b <= j}`` — the complement
  form in the paper's ``M_i(interval)`` definition, equivalently a
  circular (ring) interval.  Rings are how Dynamo-style stores
  replicate (clockwise successors).

This module provides constructors and recognisers for both, used by
the structure classifiers and the replication strategies.
"""

from __future__ import annotations

__all__ = [
    "degraded_family",
    "interval",
    "ring_interval",
    "is_contiguous",
    "is_circular_interval",
    "interval_bounds",
]


def interval(a: int, b: int, m: int | None = None) -> frozenset[int]:
    """Linear interval ``{a, a+1, ..., b}`` (1-based, inclusive)."""
    if a < 1 or b < a:
        raise ValueError(f"invalid interval [{a}, {b}]")
    if m is not None and b > m:
        raise ValueError(f"interval [{a}, {b}] exceeds m={m}")
    return frozenset(range(a, b + 1))


def ring_interval(start: int, size: int, m: int) -> frozenset[int]:
    """Circular interval of ``size`` machines starting at ``start`` on a
    ring of ``m`` machines:
    ``{ M_j : j = (j'-1) mod m + 1, start <= j' <= start+size-1 }``
    (the overlapping replication set :math:`I_k(u)` of Section 7.2)."""
    if not (1 <= start <= m):
        raise ValueError(f"start {start} outside 1..{m}")
    if not (1 <= size <= m):
        raise ValueError(f"size {size} outside 1..{m}")
    return frozenset((j - 1) % m + 1 for j in range(start, start + size))


def is_contiguous(s: frozenset[int] | set[int]) -> bool:
    """Whether ``s`` is a linear interval of consecutive indices."""
    if not s:
        return False
    return max(s) - min(s) + 1 == len(s)


def is_circular_interval(s: frozenset[int] | set[int], m: int) -> bool:
    """Whether ``s`` is an interval on the ``m``-ring (contiguous, or
    contiguous after wrapping — i.e. its complement within ``1..m`` is
    contiguous), matching the paper's two-branch interval definition."""
    if not s:
        return False
    if any(j < 1 or j > m for j in s):
        raise ValueError(f"indices outside 1..{m}")
    if is_contiguous(s):
        return True
    complement = set(range(1, m + 1)) - set(s)
    return is_contiguous(complement)


def interval_bounds(s: frozenset[int] | set[int]) -> tuple[int, int]:
    """Bounds ``(a, b)`` of a linear interval; raises if not one."""
    if not is_contiguous(s):
        raise ValueError(f"{sorted(s)} is not a contiguous interval")
    return min(s), max(s)


def degraded_family(
    family: list[frozenset[int]] | tuple[frozenset[int], ...],
    alive: frozenset[int] | set[int],
) -> list[frozenset[int]]:
    """Intersect every processing set with the ``alive`` machines.

    A machine failure shrinks every set :math:`\\mathcal{M}_i` to
    :math:`\\mathcal{M}_i \\cap \\text{alive}` — the degraded-mode view
    the fault-injected simulator dispatches over.  Empty intersections
    are *kept* (as empty frozensets): a task whose whole set is down
    cannot run and must be parked; callers count those to quantify
    availability loss (e.g. the park-risk fraction reported by the
    ``faulted`` experiment).
    """
    alive = frozenset(alive)
    return [s & alive for s in family]
