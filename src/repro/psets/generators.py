"""Random generators of structured processing-set families.

Used by tests (property-based and example-based) and by the empirical
competitive-ratio studies: generate a family of sets guaranteed to have
a given structure, then attach them to random task streams.
"""

from __future__ import annotations

import numpy as np

from .sets import interval, ring_interval

__all__ = [
    "random_interval_family",
    "random_fixed_k_intervals",
    "random_nested_family",
    "random_inclusive_family",
    "random_disjoint_family",
]


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def random_interval_family(
    n: int, m: int, rng: np.random.Generator | int | None = None, *, ring: bool = False
) -> list[frozenset[int]]:
    """``n`` random (linear or ring) intervals over ``m`` machines."""
    gen = _rng(rng)
    out = []
    for _ in range(n):
        if ring:
            start = int(gen.integers(1, m + 1))
            size = int(gen.integers(1, m + 1))
            out.append(ring_interval(start, size, m))
        else:
            a = int(gen.integers(1, m + 1))
            b = int(gen.integers(a, m + 1))
            out.append(interval(a, b, m))
    return out


def random_fixed_k_intervals(
    n: int,
    m: int,
    k: int,
    rng: np.random.Generator | int | None = None,
    *,
    ring: bool = True,
) -> list[frozenset[int]]:
    """``n`` random intervals of fixed size ``k`` (the
    ``M_i(interval), |M_i| = k`` setting of Theorems 7–10)."""
    if not (1 <= k <= m):
        raise ValueError(f"k={k} outside 1..{m}")
    gen = _rng(rng)
    out = []
    for _ in range(n):
        if ring:
            start = int(gen.integers(1, m + 1))
            out.append(ring_interval(start, k, m))
        else:
            start = int(gen.integers(1, m - k + 2))
            out.append(interval(start, start + k - 1, m))
    return out


def random_nested_family(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> list[frozenset[int]]:
    """``n`` sets drawn from a random laminar family over ``1..m``.

    Builds a random binary laminar decomposition of ``[1, m]`` (always
    nested) and samples its cells.
    """
    gen = _rng(rng)
    cells: list[frozenset[int]] = []

    def split(a: int, b: int) -> None:
        cells.append(interval(a, b))
        if b - a + 1 >= 2 and gen.random() < 0.8:
            cut = int(gen.integers(a, b))
            split(a, cut)
            split(cut + 1, b)

    split(1, m)
    idx = gen.integers(0, len(cells), size=n)
    return [cells[int(i)] for i in idx]


def random_inclusive_family(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> list[frozenset[int]]:
    """``n`` sets drawn from a random inclusion chain over ``1..m``.

    Chain links are prefixes ``{1..s}`` after a random machine
    permutation, guaranteeing pairwise comparability.
    """
    gen = _rng(rng)
    perm = gen.permutation(np.arange(1, m + 1))
    sizes = sorted(set(int(s) for s in gen.integers(1, m + 1, size=max(1, n // 2))) | {m})
    chain = [frozenset(int(x) for x in perm[:s]) for s in sizes]
    idx = gen.integers(0, len(chain), size=n)
    return [chain[int(i)] for i in idx]


def random_disjoint_family(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> list[frozenset[int]]:
    """``n`` sets drawn from a random partition of ``1..m`` into
    consecutive groups (pairwise equal-or-disjoint)."""
    gen = _rng(rng)
    groups: list[frozenset[int]] = []
    a = 1
    while a <= m:
        size = int(gen.integers(1, m - a + 2))
        groups.append(interval(a, a + size - 1))
        a += size
    idx = gen.integers(0, len(groups), size=n)
    return [groups[int(i)] for i in idx]
