"""Replication strategies of Section 7.2 (Figure 9).

Starting from tasks that can only run on one machine :math:`M_u`
(un-replicated data), a replication strategy extends the processing
set to an interval :math:`I_k(u)` of ``k`` machines:

* **Overlapping intervals** — ``m`` distinct intervals arranged on a
  ring, each machine starting its own window of ``k`` successors.
  This is the standard Dynamo/Cassandra scheme.  Bad worst case for
  EFT (Theorems 8–10) but the best practical max-load (Figure 10).
* **Disjoint intervals** — the cluster is cut into ``ceil(m/k)``
  consecutive groups of ``k`` machines (the last group may be
  shorter).  Disjoint sets give EFT a ``(3 - 2/k)`` guarantee
  (Corollary 1).

Both are exposed as :class:`ReplicationStrategy` objects mapping a home
machine ``u`` to its replica set, and can rewrite whole instances.
"""

from __future__ import annotations

from typing import Iterable

from ..core.task import Instance, Task
from .sets import ring_interval

__all__ = [
    "ReplicationStrategy",
    "NoReplication",
    "OverlappingIntervals",
    "DisjointIntervals",
    "get_strategy",
    "replicate_instance",
]


class ReplicationStrategy:
    """Maps a home machine to the set of machines holding its data."""

    name = "abstract"

    def __init__(self, m: int, k: int) -> None:
        if not (1 <= k <= m):
            raise ValueError(f"replication factor k={k} outside 1..{m}")
        self.m = m
        self.k = k

    def replicas(self, u: int) -> frozenset[int]:
        """Replica set :math:`I_k(u)` of data homed on machine ``u``."""
        raise NotImplementedError

    def all_sets(self) -> list[frozenset[int]]:
        """Replica sets of every machine ``1..m`` (may repeat)."""
        return [self.replicas(u) for u in range(1, self.m + 1)]

    def transfer_matrix(self):
        """Boolean matrix ``A[i-1, j-1]`` = machine ``i`` may serve work
        homed on machine ``j`` (``M_i ∈ I_k(j)``) — the support of the
        LP variables :math:`a_{ij}` of Equation (15d)."""
        import numpy as np

        a = np.zeros((self.m, self.m), dtype=bool)
        for j in range(1, self.m + 1):
            for i in self.replicas(j):
                a[i - 1, j - 1] = True
        return a

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(m={self.m}, k={self.k})"


class NoReplication(ReplicationStrategy):
    """Degenerate strategy: each task stays pinned to its home machine
    (``|M_i| = 1``, the un-replicated key-value store of §7.1)."""

    name = "none"

    def __init__(self, m: int, k: int = 1) -> None:
        super().__init__(m, 1)

    def replicas(self, u: int) -> frozenset[int]:
        if not (1 <= u <= self.m):
            raise ValueError(f"machine {u} outside 1..{self.m}")
        return frozenset({u})


class OverlappingIntervals(ReplicationStrategy):
    """Ring replication: ``I_k(u) = {u, u+1, ..., u+k-1}`` mod ``m``.

    There are ``m`` distinct intervals; consecutive home machines have
    overlapping replica sets (Figure 9, bottom rows).
    """

    name = "overlapping"

    def replicas(self, u: int) -> frozenset[int]:
        if not (1 <= u <= self.m):
            raise ValueError(f"machine {u} outside 1..{self.m}")
        return ring_interval(u, self.k, self.m)


class DisjointIntervals(ReplicationStrategy):
    """Partition replication: ``I_k(u) = {u'+1, ..., min(m, u'+k)}``
    with ``u' = k * floor((u-1)/k)`` (Figure 9, middle rows).

    The last group is shorter when ``k`` does not divide ``m``.
    """

    name = "disjoint"

    def replicas(self, u: int) -> frozenset[int]:
        if not (1 <= u <= self.m):
            raise ValueError(f"machine {u} outside 1..{self.m}")
        base = self.k * ((u - 1) // self.k)
        return frozenset(range(base + 1, min(self.m, base + self.k) + 1))

    def groups(self) -> list[frozenset[int]]:
        """The ``ceil(m/k)`` disjoint groups, in ring order."""
        out = []
        u = 1
        while u <= self.m:
            g = self.replicas(u)
            out.append(g)
            u = max(g) + 1
        return out


_STRATEGIES = {
    "none": NoReplication,
    "overlapping": OverlappingIntervals,
    "disjoint": DisjointIntervals,
}


def get_strategy(name: str | ReplicationStrategy, m: int, k: int) -> ReplicationStrategy:
    """Resolve a strategy by name, or pass an instance through."""
    if isinstance(name, ReplicationStrategy):
        return name
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ValueError(f"unknown replication strategy {name!r}; known: {sorted(_STRATEGIES)}") from None
    return cls(m, k)


def replicate_instance(
    instance: Instance,
    strategy: str | ReplicationStrategy,
    k: int,
    homes: Iterable[int] | None = None,
) -> Instance:
    """Rewrite an instance's processing sets through a replication
    strategy.

    ``homes`` gives the home machine of each task; by default the home
    is the task's current (singleton) processing set.  Tasks keep their
    ids, releases and sizes; only :math:`\\mathcal{M}_i` changes —
    exactly the :math:`\\mathcal{M}_i \\to \\mathcal{M}'_i`
    construction of Section 7.2.
    """
    strat = get_strategy(strategy, instance.m, k)
    if homes is None:
        home_list = []
        for t in instance:
            ms = t.eligible(instance.m)
            if len(ms) != 1:
                raise ValueError(
                    f"task {t.tid}: cannot infer home from non-singleton set {sorted(ms)}; "
                    "pass homes= explicitly"
                )
            home_list.append(next(iter(ms)))
    else:
        home_list = list(homes)
        if len(home_list) != instance.n:
            raise ValueError("homes length must match task count")
    new_tasks = tuple(
        Task(
            tid=t.tid,
            release=t.release,
            proc=t.proc,
            machines=strat.replicas(h),
            key=t.key,
        )
        for t, h in zip(instance, home_list)
    )
    return Instance(m=instance.m, tasks=new_tasks)
