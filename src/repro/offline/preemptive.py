"""Exact *preemptive* offline optimum (flow-based).

Table 1 of the paper recalls that preemptive max-flow minimisation is
solvable offline (Lawler–Labetoulle / Legrand et al.).  On identical
machines with processing-set restrictions the decision problem "can
every task meet the deadline :math:`d_i = r_i + F`?" reduces to a
maximum flow:

* sort the event points (all releases and deadlines) into consecutive
  intervals :math:`I_\\ell` of length :math:`L_\\ell`;
* ``source → task i`` with capacity :math:`p_i`;
* ``task i → (i, ℓ)`` for every interval inside
  :math:`[r_i, d_i]`, capacity :math:`L_\\ell` (a task cannot run on
  two machines simultaneously);
* ``(i, ℓ) → (ℓ, j)`` for every eligible machine
  :math:`M_j \\in \\mathcal{M}_i`, and ``(ℓ, j) → sink`` with capacity
  :math:`L_\\ell` (each machine offers :math:`L_\\ell` time in the
  interval).

Feasibility :math:`\\iff` max-flow :math:`= \\sum_i p_i`; within each
interval the per-task/per-machine amounts decompose into a preemptive
schedule by a Birkhoff–von-Neumann-style argument, so the condition is
exact.  The optimum is then a binary search on :math:`F` (continuous —
solved to a tolerance, or exactly over the induced critical values for
integral data).

The preemptive optimum lower-bounds the non-preemptive one; the gap
quantifies how much the paper's non-preemptive model pays.
"""

from __future__ import annotations

from ..core.task import Instance
from ..maxload.flow import Dinic

__all__ = ["preemptive_feasible", "optimal_preemptive_fmax"]

_FLOW_TOL = 1e-7


def _solve_network(instance: Instance, flow_bound: float):
    """Build and solve the interval flow network.

    Returns ``(feasible, intervals, amounts)`` where ``amounts[(i, l,
    j)]`` is how much of task index ``i`` runs on machine ``j`` inside
    interval ``l`` in the maximum flow.
    """
    n = instance.n
    m = instance.m
    tasks = list(instance.tasks)
    deadlines = [t.release + flow_bound for t in tasks]
    points = sorted({t.release for t in tasks} | set(deadlines))
    intervals = [(a, b) for a, b in zip(points, points[1:]) if b - a > 1e-12]

    # Node layout: 0 source | 1..n tasks | task-interval pairs | then
    # (interval, machine) pairs | sink last.  Pair nodes are allocated
    # lazily to keep the graph sparse.
    node_count = 1 + n
    ti_nodes: dict[tuple[int, int], int] = {}
    lm_nodes: dict[tuple[int, int], int] = {}
    for i, t in enumerate(tasks):
        for l, (a, b) in enumerate(intervals):
            if a >= t.release - 1e-12 and b <= deadlines[i] + 1e-12:
                ti_nodes[(i, l)] = node_count
                node_count += 1
                for j in t.eligible(m):
                    if (l, j) not in lm_nodes:
                        lm_nodes[(l, j)] = node_count
                        node_count += 1
    sink = node_count
    node_count += 1

    net = Dinic(node_count)
    total = 0.0
    for i, t in enumerate(tasks):
        net.add_edge(0, 1 + i, t.proc)
        total += t.proc
    # remember the ti -> lm edges so flow values can be read back
    edge_refs: dict[tuple[int, int, int], tuple[int, int]] = {}  # (i,l,j) -> (node, edge_index)
    for (i, l), node in ti_nodes.items():
        length = intervals[l][1] - intervals[l][0]
        net.add_edge(1 + i, node, length)
        for j in tasks[i].eligible(m):
            edge_refs[(i, l, j)] = (node, len(net.graph[node]))
            net.add_edge(node, lm_nodes[(l, j)], length)
    for (l, j), node in lm_nodes.items():
        length = intervals[l][1] - intervals[l][0]
        net.add_edge(node, sink, length)
    feasible = net.max_flow(0, sink) >= total - _FLOW_TOL
    amounts: dict[tuple[int, int, int], float] = {}
    if feasible:
        for (i, l, j), (node, edge_idx) in edge_refs.items():
            cap_left = net.graph[node][edge_idx][1]
            original = intervals[l][1] - intervals[l][0]
            sent = original - cap_left
            if sent > 1e-12:
                amounts[(i, l, j)] = sent
    return feasible, intervals, amounts


def preemptive_feasible(instance: Instance, flow_bound: float) -> bool:
    """Whether every task can complete within ``r_i + flow_bound``
    under preemptive scheduling with processing sets."""
    if flow_bound <= 0:
        return instance.n == 0
    if instance.n == 0:
        return True
    feasible, _, _ = _solve_network(instance, flow_bound)
    return feasible


def optimal_preemptive_fmax(instance: Instance, tol: float = 1e-6) -> float:
    """Optimal preemptive maximum flow time, to tolerance ``tol``.

    Binary search between the volume/``pmax`` lower bounds and the
    (feasible) non-preemptive EFT value.
    """
    if instance.n == 0:
        return 0.0
    from ..core.eft import eft_schedule

    from .bounds import opt_lower_bound

    lo = max(opt_lower_bound(instance), min(t.proc for t in instance))
    hi = eft_schedule(instance, tiebreak="min").max_flow
    if preemptive_feasible(instance, lo):
        return lo
    for _ in range(200):
        if hi - lo <= tol:
            break
        mid = (lo + hi) / 2
        if preemptive_feasible(instance, mid):
            hi = mid
        else:
            lo = mid
    return hi
