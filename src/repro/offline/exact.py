"""Exact offline optimum by branch-and-bound (small instances).

``P | r_i, M_i | Fmax`` is strongly NP-hard; this solver explores
left-aligned schedules — for a fixed assignment of tasks to machines
and a fixed order per machine, starting every task as early as possible
is optimal for :math:`F_{max}`, so the search space is "append the next
task to some machine's end".  Intended for :math:`n \\lesssim 12`;
used by tests to measure true competitive ratios on arbitrary
(non-unit) instances.

Pruning:

* incumbent bound — partial max-flow already ≥ best known;
* per-task bound — a remaining task's flow is at least
  :math:`\\max(p_i,\\; \\min_{j \\in \\mathcal{M}_i} \\max(r_i, C_j) + p_i - r_i)`;
* global volume bound via :func:`repro.offline.bounds.opt_lower_bound`;
* symmetry — identical machines with equal completion time 0 are
  interchangeable for unrestricted tasks, so only the first empty
  machine is tried.
"""

from __future__ import annotations

from ..core.schedule import Schedule
from ..core.task import Instance
from .bounds import opt_lower_bound

__all__ = ["ExactSolver", "optimal_fmax", "optimal_schedule"]


class ExactSolver:
    """Branch-and-bound solver for the offline max-flow problem."""

    def __init__(self, instance: Instance, node_limit: int = 2_000_000) -> None:
        self.instance = instance
        self.node_limit = node_limit
        self.nodes = 0
        self._best_value = float("inf")
        self._best_placement: dict[int, tuple[int, float]] | None = None

    def solve(self) -> tuple[float, Schedule]:
        """Return ``(OPT, optimal schedule)``.

        Raises ``RuntimeError`` if the node limit is exhausted before
        the search completes (instance too large for exact solving).
        """
        inst = self.instance
        if inst.n == 0:
            return 0.0, Schedule(inst, {})
        # Seed the incumbent with EFT, a feasible online solution.
        from ..core.eft import eft_schedule

        seed = eft_schedule(inst, tiebreak="min")
        self._best_value = seed.max_flow
        self._best_placement = {a.task.tid: (a.machine, a.start) for a in seed}
        self._global_lb = opt_lower_bound(inst)

        tasks = list(inst.tasks)
        completions = [0.0] * (inst.m + 1)  # index 0 unused
        placement: dict[int, tuple[int, float]] = {}
        self._dfs(tasks, completions, placement, 0.0)
        if self.nodes >= self.node_limit:
            raise RuntimeError(
                f"ExactSolver exhausted its node limit ({self.node_limit}); instance too large"
            )
        assert self._best_placement is not None
        sched = Schedule(inst, self._best_placement)
        sched.validate()
        return self._best_value, sched

    # -- search ------------------------------------------------------------
    def _remaining_lb(self, tasks: list, completions: list[float]) -> float:
        lb = 0.0
        m = self.instance.m
        for t in tasks:
            eligible = t.eligible(m)
            start = min(max(t.release, completions[j]) for j in eligible)
            lb = max(lb, start + t.proc - t.release)
        return lb

    def _dfs(
        self,
        remaining: list,
        completions: list[float],
        placement: dict[int, tuple[int, float]],
        current_max: float,
    ) -> None:
        self.nodes += 1
        if self.nodes >= self.node_limit:
            return
        if not remaining:
            if current_max < self._best_value:
                self._best_value = current_max
                self._best_placement = dict(placement)
            return
        if current_max >= self._best_value:
            return
        if max(current_max, self._remaining_lb(remaining, completions)) >= self._best_value:
            return
        if self._best_value <= self._global_lb:
            return  # incumbent already optimal
        m = self.instance.m
        # Dominance: per-machine release order is optimal for Fmax (the
        # adjacent-swap argument of Theorem 2 extends to arbitrary p_i on
        # a single machine because deadlines r_i + F are agreeable with
        # releases), so appending tasks in global release order reaches
        # an optimal schedule.  Branch over all tasks sharing the minimum
        # release (their relative per-machine order matters), deduping
        # fully identical ones (same p_i and processing set).
        min_release = min(t.release for t in remaining)
        branch_tasks = []
        seen_sig = set()
        for t in remaining:
            if t.release != min_release:
                continue
            sig = (t.proc, t.machines)
            if sig in seen_sig:
                continue
            seen_sig.add(sig)
            branch_tasks.append(t)
        for t in branch_tasks:
            rest = [x for x in remaining if x.tid != t.tid]
            tried_fresh = False
            for j in sorted(t.eligible(m)):
                if completions[j] == 0.0 and t.machines is None:
                    if tried_fresh:
                        continue  # identical empty machines are symmetric
                    tried_fresh = True
                start = max(t.release, completions[j])
                flow = start + t.proc - t.release
                new_max = max(current_max, flow)
                if new_max >= self._best_value:
                    continue
                old = completions[j]
                completions[j] = start + t.proc
                placement[t.tid] = (j, start)
                self._dfs(rest, completions, placement, new_max)
                completions[j] = old
                del placement[t.tid]


def optimal_fmax(instance: Instance, node_limit: int = 2_000_000) -> float:
    """Exact offline optimum value (small instances only)."""
    value, _ = ExactSolver(instance, node_limit).solve()
    return value


def optimal_schedule(instance: Instance, node_limit: int = 2_000_000) -> Schedule:
    """An exact offline-optimal schedule (small instances only)."""
    _, sched = ExactSolver(instance, node_limit).solve()
    return sched
