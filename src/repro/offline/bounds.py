"""Lower bounds on the offline optimum ``OPT``'s maximum flow time.

Used to bound competitive ratios from below on instances too large for
the exact solvers.  The bounds implemented:

* :func:`lb_pmax` — Equation (3): :math:`F^{OPT}_{max} \\ge p_{max}`
  (some task must run entirely).
* :func:`lb_volume` — Equation (4)-style work argument: tasks released
  from time :math:`t_0` onward carry total work :math:`V`; even a
  perfectly balanced cluster finishes them no earlier than
  :math:`t_0 + V/m`, and the last one was released at most at
  :math:`r_{max}`, hence :math:`F_{max} \\ge t_0 + V/m - r_{max}`.
* :func:`lb_restricted_volume` — the same argument confined to a
  machine subset :math:`J`: tasks with :math:`\\mathcal{M}_i \\subseteq
  J` can only use :math:`|J|` machines.  Enumerates candidate
  :math:`J` from the distinct processing sets (and unions of
  overlapping ones) — exact enough for structured families.
"""

from __future__ import annotations

from itertools import combinations

from ..core.task import Instance

__all__ = ["lb_pmax", "lb_volume", "lb_restricted_volume", "opt_lower_bound"]


def lb_pmax(instance: Instance) -> float:
    """Equation (3): ``OPT >= pmax``."""
    return instance.pmax


def lb_volume(instance: Instance) -> float:
    """Work-volume bound over every release-time suffix.

    :math:`\\max_{t_0} \\bigl( t_0 + V_{\\ge t_0}/m - r_{max,\\ge t_0} \\bigr)`
    where the max runs over distinct release times :math:`t_0` and
    :math:`V_{\\ge t_0}` is the work of tasks released at or after
    :math:`t_0`.  Always at least :math:`p_{min}`.
    """
    if instance.n == 0:
        return 0.0
    releases = sorted({t.release for t in instance})
    best = min(t.proc for t in instance)
    for t0 in releases:
        suffix = [t for t in instance if t.release >= t0]
        vol = sum(t.proc for t in suffix)
        rmax = max(t.release for t in suffix)
        best = max(best, t0 + vol / instance.m - rmax)
    return best


def lb_restricted_volume(instance: Instance, max_union: int = 3) -> float:
    """Volume bound restricted to machine subsets.

    For each candidate machine set :math:`J` (distinct processing sets
    of the instance and unions of up to ``max_union`` of them) and each
    release-time suffix, tasks with :math:`\\mathcal{M}_i \\subseteq J`
    give :math:`F_{max} \\ge t_0 + V/|J| - r_{max}`.
    """
    if instance.n == 0:
        return 0.0
    psets = sorted({t.eligible(instance.m) for t in instance}, key=sorted)
    candidates: set[frozenset[int]] = set(psets)
    for r in range(2, max_union + 1):
        if len(psets) > 12 and r > 2:
            break  # keep enumeration polynomial on wide families
        for combo in combinations(psets, r):
            u = frozenset().union(*combo)
            candidates.add(u)
    releases = sorted({t.release for t in instance})
    best = 0.0
    for J in candidates:
        tasks_j = [t for t in instance if t.eligible(instance.m) <= J]
        if not tasks_j:
            continue
        for t0 in releases:
            suffix = [t for t in tasks_j if t.release >= t0]
            if not suffix:
                continue
            vol = sum(t.proc for t in suffix)
            rmax = max(t.release for t in suffix)
            best = max(best, t0 + vol / len(J) - rmax)
    return best


def opt_lower_bound(instance: Instance) -> float:
    """Best available lower bound on ``OPT``'s maximum flow time."""
    return max(lb_pmax(instance), lb_volume(instance), lb_restricted_volume(instance))
