"""FPTAS-style offline approximation for small machine counts.

Table 1 cites Mastrolilli's FPTAS for offline max-flow minimisation,
running in :math:`O(nm(n^2/\\varepsilon)^m)` — exponential in ``m``
but polynomial for fixed machine count.  This module implements the
scheme's core idea for the identical-machine problem with processing
sets:

* process tasks in release order (per-machine release order is optimal
  for ``Fmax`` — the adjacent-swap argument used by the exact solver);
* dynamic programming over the vector of machine completion times,
  **rounded to a grid** of step :math:`\\delta = \\varepsilon \\cdot
  F_{LB} / n` so the state space stays bounded;
* each rounding inflates a completion by at most :math:`\\delta`, and
  a task's flow accumulates at most :math:`n` roundings, so the result
  is within :math:`(1 + \\varepsilon)` of the optimum.

Practical for :math:`m \\le 3` and a few dozen tasks — exactly the
regime where the exact branch-and-bound starts to struggle, which is
what the cross-check tests exploit.
"""

from __future__ import annotations

import math

from ..core.task import Instance
from .bounds import opt_lower_bound

__all__ = ["fptas_fmax"]


def fptas_fmax(instance: Instance, eps: float = 0.2) -> float:
    """A ``(1 + eps)``-approximation of the offline optimal max flow.

    Raises ``ValueError`` for ``eps <= 0``; intended for small ``m``
    (the state space is exponential in the machine count).
    """
    if eps <= 0:
        raise ValueError("eps must be > 0")
    n = instance.n
    if n == 0:
        return 0.0
    m = instance.m
    lb = max(opt_lower_bound(instance), 1e-12)
    delta = eps * lb / n  # grid step; <= eps*OPT/n

    def snap(x: float) -> float:
        return math.ceil(x / delta - 1e-12) * delta

    # Sound pruning ceiling: EFT is feasible, so OPT <= U; the optimal
    # DP trajectory accumulates at most n rounding inflations of delta,
    # keeping its running fmax <= OPT + n*delta <= U + n*delta — states
    # above that can never beat what we already know is achievable.
    from ..core.eft import eft_schedule

    upper = eft_schedule(instance, tiebreak="min").max_flow
    ceiling = upper + n * delta + 1e-12

    # State: tuple of rounded machine completion times -> minimal
    # max-flow achieved so far.  Machines are distinguishable because
    # processing sets reference indices.
    states: dict[tuple[float, ...], float] = {tuple([0.0] * m): 0.0}
    for task in instance.tasks:
        eligible = sorted(task.eligible(m))
        nxt: dict[tuple[float, ...], float] = {}
        for comp, fmax in states.items():
            for j in eligible:
                start = max(task.release, comp[j - 1])
                completion = start + task.proc
                flow = completion - task.release
                value = max(fmax, flow)
                if value > ceiling:
                    continue
                new_comp = list(comp)
                new_comp[j - 1] = snap(completion)
                key = tuple(new_comp)
                old = nxt.get(key)
                if old is None or value < old:
                    nxt[key] = value
        if not nxt:  # everything pruned: EFT's value is the answer
            return upper
        states = nxt
    return min(min(states.values()), upper)
