"""Constructing an explicit preemptive schedule from the flow solution.

:func:`repro.offline.preemptive.preemptive_feasible` certifies that a
deadline vector is achievable, but a certificate is not a timetable.
This module turns the per-interval flow amounts :math:`x_{ij}` (work of
task :math:`i` served by machine :math:`j` inside interval
:math:`I_\\ell`) into actual execution pieces via a Birkhoff–von
Neumann style decomposition:

1. pad the interval's task×machine amount matrix to a square matrix
   whose every row and column sums exactly to the interval length
   :math:`L` (dummy "parked task" columns absorb a task's idle time,
   dummy "idle filler" rows absorb a machine's idle time);
2. a matrix with constant line sums and non-negative entries has a
   *perfect* matching on its positive entries (Hall's theorem / BvN);
   extract one with Hopcroft–Karp, run it for
   :math:`\\delta = \\min` matched entry, subtract, repeat — each
   round zeroes at least one entry, so at most
   :math:`(n_\\ell + m)^2` rounds;
3. real (task, machine) pairs of each round become execution pieces;
   dummy pairs are idleness.

The result is a feasible preemptive timetable: one machine per task at
a time, one task per machine at a time, eligibility respected, every
deadline met — all verified by the tests and by
:func:`validate_pieces`.
"""

from __future__ import annotations

from ..core.task import Instance
from .matching import hopcroft_karp
from .preemptive import _solve_network, optimal_preemptive_fmax

__all__ = ["Piece", "preemptive_schedule_pieces", "validate_pieces", "optimal_preemptive_pieces"]

_EPS = 1e-9


class Piece(tuple):
    """An execution piece ``(tid, machine, start, end)``."""

    __slots__ = ()

    def __new__(cls, tid: int, machine: int, start: float, end: float):
        return super().__new__(cls, (tid, machine, start, end))

    @property
    def tid(self) -> int:
        return self[0]

    @property
    def machine(self) -> int:
        return self[1]

    @property
    def start(self) -> float:
        return self[2]

    @property
    def end(self) -> float:
        return self[3]


def _decompose_interval(
    length: float,
    amounts: dict[tuple[int, int], float],
    machines: list[int],
    start_time: float,
) -> list[tuple[int, int, float, float]]:
    """BvN decomposition of one interval; returns raw piece tuples."""
    task_ids = sorted({i for i, _ in amounts})
    n_rows = len(task_ids)
    m = len(machines)
    size = n_rows + m
    # Square matrix: rows = tasks then idle-fillers (one per machine);
    # cols = machines then parked-task cols (one per task).
    mat = [[0.0] * size for _ in range(size)]
    row_of_task = {tid: r for r, tid in enumerate(task_ids)}
    col_of_machine = {j: c for c, j in enumerate(machines)}
    for (i, j), x in amounts.items():
        mat[row_of_task[i]][col_of_machine[j]] += x
    # Parked-task columns: task i's own idle time in this interval.
    for r, tid in enumerate(task_ids):
        row_sum = sum(mat[r])
        mat[r][m + r] = max(0.0, length - row_sum)
    # Idle-filler rows: machine idle time, then top the filler rows up
    # through the parked columns (northwest-corner fill).
    col_deficit = [0.0] * size
    for c in range(size):
        col_sum = sum(mat[r][c] for r in range(n_rows))
        target = length
        col_deficit[c] = max(0.0, target - col_sum)
    filler_remaining = [length] * m  # row sums still to place per filler row
    for k in range(m):
        # first absorb this machine's idleness
        c = k
        take = min(filler_remaining[k], col_deficit[c])
        mat[n_rows + k][c] += take
        filler_remaining[k] -= take
        col_deficit[c] -= take
    # distribute the rest of filler rows across remaining column deficits
    c = 0
    for k in range(m):
        while filler_remaining[k] > _EPS:
            while c < size and col_deficit[c] <= _EPS:
                c += 1
            if c >= size:  # pragma: no cover - conservation guarantees room
                raise RuntimeError("padding failed: no column deficit left")
            take = min(filler_remaining[k], col_deficit[c])
            mat[n_rows + k][c] += take
            filler_remaining[k] -= take
            col_deficit[c] -= take

    pieces: list[tuple[int, int, float, float]] = []
    clock = start_time
    remaining = length
    guard = 0
    while remaining > _EPS:
        guard += 1
        if guard > size * size + 10:  # pragma: no cover - BvN terminates sooner
            raise RuntimeError("decomposition failed to terminate")
        adjacency = {
            r: [c for c in range(size) if mat[r][c] > _EPS] for r in range(size)
        }
        matching = hopcroft_karp(adjacency)
        if len(matching) < size:  # pragma: no cover - perfect by BvN
            raise RuntimeError("no perfect matching in padded matrix")
        delta = min(mat[r][c] for r, c in matching.items())
        delta = min(delta, remaining)
        for r, c in matching.items():
            mat[r][c] -= delta
            if r < n_rows and c < m:
                pieces.append((task_ids[r], machines[c], clock, clock + delta))
        clock += delta
        remaining -= delta
    return pieces


def preemptive_schedule_pieces(
    instance: Instance, flow_bound: float
) -> list[Piece] | None:
    """An explicit preemptive timetable meeting ``d_i = r_i +
    flow_bound``, or ``None`` if infeasible.

    Pieces are merged when consecutive on the same (task, machine).
    """
    if instance.n == 0:
        return []
    feasible, intervals, amounts = _solve_network(instance, flow_bound)
    if not feasible:
        return None
    machines = list(range(1, instance.m + 1))
    raw: list[tuple[int, int, float, float]] = []
    for l, (a, b) in enumerate(intervals):
        per_interval = {
            (i, j): x for (i, l2, j), x in amounts.items() if l2 == l
        }
        if not per_interval:
            continue
        raw.extend(_decompose_interval(b - a, per_interval, machines, a))
    # translate task indices to tids and merge adjacent same-pair pieces
    tids = [t.tid for t in instance.tasks]
    raw = [(tids[i], j, s, e) for (i, j, s, e) in raw]
    raw.sort(key=lambda p: (p[0], p[1], p[2]))
    merged: list[Piece] = []
    for tid, j, s, e in raw:
        if merged and merged[-1].tid == tid and merged[-1].machine == j and abs(
            merged[-1].end - s
        ) <= _EPS:
            last = merged.pop()
            merged.append(Piece(tid, j, last.start, e))
        else:
            merged.append(Piece(tid, j, s, e))
    return merged


def optimal_preemptive_pieces(
    instance: Instance, tol: float = 1e-6
) -> tuple[float, list[Piece]]:
    """The optimal preemptive value plus a witnessing timetable."""
    value = optimal_preemptive_fmax(instance, tol=tol)
    pieces = preemptive_schedule_pieces(instance, value + tol)
    assert pieces is not None
    return value, pieces


def validate_pieces(
    instance: Instance, pieces: list[Piece], flow_bound: float, tol: float = 1e-6
) -> None:
    """Raise ``ValueError`` unless the timetable is a feasible
    preemptive schedule meeting every deadline."""
    by_tid = {t.tid: t for t in instance}
    work: dict[int, float] = {t.tid: 0.0 for t in instance}
    for p in pieces:
        task = by_tid.get(p.tid)
        if task is None:
            raise ValueError(f"piece references unknown task {p.tid}")
        if p.end <= p.start - tol:
            raise ValueError(f"piece of task {p.tid} has non-positive length")
        if p.start < task.release - tol:
            raise ValueError(f"task {p.tid} runs before its release")
        if p.end > task.release + flow_bound + tol:
            raise ValueError(f"task {p.tid} misses its deadline")
        if not task.is_eligible(p.machine, instance.m):
            raise ValueError(f"task {p.tid} runs on ineligible machine {p.machine}")
        work[p.tid] += p.end - p.start
    for tid, w in work.items():
        if abs(w - by_tid[tid].proc) > tol * max(1.0, by_tid[tid].proc):
            raise ValueError(f"task {tid} received {w} work, needs {by_tid[tid].proc}")
    # no overlap per machine; no parallelism per task
    for key_fn, label in ((lambda p: p.machine, "machine"), (lambda p: p.tid, "task")):
        groups: dict[int, list[Piece]] = {}
        for p in pieces:
            groups.setdefault(key_fn(p), []).append(p)
        for key, plist in groups.items():
            plist.sort(key=lambda p: p.start)
            for p1, p2 in zip(plist, plist[1:]):
                if p2.start < p1.end - tol:
                    raise ValueError(f"{label} {key} overlaps at {p2.start}")
