"""Hopcroft–Karp maximum bipartite matching.

Own implementation (the offline unit-task optimum of
:mod:`repro.offline.unit_opt` reduces feasibility to matching); tested
against :mod:`networkx` in the test suite.  Runs in
:math:`O(E \\sqrt{V})`.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping, Sequence

__all__ = ["hopcroft_karp", "maximum_matching_size"]

_INF = float("inf")


def hopcroft_karp(
    adjacency: Mapping[Hashable, Sequence[Hashable]],
) -> dict[Hashable, Hashable]:
    """Maximum matching of a bipartite graph.

    Parameters
    ----------
    adjacency:
        Maps each *left* vertex to its right-side neighbours.  Left and
        right vertex sets are implicitly disjoint (right vertices are
        whatever appears in the neighbour lists).

    Returns
    -------
    dict
        ``left -> right`` pairs of a maximum matching.
    """
    match_l: dict[Hashable, Hashable] = {}
    match_r: dict[Hashable, Hashable] = {}
    dist: dict[Hashable, float] = {}

    def bfs() -> bool:
        queue: deque = deque()
        for u in adjacency:
            if u not in match_l:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_r.get(v)
                if w is None:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: Hashable) -> bool:
        for v in adjacency[u]:
            w = match_r.get(v)
            if w is None or (dist.get(w) == dist[u] + 1 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in list(adjacency):
            if u not in match_l:
                dfs(u)
    return match_l


def maximum_matching_size(adjacency: Mapping[Hashable, Sequence[Hashable]]) -> int:
    """Cardinality of a maximum matching of the bipartite graph."""
    return len(hopcroft_karp(adjacency))
