"""Exact offline optimum for unit tasks with processing sets.

``P | r_i, p_i = 1, M_i | Fmax`` is polynomial (Section 6, via Brucker
et al.): binary-search the answer :math:`F` and check feasibility of
the deadline problem :math:`d_i = r_i + F` with a bipartite matching
between tasks and (machine, time-slot) pairs.

Restrictions: processing times must all equal 1 and release times must
be integral — every adversary instance of the paper satisfies this,
and any integral-release unit instance does.  The returned schedule is
a true optimum, so tests can measure *exact* competitive ratios.
"""

from __future__ import annotations

from ..core.schedule import Schedule
from ..core.task import Instance
from .matching import hopcroft_karp

__all__ = ["optimal_unit_fmax", "unit_feasible_with_flow", "optimal_unit_schedule"]


def _check_unit_integral(instance: Instance) -> None:
    for t in instance:
        if t.proc != 1:
            raise ValueError(f"task {t.tid} has p={t.proc}; unit OPT requires p_i = 1")
        if float(t.release) != int(t.release):
            raise ValueError(
                f"task {t.tid} has non-integral release {t.release}; unit OPT requires integral releases"
            )


def unit_feasible_with_flow(instance: Instance, flow: int) -> dict[int, tuple[int, int]] | None:
    """Feasibility of max-flow ``flow`` for a unit, integral instance.

    Returns ``tid -> (machine, start)`` placements if every task can
    complete within ``r_i + flow``, else ``None``.  Start slots are the
    integers in ``[r_i, r_i + flow - 1]``; a matching of all tasks to
    distinct (machine, slot) pairs is exactly a feasible schedule
    because unit tasks occupy one slot each.
    """
    if flow < 1:
        return None
    _check_unit_integral(instance)
    adjacency: dict[int, list[tuple[int, int]]] = {}
    for t in instance:
        r = int(t.release)
        slots = []
        for s in range(r, r + flow):
            for j in sorted(t.eligible(instance.m)):
                slots.append((j, s))
        adjacency[t.tid] = slots
    matching = hopcroft_karp(adjacency)
    if len(matching) < instance.n:
        return None
    return {tid: (pair[0], pair[1]) for tid, pair in matching.items()}


def optimal_unit_fmax(instance: Instance) -> int:
    """Optimal (offline) maximum flow time of a unit, integral instance."""
    fmax, _ = optimal_unit_schedule(instance)
    return fmax


def optimal_unit_schedule(instance: Instance) -> tuple[int, Schedule]:
    """Optimal offline max-flow value *and* a witnessing schedule.

    Binary-searches :math:`F` between 1 and the value achieved by an
    arbitrary feasible online schedule (EFT), which is a valid upper
    bound.
    """
    _check_unit_integral(instance)
    if instance.n == 0:
        return 0, Schedule(instance, {})
    from ..core.eft import eft_schedule

    hi = int(round(eft_schedule(instance, tiebreak="min").max_flow))
    lo = 1
    best: dict[int, tuple[int, int]] | None = None
    best_f = hi
    while lo <= hi:
        mid = (lo + hi) // 2
        placement = unit_feasible_with_flow(instance, mid)
        if placement is not None:
            best, best_f = placement, mid
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:  # the EFT bound itself must be feasible
        best = unit_feasible_with_flow(instance, best_f)
        assert best is not None, "EFT upper bound not feasible — internal error"
    sched = Schedule(instance, {tid: (mach, float(start)) for tid, (mach, start) in best.items()})
    sched.validate()
    return best_f, sched
