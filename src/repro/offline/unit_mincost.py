"""Optimal *sum-objective* schedules for unit tasks (assignment-based).

Section 6 of the paper leans on Brucker et al.: with unit tasks,
release times and processing sets, even the weighted sum objective
``P | r_i, p_i = 1, M_i | Σ w_i T_i`` is polynomial, via assignment.
This module implements the assignment machinery for the flow-time
family of objectives:

* :func:`optimal_unit_sum_flow` — minimise the *total* (equivalently
  mean) flow time: assign tasks to (machine, slot) pairs with cost
  ``slot + 1 − r_i`` using the Hungarian algorithm
  (``scipy.optimize.linear_sum_assignment``);
* :func:`optimal_unit_weighted_flow` — the weighted generalisation
  (cost ``w_i (slot + 1 − r_i)``).

These complement the max-flow optimum of
:mod:`repro.offline.unit_opt` (bottleneck assignment via binary search
+ matching): together the exact solvers cover both the paper's
objective and the mean-latency metric practitioners also track.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..core.schedule import Schedule
from ..core.task import Instance

__all__ = ["optimal_unit_sum_flow", "optimal_unit_weighted_flow"]

_BIG = 1e12


def _assignment_schedule(
    instance: Instance, weights: np.ndarray
) -> tuple[float, Schedule]:
    for t in instance:
        if t.proc != 1:
            raise ValueError(f"task {t.tid} has p={t.proc}; unit solver requires p_i = 1")
        if float(t.release) != int(t.release):
            raise ValueError(f"task {t.tid} has non-integral release {t.release}")
    n = instance.n
    if n == 0:
        return 0.0, Schedule(instance, {})
    m = instance.m
    releases = [int(t.release) for t in instance]
    lo = min(releases)
    hi = max(releases) + n  # any optimal schedule fits in this window
    slots = [(j, s) for s in range(lo, hi) for j in range(1, m + 1)]
    cost = np.full((n, len(slots)), _BIG)
    for i, t in enumerate(instance):
        eligible = t.eligible(m)
        for c, (j, s) in enumerate(slots):
            if j in eligible and s >= releases[i]:
                cost[i, c] = weights[i] * (s + 1 - releases[i])
    rows, cols = linear_sum_assignment(cost)
    total = float(cost[rows, cols].sum())
    if total >= _BIG:  # pragma: no cover - window always suffices
        raise RuntimeError("assignment failed to place every task")
    placements = {}
    task_list = list(instance.tasks)
    for i, c in zip(rows, cols):
        j, s = slots[c]
        placements[task_list[i].tid] = (j, float(s))
    sched = Schedule(instance, placements)
    sched.validate()
    return total, sched


def optimal_unit_sum_flow(instance: Instance) -> tuple[float, Schedule]:
    """Minimum total flow time (and a witnessing schedule) for a unit,
    integral-release instance.  Mean flow = total / n."""
    return _assignment_schedule(instance, np.ones(instance.n))


def optimal_unit_weighted_flow(instance: Instance, weights) -> tuple[float, Schedule]:
    """Minimum ``Σ w_i F_i`` for a unit, integral-release instance."""
    w = np.asarray(weights, dtype=float)
    if w.shape != (instance.n,):
        raise ValueError(f"need {instance.n} weights, got shape {w.shape}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    return _assignment_schedule(instance, w)
