"""Offline optima and lower bounds for measuring competitive ratios."""

from .bounds import lb_pmax, lb_restricted_volume, lb_volume, opt_lower_bound
from .exact import ExactSolver, optimal_fmax, optimal_schedule
from .fptas import fptas_fmax
from .matching import hopcroft_karp, maximum_matching_size
from .preemptive import optimal_preemptive_fmax, preemptive_feasible
from .preemptive_schedule import (
    Piece,
    optimal_preemptive_pieces,
    preemptive_schedule_pieces,
    validate_pieces,
)
from .unit_mincost import optimal_unit_sum_flow, optimal_unit_weighted_flow
from .unit_opt import optimal_unit_fmax, optimal_unit_schedule, unit_feasible_with_flow

__all__ = [
    "ExactSolver",
    "optimal_preemptive_fmax",
    "preemptive_feasible",
    "Piece",
    "optimal_preemptive_pieces",
    "preemptive_schedule_pieces",
    "validate_pieces",
    "fptas_fmax",
    "hopcroft_karp",
    "lb_pmax",
    "lb_restricted_volume",
    "lb_volume",
    "maximum_matching_size",
    "opt_lower_bound",
    "optimal_fmax",
    "optimal_schedule",
    "optimal_unit_fmax",
    "optimal_unit_schedule",
    "optimal_unit_sum_flow",
    "optimal_unit_weighted_flow",
    "unit_feasible_with_flow",
]
