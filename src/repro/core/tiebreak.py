"""Tie-break policies used by EFT and FIFO schedulers.

Both FIFO (Algorithm 1) and EFT (Algorithm 2) delegate the choice among
tied machines to a ``BreakTie`` policy.  Proposition 1's equivalence
requires FIFO and EFT to share the same policy, so policies are plain
objects usable by either scheduler.

A policy receives the set of candidate machine indices (the tie set
:math:`U_i` of Equation (1)/(2)) plus a read-only view of machine
completion times, and returns the selected machine.  The paper's
concrete policies:

* :class:`MinIndex` — EFT-Min (Algorithm 3): smallest machine index.
* :class:`MaxIndex` — EFT-Max (Section 7.4): largest machine index.
* :class:`RandomChoice` — EFT-Rand (Algorithm 4): uniform among the tie
  set (every candidate has positive probability, the condition of
  Theorem 9).
"""

from __future__ import annotations

from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

__all__ = [
    "TieBreak",
    "MinIndex",
    "MaxIndex",
    "RandomChoice",
    "LeastLoadedFirst",
    "FunctionTieBreak",
    "get_tiebreak",
]


class TieBreak(Protocol):
    """Callable protocol: choose one machine among tied candidates."""

    def __call__(self, candidates: Sequence[int], completions: Mapping[int, float]) -> int:
        """Return the chosen machine index from ``candidates``.

        ``completions`` maps machine index to its current completion
        time :math:`C_{j,i-1}` (time the machine finishes its already
        assigned work).
        """
        ...


class MinIndex:
    """Pick the candidate with the smallest index (EFT-Min)."""

    name = "min"

    def __call__(self, candidates: Sequence[int], completions: Mapping[int, float]) -> int:
        if not candidates:
            raise ValueError("empty tie set")
        return min(candidates)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "MinIndex()"


class MaxIndex:
    """Pick the candidate with the largest index (EFT-Max)."""

    name = "max"

    def __call__(self, candidates: Sequence[int], completions: Mapping[int, float]) -> int:
        if not candidates:
            raise ValueError("empty tie set")
        return max(candidates)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "MaxIndex()"


class RandomChoice:
    """Pick uniformly at random among the candidates (EFT-Rand).

    Satisfies the Theorem 9 condition: every candidate is selected with
    positive probability (here ``1/|U_i|``), so no machine is ever
    systematically discarded during a tie.
    """

    name = "rand"

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)

    def __call__(self, candidates: Sequence[int], completions: Mapping[int, float]) -> int:
        if not candidates:
            raise ValueError("empty tie set")
        ordered = sorted(candidates)
        return ordered[int(self.rng.integers(len(ordered)))]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "RandomChoice()"


class LeastLoadedFirst:
    """Pick the candidate whose completion time is smallest, breaking
    residual ties by index.

    Within an EFT tie set all completion times are ``<= t_min`` but not
    necessarily equal (a machine may have been idle for a while); this
    policy prefers the longest-idle machine.  Not studied by the paper;
    provided as an ablation policy.
    """

    name = "least_loaded"

    def __call__(self, candidates: Sequence[int], completions: Mapping[int, float]) -> int:
        if not candidates:
            raise ValueError("empty tie set")
        return min(candidates, key=lambda j: (completions.get(j, 0.0), j))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "LeastLoadedFirst()"


class FunctionTieBreak:
    """Adapter wrapping an arbitrary function as a tie-break policy."""

    def __init__(self, fn: Callable[[Sequence[int], Mapping[int, float]], int], name: str = "custom") -> None:
        self.fn = fn
        self.name = name

    def __call__(self, candidates: Sequence[int], completions: Mapping[int, float]) -> int:
        choice = self.fn(candidates, completions)
        if choice not in set(candidates):
            raise ValueError(f"tie-break returned {choice}, not a candidate in {sorted(candidates)}")
        return choice

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FunctionTieBreak({self.name!r})"


_REGISTRY: dict[str, Callable[..., TieBreak]] = {
    "min": MinIndex,
    "max": MaxIndex,
    "rand": RandomChoice,
    "least_loaded": LeastLoadedFirst,
}


def get_tiebreak(name: str | TieBreak, rng: np.random.Generator | int | None = None) -> TieBreak:
    """Resolve a tie-break policy by name (``min``/``max``/``rand``/
    ``least_loaded``) or pass through an existing policy object."""
    if not isinstance(name, str):
        return name
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown tie-break {name!r}; known: {sorted(_REGISTRY)}") from None
    if factory is RandomChoice:
        return RandomChoice(rng)
    return factory()
