"""Core scheduling model: tasks, schedules, EFT/FIFO and baselines."""

from .arrayeft import (
    array_eft_fmax,
    array_eft_schedule,
    clear_set_cache,
    fast_eft_fmax,
    fast_eft_schedule,
    set_cache_info,
)
from .baselines import LeastWorkAssign, RandomAssign, RoundRobinAssign
from .composition import ComposedDisjointScheduler
from .dispatch import DispatchRecord, ImmediateDispatchScheduler, run_online
from .eft import EFT, eft_schedule
from .fifo import FIFO, RestrictedFIFO, fifo_schedule
from .gantt import render_gantt, render_profile
from .metrics import ScheduleStats, flow_percentiles, summarize, waiting_profile
from .nonclairvoyant import C3Like, LeastOutstanding
from .schedule import Assignment, Schedule, ScheduleError
from .task import Instance, Task
from .vecengine import VecRun, VecSchedule, VecUnsupported
from .tiebreak import (
    FunctionTieBreak,
    LeastLoadedFirst,
    MaxIndex,
    MinIndex,
    RandomChoice,
    TieBreak,
    get_tiebreak,
)

__all__ = [
    "Assignment",
    "C3Like",
    "ComposedDisjointScheduler",
    "DispatchRecord",
    "array_eft_fmax",
    "array_eft_schedule",
    "EFT",
    "FIFO",
    "FunctionTieBreak",
    "ImmediateDispatchScheduler",
    "Instance",
    "LeastLoadedFirst",
    "LeastOutstanding",
    "LeastWorkAssign",
    "MaxIndex",
    "MinIndex",
    "RandomAssign",
    "RandomChoice",
    "RestrictedFIFO",
    "RoundRobinAssign",
    "Schedule",
    "ScheduleError",
    "ScheduleStats",
    "Task",
    "TieBreak",
    "VecRun",
    "VecSchedule",
    "VecUnsupported",
    "clear_set_cache",
    "eft_schedule",
    "fast_eft_fmax",
    "fast_eft_schedule",
    "fifo_schedule",
    "flow_percentiles",
    "get_tiebreak",
    "render_gantt",
    "render_profile",
    "run_online",
    "set_cache_info",
    "summarize",
    "waiting_profile",
]
