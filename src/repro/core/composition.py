"""Theorem 6's composition: per-group scheduling on disjoint sets.

Theorem 6 is constructive: given any :math:`f(m)`-competitive
algorithm :math:`N` for the unrestricted problem, running an
independent copy of :math:`N` on each group of a *disjoint* processing
set family yields a :math:`\\max_i f(|\\mathcal{M}_i|)`-competitive
algorithm for the restricted problem — Corollary 1 instantiates it
with EFT.  :class:`ComposedDisjointScheduler` is that construction:

* groups are discovered online from the arriving processing sets
  (distinct sets must be equal or disjoint — enforced);
* each group gets its own inner scheduler built by ``inner_factory``
  over *local* machine indices ``1..|group|``; decisions are mapped
  back to global indices.

With EFT as the inner algorithm the composition's schedule coincides
with plain (restriction-aware) EFT — property-tested — because EFT's
decisions only depend on the machines inside the task's own set.  The
class is mainly valuable for composing algorithms that have *no*
restriction-aware variant.
"""

from __future__ import annotations

from typing import Callable

from .dispatch import ImmediateDispatchScheduler
from .task import Task

__all__ = ["ComposedDisjointScheduler"]


class ComposedDisjointScheduler(ImmediateDispatchScheduler):
    """Run an independent inner scheduler per disjoint machine group.

    Parameters
    ----------
    m:
        Total machine count.
    inner_factory:
        Builds the per-group scheduler from the group size, e.g.
        ``lambda size: EFT(size, tiebreak="min")``.
    """

    def __init__(
        self, m: int, inner_factory: Callable[[int], ImmediateDispatchScheduler]
    ) -> None:
        super().__init__(m)
        self.inner_factory = inner_factory
        self._group_of: dict[frozenset[int], ImmediateDispatchScheduler] = {}
        self._machine_group: dict[int, frozenset[int]] = {}
        self._local_to_global: dict[frozenset[int], list[int]] = {}
        self.name = "Composed(Thm 6)"

    def _group_for(self, machines: frozenset[int]) -> ImmediateDispatchScheduler:
        inner = self._group_of.get(machines)
        if inner is not None:
            return inner
        # new group: must be disjoint from every known one
        for j in machines:
            seen = self._machine_group.get(j)
            if seen is not None and seen != machines:
                raise ValueError(
                    f"processing sets are not disjoint: {sorted(machines)} "
                    f"overlaps {sorted(seen)} on machine {j}"
                )
        inner = self.inner_factory(len(machines))
        self._group_of[machines] = inner
        self._local_to_global[machines] = sorted(machines)
        for j in machines:
            self._machine_group[j] = machines
        return inner

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        machines = task.eligible(self.m)
        inner = self._group_for(machines)
        mapping = self._local_to_global[machines]
        local_task = Task(
            tid=task.tid,
            release=task.release,
            proc=task.proc,
            machines=None,  # unrestricted within the group
        )
        record = inner.submit(local_task)
        global_machine = mapping[record.machine - 1]
        tie_set = frozenset(mapping[j - 1] for j in record.tie_set)
        return global_machine, tie_set

    @property
    def n_groups(self) -> int:
        """Number of groups discovered so far."""
        return len(self._group_of)
