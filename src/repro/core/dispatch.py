"""Immediate-dispatch scheduling framework.

An online algorithm has the *Immediate Dispatch* property (Section 3)
if every task is allocated to a machine as soon as it is released:
:math:`r_i \\le \\rho_i < r_i + \\epsilon`.  Such schedulers are push
based — no central queue — which is what scalable key-value stores
need.

:class:`ImmediateDispatchScheduler` is the common driver: it keeps the
per-machine completion times :math:`C_{j,i}` and the running schedule,
and subclasses implement :meth:`choose` (which machine gets the task).
The :meth:`submit` method enforces release-order submission, making the
class usable both for offline replay (:meth:`run`) and by adaptive
adversaries that interleave observation and submission (Theorems 3–5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .schedule import Schedule
from .task import Instance, Task

__all__ = ["DispatchRecord", "ImmediateDispatchScheduler", "run_online"]


@dataclass(frozen=True, slots=True)
class DispatchRecord:
    """One dispatch decision, kept for analysis and tests.

    ``tie_set`` is the candidate set the scheduler reported for the
    decision (for EFT this is :math:`U'_i` of Equation (2); baselines
    report the full eligible set).
    """

    task: Task
    machine: int
    start: float
    tie_set: frozenset[int] = field(default_factory=frozenset)


class ImmediateDispatchScheduler:
    """Base class for push (immediate dispatch) schedulers.

    Subclasses override :meth:`choose`, receiving the task and
    returning ``(machine, tie_set)``.  The driver computes the start
    time as :math:`\\sigma_i = \\max(r_i, C_{u,i-1})` and updates
    machine state.
    """

    name = "immediate-dispatch"

    #: Whether the policy expects the engine to preempt running tasks.
    #: Preemptive policies must also provide ``preempt_key(task,
    #: remaining, now)`` — an orderable priority the engine minimises
    #: over a machine's queued-plus-running tasks (see
    #: :mod:`repro.schedulers.contract`).
    preemptive = False
    #: Whether ``choose`` may read ``task.proc``.  Non-clairvoyant
    #: policies decide from observable state only; they may still use
    #: the realised processing time in :meth:`exec_time` (the *system*
    #: experiences the service time either way).
    clairvoyant = True

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError("need at least one machine")
        self.m = m
        #: completion time :math:`C_{j,i}` of each machine's assigned work
        self.completions: dict[int, float] = {j: 0.0 for j in range(1, m + 1)}
        #: per-machine count of assigned tasks (used by adversaries)
        self.task_counts: dict[int, int] = {j: 0 for j in range(1, m + 1)}
        self.history: list[DispatchRecord] = []
        self._placements_dict: dict[int, tuple[int, float]] = {}
        #: columnar placements (tids, machines, starts) awaiting
        #: materialisation — set by the array backend, which syncs books
        #: in bulk and must not pay for a dict nobody may ever read.
        self._placements_lazy: tuple | None = None
        self._tasks: list[Task] = []
        self._last_release = 0.0
        #: realised service times that differ from ``task.proc`` —
        #: sparse so the plain identical-machines path (EFT and the
        #: baselines, where ``exec_time == proc``) pays nothing and
        #: stays byte-identical to the pre-zoo books.
        self._service: dict[int, float] = {}

    @property
    def _placements(self) -> dict[int, tuple[int, float]]:
        lazy = self._placements_lazy
        if lazy is not None:
            self._placements_lazy = None
            tids, machines, starts = lazy
            self._placements_dict = dict(zip(tids, zip(machines, starts)))
        return self._placements_dict

    # -- to be provided by subclasses -------------------------------------
    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        """Pick the machine for ``task``; return ``(machine, tie_set)``."""
        raise NotImplementedError

    def exec_time(self, task: Task, machine: int) -> float:
        """Realised service time of ``task`` on ``machine``.

        Identical machines (the paper's model) return ``task.proc``.
        Related machines divide work by the machine's speed; setup-time
        models add a warmup penalty on cold machines.  Called exactly
        once per dispatch, *after* :meth:`choose` — implementations may
        update their own warm/feedback state here.
        """
        return task.proc

    def service_of(self, tid: int, default: float) -> float:
        """The recorded service time of a dispatched task (``default``
        when the task ran at its nominal ``proc``)."""
        return self._service.get(tid, default)

    # -- driver ------------------------------------------------------------
    def submit(self, task: Task) -> DispatchRecord:
        """Dispatch one released task (tasks must arrive in release order)."""
        if task.release < self._last_release:
            raise ValueError(
                f"task {task.tid} released at {task.release} submitted after a task "
                f"released at {self._last_release}; online submission must follow release order"
            )
        self._last_release = task.release
        eligible = task.eligible(self.m)
        if not eligible:
            raise ValueError(f"task {task.tid} has an empty processing set")
        machine, tie_set = self.choose(task)
        if machine not in eligible:
            raise ValueError(
                f"{type(self).__name__} picked machine {machine} outside the "
                f"processing set {sorted(eligible)} of task {task.tid}"
            )
        start = max(task.release, self.completions[machine])
        dur = self.exec_time(task, machine)
        if dur != task.proc:
            self._service[task.tid] = dur
        self.completions[machine] = start + dur
        self.task_counts[machine] += 1
        record = DispatchRecord(task=task, machine=machine, start=start, tie_set=tie_set)
        self.history.append(record)
        self._placements[task.tid] = (machine, start)
        self._tasks.append(task)
        return record

    def submit_batch(self, tasks: Sequence[Task]) -> list[DispatchRecord]:
        """Dispatch several tasks released (nearly) simultaneously, in order."""
        return [self.submit(t) for t in tasks]

    # -- state inspection ---------------------------------------------------
    def waiting_work(self, t: float) -> dict[int, float]:
        """Remaining allocated work per machine at time ``t``:
        :math:`w_t(j) = \\max(0, C_{j} - t)` (the *schedule profile*
        of Theorem 8, up to the in-service task convention)."""
        return {j: max(0.0, c - t) for j, c in self.completions.items()}

    def _realised_tasks(self) -> tuple[Task, ...]:
        """Submitted tasks with ``proc`` replaced by the realised
        service time where the two differ (related machines, setup
        models); the common identical-machines path returns the tasks
        untouched."""
        if not self._service:
            return tuple(self._tasks)
        svc = self._service
        return tuple(
            replace(t, proc=svc[t.tid]) if t.tid in svc else t for t in self._tasks
        )

    def schedule(self) -> Schedule:
        """Materialise the schedule of everything submitted so far.

        Service-aware policies yield a *derived* instance whose
        processing times are the realised execution times, so standard
        metrics and :meth:`~repro.core.schedule.Schedule.validate`
        apply unchanged.
        """
        inst = Instance(m=self.m, tasks=self._realised_tasks())
        return Schedule(inst, self._placements)

    @property
    def n_dispatched(self) -> int:
        # Counted off the task list, not ``history``: the array backend
        # syncs dispatches without materialising DispatchRecords (the
        # per-decision objects are the cost it exists to avoid).
        return len(self._tasks)

    def run(self, instance: Instance) -> Schedule:
        """Replay a full instance in release order and return the schedule."""
        if instance.m != self.m:
            raise ValueError(f"instance has m={instance.m}, scheduler has m={self.m}")
        for task in instance:
            self.submit(task)
        if self._service:
            return self.schedule()
        return Schedule(instance, self._placements)


def run_online(instance: Instance, scheduler: ImmediateDispatchScheduler) -> Schedule:
    """Convenience wrapper: run ``scheduler`` over ``instance``."""
    return scheduler.run(instance)
