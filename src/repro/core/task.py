"""Task and instance model for ``P | online-r_i, M_i | Fmax``.

The paper schedules a set :math:`T` of :math:`n` tasks
:math:`T_1, \\dots, T_n` on :math:`m` homogeneous machines
:math:`M_1, \\dots, M_m`.  Each task :math:`T_i` has a release time
:math:`r_i \\ge 0`, a processing time :math:`p_i > 0` and a *processing
set* :math:`\\mathcal{M}_i \\subseteq M` of machines allowed to run it
(Section 3 of the paper).  Machines are indexed **1-based** throughout,
matching the paper's notation; ``machines=None`` means "no restriction"
(all machines eligible).

Tasks are value objects; an :class:`Instance` bundles a task list with a
machine count and enforces the paper's numbering convention
``i < j  =>  r_i <= r_j`` (tasks sorted by release time).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

__all__ = ["Task", "Instance"]


@dataclass(frozen=True, slots=True)
class Task:
    """A single task (request) of the scheduling problem.

    Parameters
    ----------
    tid:
        Stable identifier of the task (unique within an instance).
    release:
        Release time :math:`r_i \\ge 0`; the scheduler learns nothing
        about the task before this time (online model).
    proc:
        Processing time :math:`p_i > 0`.
    machines:
        Processing set :math:`\\mathcal{M}_i` as a frozenset of 1-based
        machine indices, or ``None`` for "every machine" (the
        unrestricted problem ``P | online-r_i | Fmax``).
    key:
        Optional key-value-store key this task requests; carried as
        metadata only (tasks sharing a key share a processing set in a
        real store, cf. Section 3).
    """

    tid: int
    release: float
    proc: float
    machines: frozenset[int] | None = None
    key: int | None = None

    def __post_init__(self) -> None:
        if self.release < 0:
            raise ValueError(f"task {self.tid}: release must be >= 0, got {self.release}")
        if self.proc <= 0:
            raise ValueError(f"task {self.tid}: processing time must be > 0, got {self.proc}")
        if self.machines is not None:
            if not isinstance(self.machines, frozenset):
                object.__setattr__(self, "machines", frozenset(self.machines))
            if not self.machines:
                raise ValueError(f"task {self.tid}: processing set may not be empty")
            if any((not isinstance(j, int)) or j < 1 for j in self.machines):
                raise ValueError(f"task {self.tid}: machine indices must be ints >= 1")

    def eligible(self, m: int) -> frozenset[int]:
        """Concrete processing set on an ``m``-machine cluster."""
        if self.machines is None:
            return frozenset(range(1, m + 1))
        return self.machines

    def is_eligible(self, machine: int, m: int | None = None) -> bool:
        """Whether ``machine`` may process this task."""
        if self.machines is None:
            return m is None or 1 <= machine <= m
        return machine in self.machines

    def restricted_to(self, machines: Iterable[int]) -> "Task":
        """Copy of the task with a replaced processing set."""
        return replace(self, machines=frozenset(machines))

    @property
    def is_unit(self) -> bool:
        """Whether the task has unit processing time (``p_i = 1``)."""
        return self.proc == 1


@dataclass(frozen=True, slots=True)
class Instance:
    """An instance of ``P | online-r_i, M_i | Fmax``.

    Tasks are stored sorted by ``(release, tid)``, matching the paper's
    convention that tasks are numbered by non-decreasing release time.
    Ties between tasks released at the same instant are served in
    ``tid`` order (the adversaries of Section 6 rely on a deterministic
    within-batch order).
    """

    m: int
    tasks: tuple[Task, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"need at least one machine, got m={self.m}")
        tasks = tuple(sorted(self.tasks, key=lambda t: (t.release, t.tid)))
        object.__setattr__(self, "tasks", tasks)
        seen: set[int] = set()
        for t in tasks:
            if t.tid in seen:
                raise ValueError(f"duplicate task id {t.tid}")
            seen.add(t.tid)
            if t.machines is not None and max(t.machines) > self.m:
                raise ValueError(
                    f"task {t.tid}: processing set {sorted(t.machines)} exceeds m={self.m}"
                )

    # -- basic container protocol ------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __getitem__(self, i: int) -> Task:
        return self.tasks[i]

    # -- derived quantities -------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    @property
    def machines(self) -> range:
        """1-based machine indices ``1..m``."""
        return range(1, self.m + 1)

    @property
    def total_work(self) -> float:
        """Sum of processing times (offline makespan lower bound / m)."""
        return sum(t.proc for t in self.tasks)

    @property
    def pmax(self) -> float:
        """Maximum processing time (lower bound (3) on OPT's Fmax)."""
        return max((t.proc for t in self.tasks), default=0.0)

    @property
    def all_unit(self) -> bool:
        """Whether every task is a unit task (``p_i = 1``)."""
        return all(t.is_unit for t in self.tasks)

    @property
    def is_restricted(self) -> bool:
        """Whether any task has a proper processing-set restriction."""
        full = frozenset(self.machines)
        return any(t.machines is not None and t.machines != full for t in self.tasks)

    def processing_sets(self) -> list[frozenset[int]]:
        """Concrete processing set of every task, in task order."""
        return [t.eligible(self.m) for t in self.tasks]

    # -- construction helpers ------------------------------------------
    @staticmethod
    def build(
        m: int,
        releases: Sequence[float],
        procs: Sequence[float] | float = 1.0,
        machine_sets: Sequence[Iterable[int] | None] | None = None,
        keys: Sequence[int | None] | None = None,
    ) -> "Instance":
        """Build an instance from parallel arrays.

        ``procs`` may be a scalar (all tasks share that processing
        time, e.g. ``1.0`` for unit tasks).  ``machine_sets`` entries of
        ``None`` mean unrestricted.
        """
        n = len(releases)
        if not isinstance(procs, (int, float)):
            if len(procs) != n:
                raise ValueError("procs length must match releases")
            plist = [float(p) for p in procs]
        else:
            plist = [float(procs)] * n
        if machine_sets is not None and len(machine_sets) != n:
            raise ValueError("machine_sets length must match releases")
        if keys is not None and len(keys) != n:
            raise ValueError("keys length must match releases")
        tasks = []
        for i in range(n):
            ms = None
            if machine_sets is not None and machine_sets[i] is not None:
                ms = frozenset(machine_sets[i])
            tasks.append(
                Task(
                    tid=i,
                    release=float(releases[i]),
                    proc=plist[i],
                    machines=ms,
                    key=None if keys is None else keys[i],
                )
            )
        return Instance(m=m, tasks=tuple(tasks))

    def with_machine_sets(self, machine_sets: Sequence[Iterable[int] | None]) -> "Instance":
        """Copy of the instance with task processing sets replaced."""
        if len(machine_sets) != self.n:
            raise ValueError("machine_sets length must match task count")
        tasks = tuple(
            replace(t, machines=None if ms is None else frozenset(ms))
            for t, ms in zip(self.tasks, machine_sets)
        )
        return Instance(m=self.m, tasks=tasks)

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON string (round-trips via :meth:`from_json`)."""
        payload = {
            "m": self.m,
            "tasks": [
                {
                    "tid": t.tid,
                    "release": t.release,
                    "proc": t.proc,
                    "machines": None if t.machines is None else sorted(t.machines),
                    "key": t.key,
                }
                for t in self.tasks
            ],
        }
        return json.dumps(payload)

    @staticmethod
    def from_json(payload: str) -> "Instance":
        """Inverse of :meth:`to_json`."""
        data = json.loads(payload)
        tasks = tuple(
            Task(
                tid=d["tid"],
                release=d["release"],
                proc=d["proc"],
                machines=None if d["machines"] is None else frozenset(d["machines"]),
                key=d.get("key"),
            )
            for d in data["tasks"]
        )
        return Instance(m=data["m"], tasks=tasks)
