"""Non-clairvoyant dispatch policies (replica selection).

EFT is clairvoyant: it needs :math:`p_i` at release to maintain exact
machine completion times (Section 4).  Real key-value stores do not
know request service times in advance; the systems the paper cites as
context — C3 (Suresh et al., NSDI'15) and Héron (Jaiman et al.,
SRDS'18) — rank replicas using *observable* signals instead.  This
module implements the two classic observable policies so the
simulation substrate can compare them against the clairvoyant EFT
upper baseline:

* :class:`LeastOutstanding` — pick the eligible machine with the
  fewest outstanding (dispatched, not yet finished) requests; ties by
  index.  The standard "least outstanding requests" load-balancer
  rule.
* :class:`C3Like` — a simplified C3 scoring rule: rank replicas by
  :math:`(1 + q_j)^3 \\cdot \\bar{s}_j`, where :math:`q_j` is the
  outstanding count and :math:`\\bar{s}_j` an exponentially weighted
  moving average of observed service times on :math:`M_j` (the cubing
  penalises queue build-up, C3's key idea).  Feedback (service time
  observations) arrives on task completion, which these policies
  track from the passage of simulated time.

Both are immediate-dispatch schedulers over the same driver as EFT, so
every metric, test harness and experiment applies unchanged.  They
observe completions *as of the current release time* — exactly the
information a coordinator has when the request arrives.
"""

from __future__ import annotations

from .dispatch import ImmediateDispatchScheduler
from .task import Task

__all__ = ["LeastOutstanding", "C3Like"]


class _OutstandingTracker(ImmediateDispatchScheduler):
    """Shared machinery: per-machine outstanding counts derived from
    dispatch history and the current time (a dispatched task is
    outstanding while ``now < its completion``)."""

    clairvoyant = False

    def __init__(self, m: int) -> None:
        super().__init__(m)
        #: (completion_time, machine) of every dispatched task
        self._inflight: list[tuple[float, int]] = []

    def outstanding(self, now: float) -> dict[int, int]:
        """Outstanding request count per machine at time ``now``."""
        counts = {j: 0 for j in range(1, self.m + 1)}
        still = []
        for completion, machine in self._inflight:
            if completion > now:
                counts[machine] += 1
                still.append((completion, machine))
        self._inflight = still  # drop finished entries
        return counts

    def _record_dispatch(self, machine: int, completion: float) -> None:
        self._inflight.append((completion, machine))


class LeastOutstanding(_OutstandingTracker):
    """Least-outstanding-requests replica selection."""

    def __init__(self, m: int) -> None:
        super().__init__(m)
        self.name = "LOR"

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        eligible = sorted(task.eligible(self.m))
        counts = self.outstanding(task.release)
        machine = min(eligible, key=lambda j: (counts[j], j))
        start = max(task.release, self.completions[machine])
        self._record_dispatch(machine, start + task.proc)
        return machine, frozenset(eligible)


class C3Like(_OutstandingTracker):
    """Simplified C3 replica ranking.

    Score of machine :math:`M_j` for an arriving request:
    :math:`(1 + q_j)^3 \\cdot \\bar{s}_j` with :math:`\\bar{s}_j` an
    EWMA (factor ``alpha``) of service times of requests *completed*
    on :math:`M_j` by the arrival instant, initialised to 1.
    """

    def __init__(self, m: int, alpha: float = 0.3) -> None:
        super().__init__(m)
        if not (0 < alpha <= 1):
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.ewma: dict[int, float] = {j: 1.0 for j in range(1, m + 1)}
        self.name = "C3"
        #: (completion_time, machine, service_time) pending feedback
        self._pending_feedback: list[tuple[float, int, float]] = []

    def _absorb_feedback(self, now: float) -> None:
        still = []
        # Feedback must be absorbed in completion order for the EWMA to
        # be deterministic.
        for completion, machine, service in sorted(self._pending_feedback):
            if completion <= now:
                self.ewma[machine] = (
                    (1 - self.alpha) * self.ewma[machine] + self.alpha * service
                )
            else:
                still.append((completion, machine, service))
        self._pending_feedback = still

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        now = task.release
        self._absorb_feedback(now)
        eligible = sorted(task.eligible(self.m))
        counts = self.outstanding(now)
        machine = min(
            eligible, key=lambda j: ((1 + counts[j]) ** 3 * self.ewma[j], j)
        )
        start = max(now, self.completions[machine])
        completion = start + task.proc
        self._record_dispatch(machine, completion)
        self._pending_feedback.append((completion, machine, task.proc))
        return machine, frozenset(eligible)
