"""EFT — Earliest Finish Time scheduling (Algorithm 2 of the paper).

EFT pushes each released task onto the machine that would finish it the
earliest.  Because all machines are identical, "finishes earliest"
reduces to "is available earliest": the candidate (tie) set for task
:math:`T_i` restricted to its processing set :math:`\\mathcal{M}_i` is

.. math::

    U'_i = \\{ M_j \\in \\mathcal{M}_i \\;:\\; C_{j,i-1} \\le t'_{min,i} \\},
    \\qquad
    t'_{min,i} = \\max\\bigl(r_i, \\min_{M_j \\in \\mathcal{M}_i} C_{j,i-1}\\bigr)

(Equation (2); Equation (1) is the unrestricted special case).  A
tie-break policy then selects one machine of :math:`U'_i`.

The named variants of the paper:

* **EFT-Min** (Algorithm 3) — ``tiebreak="min"``: smallest index wins.
  Subject of the Theorem 8 lower bound.
* **EFT-Max** (Section 7.4) — ``tiebreak="max"``: largest index wins.
* **EFT-Rand** (Algorithm 4) — ``tiebreak="rand"``: uniform choice.
  Subject of the Theorem 9 lower bound.

EFT is clairvoyant (it needs :math:`p_i` on release to maintain the
machine completion times) and has the Immediate Dispatch property.
"""

from __future__ import annotations

import numpy as np

from .dispatch import ImmediateDispatchScheduler
from .schedule import Schedule
from .task import Instance, Task
from .tiebreak import TieBreak, get_tiebreak

__all__ = ["EFT", "eft_schedule"]


class EFT(ImmediateDispatchScheduler):
    """Earliest Finish Time immediate-dispatch scheduler.

    Parameters
    ----------
    m:
        Number of machines.
    tiebreak:
        Tie-break policy or its name (``"min"``, ``"max"``, ``"rand"``,
        ``"least_loaded"``).
    rng:
        Seed or generator for the random tie-break (ignored otherwise).
    """

    def __init__(
        self,
        m: int,
        tiebreak: str | TieBreak = "min",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(m)
        self.tiebreak = get_tiebreak(tiebreak, rng)
        self.name = f"EFT-{getattr(self.tiebreak, 'name', 'custom')}"

    def tie_set(self, task: Task) -> frozenset[int]:
        """The candidate set :math:`U'_i` of Equation (2) for ``task``
        given the current machine completion times."""
        eligible = task.eligible(self.m)
        earliest = min(self.completions[j] for j in eligible)
        t_min = max(task.release, earliest)
        return frozenset(j for j in eligible if self.completions[j] <= t_min)

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        ties = self.tie_set(task)
        machine = self.tiebreak(sorted(ties), self.completions)
        return machine, ties


def eft_schedule(
    instance: Instance,
    tiebreak: str | TieBreak = "min",
    rng: np.random.Generator | int | None = None,
) -> Schedule:
    """Schedule ``instance`` with EFT and return the schedule.

    One-shot convenience over :class:`EFT`.
    """
    return EFT(instance.m, tiebreak=tiebreak, rng=rng).run(instance)
