"""Array-backed EFT — the optimised hot path for large campaigns.

The reference :class:`~repro.core.eft.EFT` keeps dict state and builds
a :class:`DispatchRecord` per task; profiling the Figure 11 campaign
shows ~70% of the time in that bookkeeping.  This module re-implements
the *identical* decision rule (Equation (2) + Min/Max tie-break) with:

* a flat ``float64`` completion-time array instead of a dict;
* processing sets pre-lowered to sorted index arrays once per distinct
  set (key-value workloads have at most ``m`` distinct replica sets);
* no per-task record objects — only machine/start arrays.

Equality with the reference implementation is property-tested
(``tests/core/test_arrayeft.py``); the speedup is tracked by
``benchmarks/bench_scheduler_throughput.py``.  Only the deterministic
Min/Max tie-breaks are supported — random tie-breaking is inherently
per-task work that the reference implementation handles fine.
"""

from __future__ import annotations

import numpy as np

from .schedule import Schedule
from .task import Instance

__all__ = ["array_eft_schedule", "array_eft_fmax"]


def _run(instance: Instance, prefer_max: bool) -> tuple[np.ndarray, np.ndarray]:
    m = instance.m
    n = instance.n
    completions = np.zeros(m + 1)  # index 0 unused
    machines_out = np.empty(n, dtype=np.int64)
    starts_out = np.empty(n)
    # Lower each distinct processing set to a sorted numpy index array.
    set_cache: dict[frozenset[int] | None, np.ndarray] = {}
    full = np.arange(1, m + 1)
    for idx, task in enumerate(instance.tasks):
        key = task.machines
        eligible = set_cache.get(key)
        if eligible is None:
            eligible = full if key is None else np.array(sorted(key), dtype=np.int64)
            set_cache[key] = eligible
        comp = completions[eligible]
        earliest = comp.min()
        t_min = task.release if task.release > earliest else earliest
        tied = eligible[comp <= t_min]
        machine = int(tied[-1] if prefer_max else tied[0])
        start = task.release if task.release > completions[machine] else completions[machine]
        completions[machine] = start + task.proc
        machines_out[idx] = machine
        starts_out[idx] = start
    return machines_out, starts_out


def array_eft_schedule(instance: Instance, tiebreak: str = "min") -> Schedule:
    """EFT schedule via the array fast path (``min``/``max`` only).

    Produces placements identical to
    ``eft_schedule(instance, tiebreak)``.
    """
    if tiebreak not in ("min", "max"):
        raise ValueError("array EFT supports only 'min' and 'max' tie-breaks")
    machines, starts = _run(instance, prefer_max=(tiebreak == "max"))
    placements = {
        t.tid: (int(machines[i]), float(starts[i]))
        for i, t in enumerate(instance.tasks)
    }
    return Schedule(instance, placements)


def array_eft_fmax(instance: Instance, tiebreak: str = "min") -> float:
    """Just the objective — skips building the Schedule object
    entirely (the campaign inner loop only needs Fmax)."""
    if tiebreak not in ("min", "max"):
        raise ValueError("array EFT supports only 'min' and 'max' tie-breaks")
    machines, starts = _run(instance, prefer_max=(tiebreak == "max"))
    fmax = 0.0
    for i, t in enumerate(instance.tasks):
        flow = starts[i] + t.proc - t.release
        if flow > fmax:
            fmax = flow
    return float(fmax)
