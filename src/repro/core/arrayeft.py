"""Array-backed EFT — the optimised hot path for large campaigns.

The reference :class:`~repro.core.eft.EFT` keeps dict state and builds
a :class:`DispatchRecord` per task; profiling the Figure 11 campaign
shows ~70% of the time in that bookkeeping.  This module is the
schedule-level front door to :mod:`repro.core.vecengine`, which
re-implements the *identical* decision rule (Equation (2) + Min/Max
tie-break) with:

* a flat ``float64`` completion-time vector instead of a dict;
* processing sets pre-lowered to sorted index tuples once per distinct
  set, in a process-wide LRU (key-value workloads have at most ``m``
  distinct replica sets, so campaign loops re-solving the same replica
  families never re-lower them — :func:`set_cache_info` exposes the
  hit counters);
* no per-task record objects — placements stay in flat arrays and the
  :class:`~repro.core.vecengine.VecSchedule` materialises
  :class:`Assignment` objects only on demand.

Equality with the reference implementation is property-tested
(``tests/core/test_arrayeft.py``); the speedup is tracked by
``benchmarks/bench_scheduler_throughput.py`` → ``BENCH_throughput.json``.

Two calling conventions:

* :func:`array_eft_schedule` / :func:`array_eft_fmax` are *strict*:
  they raise ``ValueError`` for tie-breaks the array path cannot
  express (anything but the deterministic ``min``/``max``).  Use them
  when silently running a different code path would invalidate an
  ablation.
* :func:`fast_eft_schedule` / :func:`fast_eft_fmax` are *total*: they
  take the array path when the configuration allows and silently fall
  back to :func:`~repro.core.eft.eft_schedule` otherwise (random
  tie-breaks, custom policies).  Auto-selected call sites — the
  experiment drivers, ``Simulator(backend="auto")`` — go through
  these, so passing ``tiebreak="rand"`` through never crashes.
"""

from __future__ import annotations

import numpy as np

from .eft import eft_schedule
from .schedule import Schedule
from .task import Instance
from .tiebreak import MaxIndex, MinIndex, TieBreak
from .vecengine import VecRun, VecUnsupported, clear_set_cache, set_cache_info

__all__ = [
    "array_eft_fmax",
    "array_eft_schedule",
    "clear_set_cache",
    "fast_eft_fmax",
    "fast_eft_schedule",
    "set_cache_info",
]


def fast_tiebreak_name(tiebreak: str | TieBreak) -> str | None:
    """``"min"``/``"max"`` when the array fast path can express the
    tie-break, ``None`` otherwise (subclasses don't qualify — they may
    override the choice)."""
    if isinstance(tiebreak, str):
        return tiebreak if tiebreak in ("min", "max") else None
    if type(tiebreak) is MinIndex:
        return "min"
    if type(tiebreak) is MaxIndex:
        return "max"
    return None


def array_eft_schedule(instance: Instance, tiebreak: str = "min") -> Schedule:
    """EFT schedule via the array fast path (``min``/``max`` only,
    strict — raises ``ValueError`` otherwise).

    Produces placements identical to
    ``eft_schedule(instance, tiebreak)``; the returned schedule is a
    lazy :class:`~repro.core.vecengine.VecSchedule`.
    """
    if tiebreak not in ("min", "max"):
        raise ValueError("array EFT supports only 'min' and 'max' tie-breaks")
    return VecRun.from_instance(instance, tiebreak).schedule(instance)


def array_eft_fmax(instance: Instance, tiebreak: str = "min") -> float:
    """Just the objective — skips building the Schedule object
    entirely (the campaign inner loop only needs Fmax).  Strict, like
    :func:`array_eft_schedule`."""
    if tiebreak not in ("min", "max"):
        raise ValueError("array EFT supports only 'min' and 'max' tie-breaks")
    return VecRun.from_instance(instance, tiebreak).fmax()


def fast_eft_schedule(
    instance: Instance,
    tiebreak: str | TieBreak = "min",
    rng: np.random.Generator | int | None = None,
) -> Schedule:
    """EFT schedule on the fastest applicable path.

    Deterministic Min/Max tie-breaks run on the array engine;
    everything else (``"rand"``, ``"least_loaded"``, custom policies)
    silently falls back to the reference :func:`eft_schedule` — same
    signature, same result contract, no crash on pass-through
    tie-breaks.
    """
    name = fast_tiebreak_name(tiebreak)
    if name is not None:
        try:
            return VecRun.from_instance(instance, name).schedule(instance)
        except VecUnsupported:
            pass
    return eft_schedule(instance, tiebreak=tiebreak, rng=rng)


def fast_eft_fmax(
    instance: Instance,
    tiebreak: str | TieBreak = "min",
    rng: np.random.Generator | int | None = None,
) -> float:
    """The objective :math:`F_{max}` on the fastest applicable path
    (silent reference fallback, like :func:`fast_eft_schedule`)."""
    name = fast_tiebreak_name(tiebreak)
    if name is not None:
        try:
            return VecRun.from_instance(instance, name).fmax()
        except VecUnsupported:
            pass
    return eft_schedule(instance, tiebreak=tiebreak, rng=rng).max_flow
