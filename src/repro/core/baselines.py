"""Baseline immediate-dispatch schedulers.

The paper's experiments focus on EFT variants; these baselines provide
the comparison points a practitioner would reach for first, and are
used by the ablation benchmarks:

* :class:`RandomAssign` — uniform choice among eligible machines
  (oblivious to load; a Dynamo-style coordinator without load
  feedback).
* :class:`LeastWorkAssign` — pick the eligible machine with the least
  *total assigned work* so far (a load-balancing greedy that, unlike
  EFT, ignores idle time already elapsed).
* :class:`RoundRobinAssign` — rotate through machines, using the next
  eligible one (stateless per-task cost, no clairvoyance needed).

All of these are non-clairvoyant except :class:`LeastWorkAssign`
(which needs :math:`p_i` only to update its own counters after the
decision, i.e. it never uses :math:`p_i` to decide).
"""

from __future__ import annotations

import numpy as np

from .dispatch import ImmediateDispatchScheduler
from .task import Task

__all__ = ["RandomAssign", "LeastWorkAssign", "RoundRobinAssign"]


class RandomAssign(ImmediateDispatchScheduler):
    """Dispatch each task to a uniformly random eligible machine."""

    def __init__(self, m: int, rng: np.random.Generator | int | None = None) -> None:
        super().__init__(m)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.name = "Random"

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        eligible = sorted(task.eligible(self.m))
        machine = eligible[int(self.rng.integers(len(eligible)))]
        return machine, frozenset(eligible)


class LeastWorkAssign(ImmediateDispatchScheduler):
    """Dispatch to the eligible machine with the smallest total
    assigned work (ties by index)."""

    def __init__(self, m: int) -> None:
        super().__init__(m)
        self.assigned_work: dict[int, float] = {j: 0.0 for j in range(1, m + 1)}
        self.name = "LeastWork"

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        eligible = sorted(task.eligible(self.m))
        machine = min(eligible, key=lambda j: (self.assigned_work[j], j))
        self.assigned_work[machine] += task.proc
        return machine, frozenset(eligible)


class RoundRobinAssign(ImmediateDispatchScheduler):
    """Dispatch cyclically: after machine ``u``, prefer the next
    eligible machine with a larger index (wrapping around)."""

    def __init__(self, m: int) -> None:
        super().__init__(m)
        self._cursor = 0  # index of the last machine used, 0 = none yet
        self.name = "RoundRobin"

    def choose(self, task: Task) -> tuple[int, frozenset[int]]:
        eligible = sorted(task.eligible(self.m))
        after = [j for j in eligible if j > self._cursor]
        machine = after[0] if after else eligible[0]
        self._cursor = machine
        return machine, frozenset(eligible)
