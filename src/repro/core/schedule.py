"""Schedule container, validity checking and objective evaluation.

A schedule :math:`\\Pi` maps each task :math:`T_i` to a pair
:math:`(\\mu_i, \\sigma_i)` — the machine it runs on and its start time
(Section 3).  The completion time is :math:`C_i = \\sigma_i + p_i`, the
flow time :math:`F_i = C_i - r_i`, and the objective is
:math:`F_{max} = \\max_i F_i`.

:class:`Schedule` is immutable once built; :meth:`Schedule.validate`
checks the model's feasibility constraints (no machine runs two tasks
simultaneously, no preemption — implicit in the representation —,
start times respect release times, machines respect processing sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from .task import Instance, Task

__all__ = ["Assignment", "Schedule", "ScheduleError"]


class ScheduleError(ValueError):
    """Raised when a schedule violates a feasibility constraint."""


@dataclass(frozen=True, slots=True)
class Assignment:
    """Placement of one task: machine :math:`\\mu_i`, start
    :math:`\\sigma_i`, and (redundantly, for convenience) the task."""

    task: Task
    machine: int
    start: float

    @property
    def completion(self) -> float:
        """Completion time :math:`C_i = \\sigma_i + p_i`."""
        return self.start + self.task.proc

    @property
    def flow(self) -> float:
        """Flow time :math:`F_i = C_i - r_i` (a.k.a. response time)."""
        return self.completion - self.task.release

    @property
    def stretch(self) -> float:
        """Stretch :math:`F_i / p_i` (flow normalised by size)."""
        return self.flow / self.task.proc

    @property
    def wait(self) -> float:
        """Waiting time :math:`\\sigma_i - r_i`."""
        return self.start - self.task.release


class Schedule:
    """An assignment of every task of an :class:`Instance`.

    The constructor accepts a mapping ``tid -> (machine, start)``; use
    :meth:`add`-style construction via a plain dict and build once.
    """

    def __init__(self, instance: Instance, placements: Mapping[int, tuple[int, float]]) -> None:
        self.instance = instance
        missing = [t.tid for t in instance if t.tid not in placements]
        if missing:
            raise ScheduleError(f"tasks without placement: {missing[:10]}")
        extra = set(placements) - {t.tid for t in instance}
        if extra:
            raise ScheduleError(f"placements for unknown tasks: {sorted(extra)[:10]}")
        self._assignments: dict[int, Assignment] = {}
        for t in instance:
            machine, start = placements[t.tid]
            self._assignments[t.tid] = Assignment(task=t, machine=int(machine), start=float(start))

    # -- access ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self) -> Iterator[Assignment]:
        return iter(self._assignments.values())

    def __getitem__(self, tid: int) -> Assignment:
        return self._assignments[tid]

    @property
    def m(self) -> int:
        return self.instance.m

    def machine_of(self, tid: int) -> int:
        """:math:`\\mu_i` — machine of task ``tid``."""
        return self._assignments[tid].machine

    def start_of(self, tid: int) -> float:
        """:math:`\\sigma_i` — start time of task ``tid``."""
        return self._assignments[tid].start

    def completion_of(self, tid: int) -> float:
        """:math:`C_i` — completion time of task ``tid``."""
        return self._assignments[tid].completion

    def flow_of(self, tid: int) -> float:
        """:math:`F_i` — flow time of task ``tid``."""
        return self._assignments[tid].flow

    def on_machine(self, machine: int) -> list[Assignment]:
        """Assignments placed on ``machine``, sorted by start time."""
        out = [a for a in self if a.machine == machine]
        out.sort(key=lambda a: (a.start, a.task.tid))
        return out

    # -- objectives --------------------------------------------------------
    @property
    def max_flow(self) -> float:
        """The objective :math:`F_{max} = \\max_i (C_i - r_i)`."""
        return max((a.flow for a in self), default=0.0)

    @property
    def mean_flow(self) -> float:
        """Average flow time (secondary metric)."""
        if not self._assignments:
            return 0.0
        return float(np.mean([a.flow for a in self]))

    @property
    def max_stretch(self) -> float:
        """Maximum stretch :math:`\\max_i F_i / p_i`."""
        return max((a.stretch for a in self), default=0.0)

    @property
    def makespan(self) -> float:
        """:math:`C_{max} = \\max_i C_i`."""
        return max((a.completion for a in self), default=0.0)

    def flows(self) -> np.ndarray:
        """Flow times as an array, in task (tid-sorted) order."""
        return np.array([self._assignments[t.tid].flow for t in self.instance])

    def machine_loads(self) -> np.ndarray:
        """Total work placed on each machine (index 0 = machine 1)."""
        loads = np.zeros(self.m)
        for a in self:
            loads[a.machine - 1] += a.task.proc
        return loads

    def machine_busy_fraction(self, horizon: float | None = None) -> np.ndarray:
        """Fraction of ``[0, horizon]`` each machine spends busy."""
        if horizon is None:
            horizon = self.makespan
        if horizon <= 0:
            return np.zeros(self.m)
        return self.machine_loads() / horizon

    # -- validation ---------------------------------------------------------
    def validate(self, tol: float = 1e-9) -> None:
        """Check feasibility; raise :class:`ScheduleError` on violation.

        Constraints (Section 3): each machine processes at most one
        task at a time (no overlap), tasks start at or after their
        release time, and tasks only run on machines of their
        processing set.  Non-preemption is structural (one interval per
        task).
        """
        for a in self:
            if not (1 <= a.machine <= self.m):
                raise ScheduleError(f"task {a.task.tid}: machine {a.machine} outside 1..{self.m}")
            if a.start < a.task.release - tol:
                raise ScheduleError(
                    f"task {a.task.tid}: starts at {a.start} before release {a.task.release}"
                )
            if not a.task.is_eligible(a.machine, self.m):
                raise ScheduleError(
                    f"task {a.task.tid}: machine {a.machine} not in processing set "
                    f"{sorted(a.task.eligible(self.m))}"
                )
        for j in range(1, self.m + 1):
            run = self.on_machine(j)
            for prev, nxt in zip(run, run[1:]):
                if nxt.start < prev.completion - tol:
                    raise ScheduleError(
                        f"machine {j}: task {nxt.task.tid} starts at {nxt.start} "
                        f"before task {prev.task.tid} completes at {prev.completion}"
                    )

    def is_valid(self, tol: float = 1e-9) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(tol=tol)
        except ScheduleError:
            return False
        return True

    # -- comparison ------------------------------------------------------
    def same_placements(self, other: "Schedule", tol: float = 1e-9) -> bool:
        """Whether both schedules place every task identically
        (:math:`\\Pi(i) = \\Pi'(i)` for all tasks — Proposition 1's
        equality)."""
        if set(self._assignments) != set(other._assignments):
            return False
        for tid, a in self._assignments.items():
            b = other._assignments[tid]
            if a.machine != b.machine or abs(a.start - b.start) > tol:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Schedule(n={len(self)}, m={self.m}, Fmax={self.max_flow:.4g}, "
            f"Cmax={self.makespan:.4g})"
        )
