"""FIFO — central-queue pull scheduling (Algorithm 1 of the paper).

FIFO keeps a single global queue.  Whenever machines are idle and the
queue is non-empty, the tie-break policy selects which idle machine
pulls the next task.  FIFO is **not** immediate dispatch — a task may
sit in the queue — which is exactly why the paper prefers EFT and
proves them equivalent (Proposition 1) on
``P | online-r_i | Fmax``.

This module implements FIFO as a genuine event-driven simulation so
that Proposition 1 is a *checked* property of two independent
implementations (see ``tests/core/test_equivalence.py``), plus a
restricted-set variant (:class:`RestrictedFIFO`) used as a baseline:
an idle machine pulls the oldest *compatible* queued task.  The paper
notes extending FIFO to processing sets is cumbersome; this variant is
the natural attempt and serves as an experimental comparator.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .schedule import Schedule
from .task import Instance
from .tiebreak import TieBreak, get_tiebreak

__all__ = ["FIFO", "RestrictedFIFO", "fifo_schedule"]

# Comparisons are exact on purpose: FIFO and EFT manipulate the same
# float values (release times and completion sums), so exact `<=` keeps
# the two implementations tie-for-tie identical (Proposition 1); a
# tolerance here would disagree with EFT's exact tie sets on values
# within the tolerance of an event time.
_EPS = 0.0


class FIFO:
    """Event-driven FIFO scheduler for the unrestricted problem.

    Raises if the instance carries proper processing-set restrictions —
    plain FIFO is only defined without them (use
    :class:`RestrictedFIFO` or :class:`~repro.core.eft.EFT` instead).
    """

    name = "FIFO"

    def __init__(
        self,
        m: int,
        tiebreak: str | TieBreak = "min",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if m < 1:
            raise ValueError("need at least one machine")
        self.m = m
        self.tiebreak = get_tiebreak(tiebreak, rng)

    def run(self, instance: Instance) -> Schedule:
        """Simulate the pull loop over the whole instance."""
        if instance.m != self.m:
            raise ValueError(f"instance has m={instance.m}, scheduler has m={self.m}")
        if instance.is_restricted:
            raise ValueError(
                "plain FIFO does not support processing-set restrictions; "
                "use RestrictedFIFO or EFT"
            )
        completions = {j: 0.0 for j in range(1, self.m + 1)}
        placements: dict[int, tuple[int, float]] = {}
        queue: deque = deque()
        tasks = instance.tasks
        i = 0
        n = len(tasks)
        t = 0.0
        while i < n or queue:
            # Release everything due at the current time.
            while i < n and tasks[i].release <= t + _EPS:
                queue.append(tasks[i])
                i += 1
            if queue:
                idle = [j for j in range(1, self.m + 1) if completions[j] <= t + _EPS]
                if idle:
                    u = self.tiebreak(idle, completions)
                    task = queue.popleft()
                    placements[task.tid] = (u, t)
                    completions[u] = t + task.proc
                    continue
                # All machines busy: wake at the next completion or release.
                t_next = min(completions.values())
                if i < n:
                    t_next = min(t_next, tasks[i].release)
                t = t_next
            else:
                # Queue empty: jump to the next release.
                t = max(t, tasks[i].release)
        return Schedule(instance, placements)


class RestrictedFIFO:
    """FIFO with processing sets: an idle machine pulls the oldest
    queued task it is allowed to run.

    When several (idle machine, compatible task) pairs exist, the
    oldest compatible task is served first and the tie-break policy
    picks among the idle machines compatible with it — keeping the
    "first in, first out" spirit under eligibility constraints.
    """

    name = "FIFO-restricted"

    def __init__(
        self,
        m: int,
        tiebreak: str | TieBreak = "min",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if m < 1:
            raise ValueError("need at least one machine")
        self.m = m
        self.tiebreak = get_tiebreak(tiebreak, rng)

    def run(self, instance: Instance) -> Schedule:
        if instance.m != self.m:
            raise ValueError(f"instance has m={instance.m}, scheduler has m={self.m}")
        completions = {j: 0.0 for j in range(1, self.m + 1)}
        placements: dict[int, tuple[int, float]] = {}
        queue: list = []  # kept in release order; entries removed when served
        tasks = instance.tasks
        i = 0
        n = len(tasks)
        t = 0.0
        while i < n or queue:
            while i < n and tasks[i].release <= t + _EPS:
                queue.append(tasks[i])
                i += 1
            assigned = False
            if queue:
                idle = frozenset(j for j in range(1, self.m + 1) if completions[j] <= t + _EPS)
                if idle:
                    for pos, task in enumerate(queue):
                        compat = sorted(idle & task.eligible(self.m))
                        if compat:
                            u = self.tiebreak(compat, completions)
                            placements[task.tid] = (u, t)
                            completions[u] = t + task.proc
                            del queue[pos]
                            assigned = True
                            break
            if assigned:
                continue
            # Nothing startable now: advance the clock.
            candidates = []
            if queue:
                # A busy machine freeing up may unlock a queued task.
                candidates.extend(c for c in completions.values() if c > t + _EPS)
            if i < n:
                candidates.append(tasks[i].release)
            if not candidates:
                raise RuntimeError("deadlock in RestrictedFIFO event loop")  # pragma: no cover
            t = min(candidates)
        return Schedule(instance, placements)


def fifo_schedule(
    instance: Instance,
    tiebreak: str | TieBreak = "min",
    rng: np.random.Generator | int | None = None,
) -> Schedule:
    """Schedule ``instance`` with plain FIFO (unrestricted instances)."""
    return FIFO(instance.m, tiebreak=tiebreak, rng=rng).run(instance)
