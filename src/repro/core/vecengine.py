"""Vectorized batched simulation core — the engine behind
``Simulator(backend="array")`` and the ``fast_eft_*`` entry points.

The reference :class:`~repro.simulation.engine.Simulator` is an
object-per-event loop: three heap events per task, a ``DispatchRecord``
per decision and dict state everywhere.  Profiling the Figure 9–11
campaigns shows the bookkeeping — not the decision rule — dominating.
This module re-implements the *identical* EFT semantics (Equation (2)
with the deterministic Min/Max tie-breaks) on flat ``float64`` arrays:

* the workload is lowered once into a structured array
  (:data:`TASK_DTYPE`) plus per-distinct-processing-set eligibility
  tuples, cached process-wide in an LRU
  (:func:`lower_processing_set`) so campaign loops re-solving the same
  replica sets never re-lower them;
* the inherently sequential decision recurrence runs as one tight pass
  over pre-lowered scalars (no per-task numpy dispatch, no record
  objects), bit-identical to the reference arithmetic — including the
  ``max()`` argument-order conventions, so even signed zeros match;
* everything *around* the recurrence — flows, completion masks at a
  cutoff, per-machine busy time, queue depths and waiting-work
  profiles at observation instants — is derived in batched numpy
  passes (:class:`VecRun`);
* schedules materialise lazily: :class:`VecSchedule` is a
  :class:`~repro.core.schedule.Schedule` backed by the flat arrays
  that only builds per-task :class:`Assignment` objects when a caller
  actually asks for them.

Batched observation semantics follow the engine's pinned same-instant
event order (COMPLETE < RELEASE < OBSERVE): a query at time ``t`` sees
completions at exactly ``t`` applied, releases at exactly ``t``
dispatched and same-instant starts begun — the settled state of the
instant, exactly what a ``sim.at(t, ...)`` callback observes.

Byte-identity with the reference engine is the regression oracle
(``tests/simulation/test_vec_backend.py`` replays every golden fixture
through the array backend); the speedup is tracked by
``benchmarks/bench_scheduler_throughput.py`` → ``BENCH_throughput.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Sequence

import numpy as np

from .schedule import Assignment, Schedule
from .task import Instance, Task

__all__ = [
    "TASK_DTYPE",
    "VecUnsupported",
    "VecRun",
    "VecSchedule",
    "clear_set_cache",
    "eft_decide",
    "lower_eligibility",
    "lower_processing_set",
    "set_cache_info",
]

#: Structured per-task layout of a lowered workload: release and
#: processing times as flat ``float64`` columns plus the id of the
#: task's distinct processing set (index into the lowered-set table).
TASK_DTYPE = np.dtype([("release", "f8"), ("proc", "f8"), ("set", "i8")])


class VecUnsupported(Exception):
    """The configuration cannot be expressed on the array fast path
    (the caller must fall back to the reference implementation)."""


@lru_cache(maxsize=65536)
def lower_processing_set(m: int, key: frozenset[int] | None) -> tuple[int, ...]:
    """Lower one processing set to a sorted tuple of machine indices.

    Cached process-wide per distinct ``(m, set)`` pair — key-value
    workloads have at most ``m`` distinct replica sets, so campaign
    loops that re-solve the same replica families hit the cache on
    every call after the first.  Raises :class:`VecUnsupported` for
    sets referencing machines beyond ``m`` (the reference path owns
    the error behaviour for those).
    """
    if key is None:
        return tuple(range(1, m + 1))
    if max(key) > m:
        raise VecUnsupported(f"processing set {sorted(key)} exceeds m={m}")
    return tuple(sorted(key))


def set_cache_info():
    """``functools.lru_cache`` statistics of the set-lowering cache."""
    return lower_processing_set.cache_info()


def clear_set_cache() -> None:
    """Drop every lowered processing set (mainly for tests)."""
    lower_processing_set.cache_clear()


def lower_eligibility(m: int, tasks: Sequence[Task]) -> list[tuple[int, ...]]:
    """Pre-lowered sorted eligibility tuple per task (cache-shared)."""
    lower = lower_processing_set
    return [lower(m, t.machines) for t in tasks]


def lower_tasks(m: int, tasks: Sequence[Task]) -> np.ndarray:
    """Lower ``tasks`` into one :data:`TASK_DTYPE` structured array.

    The ``set`` column indexes the distinct lowered sets in first-seen
    order; use :func:`lower_eligibility` when per-task tuples are all
    that is needed.
    """
    out = np.empty(len(tasks), dtype=TASK_DTYPE)
    ids: dict[frozenset[int] | None, int] = {}
    for i, t in enumerate(tasks):
        sid = ids.get(t.machines)
        if sid is None:
            lower_processing_set(m, t.machines)  # validates + warms cache
            sid = ids.setdefault(t.machines, len(ids))
        out[i] = (t.release, t.proc, sid)
    return out


def eft_decide(
    m: int,
    releases: Sequence[float],
    procs: Sequence[float],
    eligibles: Sequence[tuple[int, ...]],
    prefer_max: bool = False,
) -> tuple[list[int], list[float], list[float]]:
    """Run the EFT recurrence (Equation (2), Min/Max tie-break) over a
    release-ordered workload.

    Returns ``(machines, starts, completions_after)`` where the last
    item is the per-machine completion-time vector *after* every
    dispatch (index 0 unused) — the scheduler state a resumed run
    continues from.  The arithmetic replicates the reference driver
    operation-for-operation (``max(a, b)`` returns its first argument
    on ties, so signed zeros round-trip identically).
    """
    comp = [0.0] * (m + 1)
    machines: list[int] = [0] * len(releases)
    starts: list[float] = [0.0] * len(releases)
    inf = float("inf")
    # One fused scan per decision.  The two-phase reading of Equation
    # (2) — find ``earliest``, then the first/last index at or below
    # ``t_min = max(r, earliest)`` — collapses because the scan can
    # stop at the first machine already free at ``r`` (if one exists,
    # ``t_min = r`` and scan order makes it the answer), and otherwise
    # the answer is the scan-order argmin (``t_min = earliest`` selects
    # exactly the machines attaining the minimum).  Pure comparisons,
    # so the picked index and start are bit-identical to the reference.
    if prefer_max:
        for i, elig in enumerate(eligibles):
            r = releases[i]
            best = inf
            for j in reversed(elig):
                c = comp[j]
                if c <= r:
                    machines[i] = j
                    starts[i] = r
                    comp[j] = r + procs[i]
                    break
                if c < best:
                    best = c
                    bj = j
            else:
                machines[i] = bj
                starts[i] = best
                comp[bj] = best + procs[i]
    else:
        for i, elig in enumerate(eligibles):
            r = releases[i]
            best = inf
            for j in elig:
                c = comp[j]
                if c <= r:
                    machines[i] = j
                    starts[i] = r
                    comp[j] = r + procs[i]
                    break
                if c < best:
                    best = c
                    bj = j
            else:
                machines[i] = bj
                starts[i] = best
                comp[bj] = best + procs[i]
    return machines, starts, comp


class VecSchedule(Schedule):
    """A :class:`Schedule` backed by flat placement arrays.

    Behaves exactly like the dict-based schedule — validation,
    placement comparison and per-task lookups all work — but the
    per-task :class:`Assignment` objects only exist once something
    asks for them; the objective and the bulk accessors come straight
    off the arrays.  ``machines``/``starts`` are in *decision order*
    with ``tids`` carrying the task ids of each row; rows coincide
    with instance order whenever the workload was fed release-sorted
    (the common case), and the lazy tid mapping covers the rest.
    """

    def __init__(
        self,
        instance: Instance,
        machines: np.ndarray,
        starts: np.ndarray,
        tids: np.ndarray,
    ) -> None:
        self.instance = instance
        if not (len(machines) == len(starts) == len(tids) == len(instance.tasks)):
            raise ValueError("placement arrays must cover the instance exactly")
        self._mach = np.asarray(machines, dtype=np.int64)
        self._start = np.asarray(starts, dtype=np.float64)
        self._tids = np.asarray(tids, dtype=np.int64)

    # -- lazy materialisation ---------------------------------------------
    @cached_property
    def _rows(self) -> np.ndarray:
        """Row index of each instance task (instance order)."""
        inst_tids = np.fromiter(
            (t.tid for t in self.instance.tasks), dtype=np.int64, count=len(self._tids)
        )
        if np.array_equal(inst_tids, self._tids):
            return np.arange(len(self._tids))
        row_of = {int(tid): i for i, tid in enumerate(self._tids)}
        return np.fromiter(
            (row_of[int(tid)] for tid in inst_tids), dtype=np.int64, count=len(inst_tids)
        )

    @cached_property
    def _assignments(self) -> dict[int, Assignment]:
        rows = self._rows
        mach = self._mach
        start = self._start
        return {
            t.tid: Assignment(task=t, machine=int(mach[rows[i]]), start=float(start[rows[i]]))
            for i, t in enumerate(self.instance.tasks)
        }

    # -- array accessors ----------------------------------------------------
    def machines_array(self) -> np.ndarray:
        """Machine of every task, in instance order."""
        return self._mach[self._rows]

    def starts_array(self) -> np.ndarray:
        """Start time of every task, in instance order."""
        return self._start[self._rows]

    def _flow_array(self) -> np.ndarray:
        # ((start + proc) - release) elementwise: the exact association
        # of Assignment.flow, so the bits match the dict-based path.
        rel = np.fromiter(
            (t.release for t in self.instance.tasks), dtype=np.float64, count=len(self._mach)
        )
        proc = np.fromiter(
            (t.proc for t in self.instance.tasks), dtype=np.float64, count=len(self._mach)
        )
        starts = self.starts_array()
        return (starts + proc) - rel

    # -- vectorized overrides ----------------------------------------------
    def __len__(self) -> int:
        return len(self._mach)

    @property
    def max_flow(self) -> float:
        if not len(self._mach):
            return 0.0
        return float(self._flow_array().max())

    @property
    def mean_flow(self) -> float:
        if not len(self._mach):
            return 0.0
        return float(np.mean(self._flow_array()))

    @property
    def makespan(self) -> float:
        if not len(self._mach):
            return 0.0
        proc = np.fromiter(
            (t.proc for t in self.instance.tasks), dtype=np.float64, count=len(self._mach)
        )
        return float((self.starts_array() + proc).max())

    def flows(self) -> np.ndarray:
        return self._flow_array()

    def machine_loads(self) -> np.ndarray:
        loads = np.bincount(
            self.machines_array() - 1,
            weights=np.fromiter(
                (t.proc for t in self.instance.tasks), dtype=np.float64, count=len(self._mach)
            ),
            minlength=self.m,
        )
        return loads[: self.m]


@dataclass(frozen=True)
class VecRun:
    """A completed vectorized run: placements plus batched queries.

    All arrays are in decision (release) order.  The observation
    queries implement the engine's pinned same-instant semantics: at
    time ``t``, completions at exactly ``t`` have freed their
    machines, releases at exactly ``t`` have been dispatched and
    same-instant starts have begun — what an OBSERVE callback sees.
    """

    m: int
    tasks: tuple[Task, ...]
    releases: np.ndarray
    procs: np.ndarray
    machines: np.ndarray
    starts: np.ndarray
    #: per-machine completion-time vector after the last dispatch
    #: (index 0 unused) — the analytic scheduler state.
    final_completions: np.ndarray

    @classmethod
    def from_instance(
        cls, instance: Instance, tiebreak: str = "min"
    ) -> "VecRun":
        """Decide the whole instance on the fast path.

        Raises :class:`VecUnsupported` for tie-breaks other than the
        deterministic ``min``/``max`` pair.
        """
        if tiebreak not in ("min", "max"):
            raise VecUnsupported(
                f"array engine supports 'min'/'max' tie-breaks, not {tiebreak!r}"
            )
        tasks = instance.tasks
        elig = lower_eligibility(instance.m, tasks)
        rel = [t.release for t in tasks]
        proc = [t.proc for t in tasks]
        mach, starts, comp = eft_decide(
            instance.m, rel, proc, elig, prefer_max=(tiebreak == "max")
        )
        return cls(
            m=instance.m,
            tasks=tasks,
            releases=np.asarray(rel, dtype=np.float64),
            procs=np.asarray(proc, dtype=np.float64),
            machines=np.asarray(mach, dtype=np.int64),
            starts=np.asarray(starts, dtype=np.float64),
            final_completions=np.asarray(comp, dtype=np.float64),
        )

    # -- derived arrays -----------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.machines)

    @cached_property
    def completions(self) -> np.ndarray:
        """Per-task completion times (``start + proc`` elementwise)."""
        return self.starts + self.procs

    @cached_property
    def flow_times(self) -> np.ndarray:
        """Per-task flow times, reference association ``(C_i) - r_i``."""
        return self.completions - self.releases

    def fmax(self) -> float:
        """The objective :math:`F_{max}`."""
        return float(self.flow_times.max()) if self.n else 0.0

    def schedule(self, instance: Instance) -> VecSchedule:
        """The run as a lazily materialising :class:`VecSchedule`."""
        tids = np.fromiter((t.tid for t in self.tasks), dtype=np.int64, count=self.n)
        return VecSchedule(instance, self.machines, self.starts, tids)

    # -- batched truncation masks ------------------------------------------
    def released_by(self, t: float) -> np.ndarray:
        """Mask of tasks released at or before ``t``."""
        return self.releases <= t

    def started_by(self, t: float) -> np.ndarray:
        """Mask of tasks started at or before ``t`` (pinned order: a
        start at exactly ``t`` has happened)."""
        return self.starts <= t

    def completed_by(self, t: float) -> np.ndarray:
        """Mask of tasks completed at or before ``t``."""
        return self.completions <= t

    def busy_time_by_machine(self, t: float) -> np.ndarray:
        """Work *performed* by ``t`` per machine (index 0 unused):
        completed tasks in full, the in-flight task pro-rated from its
        start — the engine's truncation-honest busy accounting."""
        done = self.completed_by(t)
        busy = np.bincount(
            self.machines, weights=np.where(done, self.procs, 0.0), minlength=self.m + 1
        )
        running = self.started_by(t) & ~done
        if running.any():
            busy += np.bincount(
                self.machines[running],
                weights=t - self.starts[running],
                minlength=self.m + 1,
            )
        return busy[: self.m + 1]

    # -- batched observation ------------------------------------------------
    @cached_property
    def _by_machine(self) -> dict[int, np.ndarray]:
        """Row indices per machine, in dispatch order."""
        order = np.argsort(self.machines, kind="stable")
        groups: dict[int, np.ndarray] = {}
        if not self.n:
            return {j: np.empty(0, dtype=np.int64) for j in range(1, self.m + 1)}
        bounds = np.searchsorted(self.machines[order], np.arange(1, self.m + 2))
        for j in range(1, self.m + 1):
            groups[j] = order[bounds[j - 1] : bounds[j]]
        return groups

    def waiting_profile_at(self, times: Sequence[float]) -> np.ndarray:
        """Waiting work :math:`w_t(j)` for every machine at each
        observation instant — shape ``(len(times), m)``, machine
        :math:`M_j` in column ``j - 1``.

        One batched pass per machine: releases and post-dispatch
        completion times are nondecreasing along a machine's dispatch
        order, so a ``searchsorted`` finds the last task dispatched by
        each instant and the profile is ``max(0, C_j(t) - t)``.
        """
        ts = np.asarray(times, dtype=np.float64)
        out = np.zeros((len(ts), self.m))
        for j, rows in self._by_machine.items():
            if not len(rows):
                continue
            rel_j = self.releases[rows]
            comp_j = self.completions[rows]
            idx = np.searchsorted(rel_j, ts, side="right")
            have = idx > 0
            c_at = np.where(have, comp_j[np.maximum(idx - 1, 0)], 0.0)
            out[:, j - 1] = np.maximum(0.0, c_at - ts)
        return out

    def queue_depths_at(self, times: Sequence[float]) -> np.ndarray:
        """Released-but-unstarted tasks per machine at each instant —
        shape ``(len(times), m)`` (the engine's run-queue length; the
        in-service task is not queued)."""
        ts = np.asarray(times, dtype=np.float64)
        out = np.zeros((len(ts), self.m), dtype=np.int64)
        for j, rows in self._by_machine.items():
            if not len(rows):
                continue
            released = np.searchsorted(self.releases[rows], ts, side="right")
            started = np.searchsorted(self.starts[rows], ts, side="right")
            out[:, j - 1] = released - started
        return out
