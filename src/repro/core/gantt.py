"""ASCII Gantt rendering of schedules.

Renders schedules as text, one row per machine, in the style of the
paper's Figures 3–7.  Useful in examples, failing-test output, and the
adversary-trace benchmark (Figure 3 reproduction).
"""

from __future__ import annotations

import math

from .schedule import Schedule

__all__ = ["render_gantt", "render_profile"]


def _label(tid: int) -> str:
    """Single-cell label for a task id (cycles after 62 ids)."""
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return alphabet[tid % len(alphabet)]


def render_gantt(
    schedule: Schedule,
    *,
    until: float | None = None,
    cell: float = 1.0,
    width: int = 100,
    show_ids: bool = True,
) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    Parameters
    ----------
    until:
        Right edge of the time window (defaults to the makespan).
    cell:
        Time units per character cell.
    width:
        Maximum chart width in cells (the window is truncated).
    show_ids:
        Label cells with task-id characters instead of ``#``.
    """
    horizon = schedule.makespan if until is None else until
    if horizon <= 0:
        return "(empty schedule)"
    ncells = min(width, max(1, math.ceil(horizon / cell)))
    lines = []
    header = "      " + "".join(str(i % 10) for i in range(ncells))
    lines.append(header + f"   (1 cell = {cell:g} time)")
    for j in range(1, schedule.m + 1):
        row = ["."] * ncells
        for a in schedule.on_machine(j):
            lo = int(a.start / cell)
            hi = int(math.ceil(a.completion / cell))
            for c in range(max(0, lo), min(ncells, hi)):
                row[c] = _label(a.task.tid) if show_ids else "#"
        lines.append(f"M{j:<4d} " + "".join(row))
    lines.append(f"Fmax = {schedule.max_flow:g}, Cmax = {schedule.makespan:g}")
    return "\n".join(lines)


def render_profile(profile, stable=None, *, char: str = "█") -> str:
    """Render a schedule profile ``w_t`` as horizontal bars, optionally
    marking a stable profile ``w_tau`` with ``|`` (Figure 4 style)."""
    lines = []
    vals = list(profile)
    for idx, w in enumerate(vals, start=1):
        bar = char * int(round(w))
        if stable is not None:
            target = int(round(stable[idx - 1]))
            if target > len(bar):
                bar = bar + " " * (target - len(bar) - 1) + "|"
        lines.append(f"M{idx:<4d} {bar} ({w:g})")
    return "\n".join(lines)
