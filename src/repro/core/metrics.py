"""Aggregate metrics over schedules.

The paper's objective is the maximum flow time
:math:`F_{max} = \\max_i (C_i - r_i)`; practitioners also look at tail
percentiles (the "tail latency" problem motivating the paper), mean
flow, stretch and machine utilisation.  This module computes them in
one pass and renders compact summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schedule import Schedule

__all__ = ["ScheduleStats", "summarize", "flow_percentiles", "waiting_profile"]


@dataclass(frozen=True, slots=True)
class ScheduleStats:
    """One-pass summary statistics of a schedule."""

    n: int
    m: int
    max_flow: float
    mean_flow: float
    p50_flow: float
    p95_flow: float
    p99_flow: float
    max_stretch: float
    makespan: float
    total_work: float
    avg_utilization: float
    max_machine_load: float
    min_machine_load: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (for tables / JSON)."""
        return {
            "n": self.n,
            "m": self.m,
            "max_flow": self.max_flow,
            "mean_flow": self.mean_flow,
            "p50_flow": self.p50_flow,
            "p95_flow": self.p95_flow,
            "p99_flow": self.p99_flow,
            "max_stretch": self.max_stretch,
            "makespan": self.makespan,
            "total_work": self.total_work,
            "avg_utilization": self.avg_utilization,
            "max_machine_load": self.max_machine_load,
            "min_machine_load": self.min_machine_load,
        }


def summarize(schedule: Schedule) -> ScheduleStats:
    """Compute :class:`ScheduleStats` for ``schedule``."""
    flows = np.array([a.flow for a in schedule], dtype=float)
    stretches = np.array([a.stretch for a in schedule], dtype=float)
    loads = schedule.machine_loads()
    makespan = schedule.makespan
    total_work = float(loads.sum())
    util = total_work / (schedule.m * makespan) if makespan > 0 else 0.0
    if flows.size == 0:
        flows = np.zeros(1)
        stretches = np.zeros(1)
    return ScheduleStats(
        n=len(schedule),
        m=schedule.m,
        max_flow=float(flows.max()),
        mean_flow=float(flows.mean()),
        p50_flow=float(np.percentile(flows, 50)),
        p95_flow=float(np.percentile(flows, 95)),
        p99_flow=float(np.percentile(flows, 99)),
        max_stretch=float(stretches.max()),
        makespan=float(makespan),
        total_work=total_work,
        avg_utilization=float(util),
        max_machine_load=float(loads.max()) if loads.size else 0.0,
        min_machine_load=float(loads.min()) if loads.size else 0.0,
    )


def flow_percentiles(schedule: Schedule, qs: tuple[float, ...] = (50, 90, 95, 99, 100)) -> dict[float, float]:
    """Flow-time percentiles (``100`` is the max flow itself)."""
    flows = np.array([a.flow for a in schedule], dtype=float)
    if flows.size == 0:
        return {q: 0.0 for q in qs}
    return {q: float(np.percentile(flows, q)) for q in qs}


def waiting_profile(schedule: Schedule, t: float) -> np.ndarray:
    """Remaining allocated work per machine at time ``t``.

    For machine :math:`M_j` this is
    :math:`\\max(0, C_{j}(t) - t)` where :math:`C_j(t)` is the
    completion time of work assigned to :math:`M_j` among tasks
    released at or before ``t`` — the *schedule profile* :math:`w_t`
    of Theorem 8 (computed from a finished schedule rather than
    online state).
    """
    profile = np.zeros(schedule.m)
    for a in schedule:
        if a.task.release <= t:
            j = a.machine - 1
            profile[j] = max(profile[j], a.completion - t)
    return np.maximum(profile, 0.0)
