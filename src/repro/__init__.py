"""repro — reproduction of *Bounding the Flow Time in Online Scheduling
with Structured Processing Sets* (Canon, Dugois, Marchal, 2022).

Public API tour:

* :mod:`repro.core` — tasks, schedules, the EFT and FIFO schedulers.
* :mod:`repro.psets` — processing-set structures and replication.
* :mod:`repro.offline` — exact offline optima and lower bounds.
* :mod:`repro.adversaries` — the Section 6 lower-bound constructions.
* :mod:`repro.simulation` — event simulator, popularity, workloads.
* :mod:`repro.maxload` — the Equation (15) max-load LP.
* :mod:`repro.theory` — bound registry and profile theory.
* :mod:`repro.experiments` — regenerate every paper table and figure.
* :mod:`repro.campaigns` — parallel campaign runner, result cache,
  schedule-trace record/replay and golden fixtures.
"""

from .core import (
    EFT,
    FIFO,
    Instance,
    RestrictedFIFO,
    Schedule,
    Task,
    eft_schedule,
    fifo_schedule,
)
from .psets import DisjointIntervals, OverlappingIntervals, replicate_instance

__version__ = "1.0.0"

__all__ = [
    "EFT",
    "FIFO",
    "DisjointIntervals",
    "Instance",
    "OverlappingIntervals",
    "RestrictedFIFO",
    "Schedule",
    "Task",
    "__version__",
    "eft_schedule",
    "fifo_schedule",
    "replicate_instance",
]
