"""Online re-replication: the max-load LP as a live autoscaling signal.

Closes the loop from workload dynamics to placement changes:
:class:`~repro.rebalance.estimator.PopularityEstimator` watches the
arrival stream, :class:`~repro.rebalance.controller.RebalanceController`
re-solves Equation (15) against the live
:class:`~repro.rebalance.placement.IntervalPlacement` on a cadence and
proposes interval-structured placement changes, the serve tier enacts
them (``Dispatcher.apply_placement`` / ``ShardRouter.apply_placement``)
and every decision lands in a versioned, replayable
:mod:`~repro.rebalance.events` trace.
"""

from .controller import RebalanceConfig, RebalanceController, RebalanceDecision
from .estimator import PopularityEstimator
from .events import (
    REBALANCE_TRACE_FORMAT,
    REBALANCE_TRACE_VERSION,
    RebalanceTrace,
)
from .events import dump as dump_rebalance_trace
from .events import dumps as dumps_rebalance_trace
from .events import load as load_rebalance_trace
from .events import loads as loads_rebalance_trace
from .harness import RebalanceResult, replay_rebalance, run_rebalance
from .placement import IntervalPlacement, ring_start

__all__ = [
    "IntervalPlacement",
    "PopularityEstimator",
    "REBALANCE_TRACE_FORMAT",
    "REBALANCE_TRACE_VERSION",
    "RebalanceConfig",
    "RebalanceController",
    "RebalanceDecision",
    "RebalanceResult",
    "RebalanceTrace",
    "dump_rebalance_trace",
    "dumps_rebalance_trace",
    "load_rebalance_trace",
    "loads_rebalance_trace",
    "replay_rebalance",
    "ring_start",
    "run_rebalance",
]
