"""Campaign units for rebalance experiments.

Pure ``fn(params, seed) -> dict`` functions addressable as
``repro.rebalance.units:run`` / ``repro.rebalance.units:compare`` from
a :class:`~repro.campaigns.spec.CampaignSpec` — content-hashed,
cacheable and crash-isolated like every other unit kind.

The default scenario is the tentpole's hotspot shift: a Zipf-``s``
popularity whose hot region rotates half-way around the ring at
``shift_at`` — the moment a static placement tuned for the first
regime starts drowning.  ``params["spec"]`` overrides the whole
workload with a serialised
:class:`~repro.simulation.dynamics.DynamicWorkloadSpec`.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..faults.schedule import FaultSchedule
from ..simulation.dynamics import ConstantRate, DynamicWorkloadSpec, HotspotShift
from .controller import RebalanceConfig
from .harness import run_rebalance

__all__ = ["compare", "default_spec", "run"]


def default_spec(params: Mapping[str, Any]) -> DynamicWorkloadSpec:
    """The hotspot-shift scenario (or ``params["spec"]`` verbatim)."""
    if "spec" in params:
        return DynamicWorkloadSpec.from_dict(params["spec"])
    m = int(params.get("m", 12))
    n = int(params.get("n", 4000))
    k = int(params.get("k", 2))
    s = float(params.get("s", 1.5))
    lam = float(params.get("lam", 0.55 * m))
    shift_at = float(params.get("shift_at", n / (2.0 * lam)))
    rotation = int(params.get("rotation", m // 2))
    return DynamicWorkloadSpec(
        m=m,
        n=n,
        rate=ConstantRate(lam),
        popularity=HotspotShift(m=m, s=s, shifts=((shift_at, rotation),)),
        k=k,
        strategy=str(params.get("strategy", "overlapping")),
        proc=float(params.get("proc", 1.0)),
        size_dist=str(params.get("size_dist", "unit")),
    )


def _config(params: Mapping[str, Any]) -> RebalanceConfig:
    return RebalanceConfig.from_dict(params.get("config") or {})


def _faults(params: Mapping[str, Any]) -> FaultSchedule | None:
    doc = params.get("faults")
    if not doc:
        return None
    if isinstance(doc, str):
        return FaultSchedule.from_json(doc)
    return FaultSchedule.build(tuple((int(j), float(s), float(e)) for j, s, e in doc))


def _result_dict(result) -> dict[str, Any]:
    return {
        "policy": result.policy,
        "flow": dict(result.flow),
        "digest": result.digest,
        "n": result.n,
        "n_rebalances": result.n_rebalances,
        "n_migrated": result.n_migrated,
        "final_version": result.final_version,
    }


def run(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """One policy arm: ``params["policy"]`` (default ``adaptive``) on
    the scenario workload."""
    spec = default_spec(params)
    result = run_rebalance(
        spec,
        policy=str(params.get("policy", "adaptive")),
        config=_config(params),
        scheduler=str(params.get("scheduler", "eft-min")),
        seed=seed,
        faults=_faults(params),
    )
    return _result_dict(result)


def compare(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """The tentpole comparison: static-overlapping vs static-disjoint
    vs adaptive (from the overlapping start), all on the *same* seeded
    hotspot-shift stream."""
    from dataclasses import replace

    spec = default_spec(params)
    config = _config(params)
    scheduler = str(params.get("scheduler", "eft-min"))
    faults = _faults(params)
    arms = {
        "static_overlapping": (replace(spec, strategy="overlapping"), "static"),
        "static_disjoint": (replace(spec, strategy="disjoint"), "static"),
        "adaptive": (replace(spec, strategy="overlapping"), "adaptive"),
    }
    out: dict[str, Any] = {}
    for name, (arm_spec, policy) in arms.items():
        result = run_rebalance(
            arm_spec,
            policy=policy,
            config=config,
            scheduler=scheduler,
            seed=seed,
            faults=faults,
        )
        out[name] = _result_dict(result)
    out["adaptive_beats_static_p99"] = out["adaptive"]["flow"]["p99"] < min(
        out["static_overlapping"]["flow"]["p99"],
        out["static_disjoint"]["flow"]["p99"],
    )
    return out
