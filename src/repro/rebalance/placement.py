"""Mutable-by-copy interval placements for online re-replication.

The paper's replication strategies (:mod:`repro.psets.replication`)
are *fixed* maps from a home machine to its replica interval.  Online
rebalancing needs to move those intervals while the system runs —
widen a hot home's interval, shift it off a saturated region, narrow a
cold one — without ever leaving the family of structures the paper's
guarantees cover: every replica set must stay a circular interval of
the ``m``-ring (checked with
:func:`repro.psets.sets.is_circular_interval`) and must contain its
home machine (the home holds the primary copy of its own data).

:class:`IntervalPlacement` represents one such placement explicitly as
a per-home ``(start, size)`` table.  It *is* a
:class:`~repro.psets.replication.ReplicationStrategy`, so everything
built on that contract — workload generation, the max-load LP's
transfer matrix, ``replicate_instance`` — consumes live placements
unchanged.  All edits return new placements (value semantics), which
is what makes rebalance decisions diffable and traceable.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..psets.replication import ReplicationStrategy
from ..psets.sets import is_circular_interval, ring_interval

__all__ = ["IntervalPlacement", "ring_start"]


def ring_start(s: frozenset[int] | set[int], m: int) -> int:
    """The start of a circular interval on the ``m``-ring: the unique
    member whose ring predecessor is outside the set (the minimum, for
    the full ring).  Raises if ``s`` is not a ring interval."""
    if not is_circular_interval(s, m):
        raise ValueError(f"{sorted(s)} is not a circular interval on the {m}-ring")
    if len(s) == m:
        return min(s)
    for j in sorted(s):
        pred = (j - 2) % m + 1
        if pred not in s:
            return j
    raise AssertionError("unreachable: proper ring interval has a start")


class IntervalPlacement(ReplicationStrategy):
    """An explicit per-home table of replica intervals on the ring.

    ``intervals[u] = (start, size)`` means home ``u``'s data lives on
    the circular interval of ``size`` machines beginning at ``start``.
    Invariants (enforced at construction): every home ``1..m`` has an
    entry, ``1 <= size <= m``, and ``u`` is inside its own interval.
    """

    name = "interval"

    def __init__(self, m: int, intervals: Mapping[int, tuple[int, int]]) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if sorted(intervals) != list(range(1, m + 1)):
            raise ValueError("intervals must cover every home machine 1..m exactly once")
        table: dict[int, tuple[int, int]] = {}
        sizes = []
        for u in range(1, m + 1):
            start, size = intervals[u]
            members = ring_interval(int(start), int(size), m)  # validates ranges
            if u not in members:
                raise ValueError(
                    f"home {u} outside its own interval [{start}, size {size}] — "
                    "the home must hold its primary copy"
                )
            table[u] = (int(start), int(size))
            sizes.append(int(size))
        super().__init__(m, max(sizes))
        self._intervals = table

    # -- ReplicationStrategy contract -----------------------------------------
    def replicas(self, u: int) -> frozenset[int]:
        if not (1 <= u <= self.m):
            raise ValueError(f"machine {u} outside 1..{self.m}")
        start, size = self._intervals[u]
        return ring_interval(start, size, self.m)

    # -- construction ----------------------------------------------------------
    @staticmethod
    def from_strategy(strat: ReplicationStrategy) -> "IntervalPlacement":
        """Snapshot any interval-structured strategy (overlapping ring,
        disjoint groups, no replication) as an explicit placement with
        the *same* replica sets."""
        table = {}
        for u in range(1, strat.m + 1):
            s = strat.replicas(u)
            table[u] = (ring_start(s, strat.m), len(s))
        return IntervalPlacement(strat.m, table)

    # -- interval edits (value semantics) --------------------------------------
    def _with(self, u: int, start: int, size: int) -> "IntervalPlacement":
        table = dict(self._intervals)
        table[u] = (start, size)
        return IntervalPlacement(self.m, table)

    def widen(self, u: int) -> "IntervalPlacement":
        """Extend home ``u``'s interval by one machine clockwise (one
        more successor replica, the Dynamo growth direction).  No-op at
        full ring."""
        start, size = self.interval(u)
        if size >= self.m:
            return self
        return self._with(u, start, size + 1)

    def narrow(self, u: int) -> "IntervalPlacement":
        """Drop home ``u``'s clockwise-last replica.  Refuses to shrink
        past the home itself (the tail is kept on the home's side)."""
        start, size = self.interval(u)
        if size <= 1:
            return self
        last = (start + size - 2) % self.m + 1
        if last == u:  # pragma: no cover - start == u keeps the home first
            raise ValueError(f"narrowing home {u} would drop its primary copy")
        return self._with(u, start, size - 1)

    def shift(self, u: int, delta: int) -> "IntervalPlacement":
        """Rotate home ``u``'s interval ``delta`` positions clockwise
        (negative: counter-clockwise).  The home must stay inside."""
        start, size = self.interval(u)
        return self._with(u, (start - 1 + delta) % self.m + 1, size)

    # -- inspection ------------------------------------------------------------
    def interval(self, u: int) -> tuple[int, int]:
        """``(start, size)`` of home ``u``'s interval."""
        if not (1 <= u <= self.m):
            raise ValueError(f"machine {u} outside 1..{self.m}")
        return self._intervals[u]

    def sets(self) -> dict[int, frozenset[int]]:
        """Replica set of every home, ``{u: frozenset}``."""
        return {u: self.replicas(u) for u in range(1, self.m + 1)}

    def machines_used(self) -> frozenset[int]:
        """Union of all replica sets (machines holding any data)."""
        out: set[int] = set()
        for u in range(1, self.m + 1):
            out |= self.replicas(u)
        return frozenset(out)

    def validate(self) -> None:
        """Re-assert the paper's structure on every set (defence for
        placements deserialised or edited externally)."""
        for u in range(1, self.m + 1):
            s = self.replicas(u)
            if not is_circular_interval(s, self.m):  # pragma: no cover - by construction
                raise ValueError(f"home {u}: {sorted(s)} is not a ring interval")
            if u not in s:  # pragma: no cover - by construction
                raise ValueError(f"home {u} outside its replica set")

    def diff(self, other: "IntervalPlacement") -> list[tuple[int, tuple[int, int], tuple[int, int]]]:
        """Homes whose intervals differ, as ``(u, (start, size)_self,
        (start, size)_other)`` — the change list of a rebalance event."""
        if other.m != self.m:
            raise ValueError(f"placements have different m: {self.m} vs {other.m}")
        return [
            (u, self._intervals[u], other._intervals[u])
            for u in range(1, self.m + 1)
            if self._intervals[u] != other._intervals[u]
        ]

    def added_machines(self, new: "IntervalPlacement") -> frozenset[int]:
        """Machines joining at least one home's replica set under
        ``new`` — each must fetch that home's data before serving it,
        so each pays the warmup penalty once per rebalance."""
        out: set[int] = set()
        for u in range(1, self.m + 1):
            out |= new.replicas(u) - self.replicas(u)
        return frozenset(out)

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> dict[str, list[int]]:
        return {str(u): [s, z] for u, (s, z) in sorted(self._intervals.items())}

    @staticmethod
    def from_dict(m: int, data: Mapping[str, Iterable[int]]) -> "IntervalPlacement":
        table = {int(u): (int(v[0]), int(v[1])) for u, v in ((u, list(v)) for u, v in data.items())}
        return IntervalPlacement(m, table)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntervalPlacement)
            and other.m == self.m
            and other._intervals == self._intervals
        )

    def __hash__(self) -> int:
        return hash((self.m, tuple(sorted(self._intervals.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IntervalPlacement(m={self.m}, k_max={self.k})"
