"""Versioned rebalance traces: every placement change, on the record.

Format (JSONL, one JSON document per line), sibling of the
``repro-trace`` schedule format::

    {"format": "repro-rebalance-trace", "version": 1, "m": 12,
     "policy": "adaptive", "scheduler": "eft-min", "seed": 7,
     "n_events": 3, "meta": {"spec": {...}, "config": {...},
     "faults": null, "digest": "..."}}
    {"version": 0, "time": 50.0, "triggered": false, ...}
    {"version": 1, "time": 100.0, "triggered": true,
     "changes": [[3, [3, 2], [3, 3]]], "added": [5], ...}

Every cadence check — triggered or not — is one event line, so a
trace pins the *absence* of placement changes as strictly as their
presence.  The header ``meta`` embeds the full dynamic workload spec,
controller config, fault schedule and the run's assignment digest, so
``repro replay`` can re-run the experiment from the trace's own bytes
and byte-compare the re-serialised trace (the same guarantee the
schedule traces give: floats via ``repr``, fixed key order, no
dict-order dependence).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .controller import RebalanceDecision

__all__ = [
    "REBALANCE_TRACE_FORMAT",
    "REBALANCE_TRACE_VERSION",
    "RebalanceTrace",
    "dump",
    "dumps",
    "load",
    "loads",
]

REBALANCE_TRACE_FORMAT = "repro-rebalance-trace"
REBALANCE_TRACE_VERSION = 1


@dataclass(frozen=True)
class RebalanceTrace:
    """A recorded rebalance run: every cadence decision plus the
    provenance needed to re-run it."""

    m: int
    policy: str
    scheduler: str
    seed: int
    decisions: tuple[RebalanceDecision, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        return len(self.decisions)

    @property
    def n_triggered(self) -> int:
        return sum(1 for d in self.decisions if d.triggered)

    @property
    def final_version(self) -> int:
        return self.decisions[-1].version if self.decisions else 0


def _event_line(d: RebalanceDecision) -> str:
    payload = {
        "version": d.version,
        "time": d.time,
        "triggered": d.triggered,
        "work_rate": d.work_rate,
        "lam_star": d.lam_star,
        "lam_star_after": d.lam_star_after,
        "changes": [[u, list(old), list(new)] for u, old, new in d.changes],
        "added": list(d.added),
    }
    return json.dumps(payload, separators=(", ", ": "))


def dumps(trace: RebalanceTrace) -> str:
    """Serialise to the JSONL format (ends with a newline)."""
    header = {
        "format": REBALANCE_TRACE_FORMAT,
        "version": REBALANCE_TRACE_VERSION,
        "m": trace.m,
        "policy": trace.policy,
        "scheduler": trace.scheduler,
        "seed": trace.seed,
        "n_events": trace.n_events,
        "meta": dict(trace.meta),
    }
    lines = [json.dumps(header, sort_keys=True, separators=(", ", ": "))]
    lines.extend(_event_line(d) for d in trace.decisions)
    return "\n".join(lines) + "\n"


def loads(text: str) -> RebalanceTrace:
    """Parse the JSONL format; inverse of :func:`dumps`."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty rebalance trace")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != REBALANCE_TRACE_FORMAT:
        raise ValueError(
            f"not a {REBALANCE_TRACE_FORMAT} file (header: {lines[0][:80]!r})"
        )
    version = header.get("version")
    if version != REBALANCE_TRACE_VERSION:
        raise ValueError(
            f"unsupported rebalance trace version {version!r} "
            f"(supported: {REBALANCE_TRACE_VERSION})"
        )
    decisions = []
    for ln in lines[1:]:
        d = json.loads(ln)
        decisions.append(
            RebalanceDecision(
                version=int(d["version"]),
                time=float(d["time"]),
                triggered=bool(d["triggered"]),
                work_rate=float(d["work_rate"]),
                lam_star=float(d["lam_star"]),
                lam_star_after=(
                    None if d["lam_star_after"] is None else float(d["lam_star_after"])
                ),
                changes=tuple(
                    (int(u), (int(old[0]), int(old[1])), (int(new[0]), int(new[1])))
                    for u, old, new in d["changes"]
                ),
                added=tuple(int(j) for j in d["added"]),
            )
        )
    n = header.get("n_events")
    if n is not None and n != len(decisions):
        raise ValueError(
            f"trace header declares n_events={n} but {len(decisions)} events follow"
        )
    return RebalanceTrace(
        m=int(header["m"]),
        policy=str(header.get("policy", "")),
        scheduler=str(header.get("scheduler", "")),
        seed=int(header.get("seed", 0)),
        decisions=tuple(decisions),
        meta=dict(header.get("meta", {})),
    )


def dump(trace: RebalanceTrace, path: str | Path) -> Path:
    """Write the trace to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps(trace))
    return path


def load(path: str | Path) -> RebalanceTrace:
    """Read a trace from disk."""
    return loads(Path(path).read_text())
