"""Windowed popularity estimation from observed arrivals.

The rebalance controller cannot see the workload generator's true
:math:`P(E_j)` — a live system only observes requests.  The estimator
feeds every admitted arrival ``(time, home, proc)`` into per-machine
:class:`repro.obs.recorders.TimeSeries` (so the raw evidence rides
along in metric snapshots) and reduces a sliding window of them to:

* :meth:`estimate` — the empirical popularity vector over the window,
  work-weighted (a machine requested by few but heavy tasks *is* hot);
  uniform when the window is empty (no evidence, no bias);
* :meth:`work_rate` — offered work per unit time over the window, the
  :math:`\\lambda \\bar p` the controller compares against the LP's
  :math:`\\lambda^*`.

Both are pure functions of the observation sequence, so two runs over
the same stream estimate identically — the determinism the versioned
rebalance trace relies on.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..obs.recorders import MetricsRegistry, TimeSeries

__all__ = ["PopularityEstimator"]


class PopularityEstimator:
    """Sliding-window popularity and offered-work estimates.

    Parameters
    ----------
    m:
        Cluster size.
    window:
        Length of the sliding window, in virtual time.  Estimates
        cover ``(now - window, now]`` (half-open at the old edge, so an
        observation exactly ``window`` old has just left).
    registry:
        Registry receiving the per-machine arrival series (a private
        one by default; pass the serve registry to expose the evidence
        in snapshots).
    """

    def __init__(
        self, m: int, window: float, registry: MetricsRegistry | None = None
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if window <= 0:
            raise ValueError("window must be > 0")
        self.m = m
        self.window = float(window)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._series: dict[int, TimeSeries] = {
            j: self.registry.series(f"rebalance_arrivals[{j}]") for j in range(1, m + 1)
        }
        self.n_observed = 0

    def observe(self, now: float, home: int, proc: float) -> None:
        """Record one arrival of ``proc`` work homed on ``home``.
        Times must be fed non-decreasing (the dispatch order)."""
        if not (1 <= home <= self.m):
            raise ValueError(f"home {home} outside 1..{self.m}")
        self._series[home].observe(now, proc)
        self.n_observed += 1

    def _window_work(self, series: TimeSeries, now: float) -> float:
        lo = bisect_right(series.times, now - self.window)
        hi = bisect_right(series.times, now)
        return float(sum(series.values[lo:hi]))

    def window_counts(self, now: float) -> np.ndarray:
        """Arrivals per machine inside the window (index ``j-1``)."""
        out = np.zeros(self.m)
        for j in range(1, self.m + 1):
            s = self._series[j]
            lo = bisect_right(s.times, now - self.window)
            hi = bisect_right(s.times, now)
            out[j - 1] = hi - lo
        return out

    def estimate(self, now: float) -> np.ndarray:
        """Empirical work-weighted popularity over the window — a
        probability vector directly consumable by the max-load LP.
        Uniform when the window holds no arrivals."""
        work = np.array([self._window_work(self._series[j], now) for j in range(1, self.m + 1)])
        total = work.sum()
        if total <= 0:
            return np.full(self.m, 1.0 / self.m)
        return work / total

    def work_rate(self, now: float) -> float:
        """Offered work per unit time over the window (the horizon is
        clipped to ``now`` early on, so the rate is not diluted before
        a full window of evidence exists)."""
        horizon = min(self.window, now)
        if horizon <= 0:
            return 0.0
        total = sum(self._window_work(self._series[j], now) for j in range(1, self.m + 1))
        return total / horizon

    def _first_time(self) -> float | None:  # pragma: no cover - debug aid
        times = [s.times[0] for s in self._series.values() if s.times]
        return min(times) if times else None
