"""The rebalance evaluation harness: workload → dispatch → decisions.

One virtual-clocked run wires everything together:

* a :class:`~repro.simulation.dynamics.DynamicWorkloadSpec` streams
  ``(release, home, size)`` arrivals — replica sets are resolved at
  dispatch time against the **live** placement, which is what makes
  re-replication visible to the workload at all;
* a :class:`~repro.serve.dispatcher.Dispatcher` (any named scheduler)
  places each request; machine faults kill/revive machines mid-run and
  queued work drains off dead machines with the engine's failure rule;
* under ``policy="adaptive"``, a
  :class:`~repro.rebalance.controller.RebalanceController` runs its
  cadence checks at the exact cadence instants (interleaved with fault
  transitions in time order, faults first on ties) and every triggered
  proposal is enacted through
  :meth:`~repro.serve.dispatcher.Dispatcher.apply_placement` — warmup
  charged, shrunk-away queued work migrated; under ``policy="static"``
  the placement never moves (the controller is absent entirely, so the
  static run is byte-identical to the pre-rebalance code path).

Everything is a pure function of ``(spec, policy, config, scheduler,
seed, faults)``: the run's decisions serialise to a versioned
:mod:`~repro.rebalance.events` trace whose header embeds all six, and
:func:`replay_rebalance` re-runs a trace from its own bytes and
byte-compares — the determinism contract of ``repro replay``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..campaigns.trace import make_scheduler
from ..core.task import Task
from ..faults.schedule import FaultSchedule
from ..serve.dispatcher import Dispatcher
from ..serve.driver import percentile
from ..serve.metrics import ServeMetrics
from ..simulation.dynamics import DynamicWorkloadSpec
from .controller import RebalanceConfig, RebalanceController
from .events import RebalanceTrace, dumps as dump_trace
from .placement import IntervalPlacement

__all__ = ["RebalanceResult", "replay_rebalance", "run_rebalance"]

POLICIES = ("static", "adaptive")


@dataclass(frozen=True)
class RebalanceResult:
    """Outcome of one harness run."""

    policy: str
    scheduler: str
    seed: int
    n: int
    flow: dict[str, float]  #: p50/p95/p99/max of analytic flow times
    digest: str  #: sha256 over the final ``tid:machine`` assignments
    n_rebalances: int
    n_migrated: int
    n_requeued: int
    final_version: int
    trace: RebalanceTrace
    metrics: dict[str, Any]  #: registry snapshot of the run


def _assignments_digest(placements: Mapping[int, tuple[int, float]]) -> str:
    """sha256 over ``tid:machine`` lines in tid order — the same
    fingerprint discipline as the serve driver's report digest."""
    h = hashlib.sha256()
    for tid in sorted(placements):
        h.update(f"{tid}:{placements[tid][0]}\n".encode())
    return h.hexdigest()


def _drain_dead(dispatcher: Dispatcher, machine: int, now: float) -> None:
    """Move queued-but-unstarted work off a freshly killed machine with
    the engine's failure rule (started work finishes in place — the
    drain-then-die semantics of the serve tier)."""
    doomed = [
        tid
        for tid, (j, start) in sorted(dispatcher.placements.items())
        if j == machine and start > now
    ]
    for tid in doomed:
        task = dispatcher.withdraw(tid, now)
        if task is not None:
            dispatcher.redispatch(task, now, reason="failure")


def run_rebalance(
    spec: DynamicWorkloadSpec,
    policy: str = "adaptive",
    config: RebalanceConfig | None = None,
    scheduler: str = "eft-min",
    seed: int = 0,
    faults: FaultSchedule | None = None,
) -> RebalanceResult:
    """Run one workload under a static or adaptive placement."""
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
    config = config if config is not None else RebalanceConfig()
    stream = spec.stream(np.random.default_rng(seed))
    placement = IntervalPlacement.from_strategy(spec.replication())
    metrics = ServeMetrics()
    dispatcher = Dispatcher(make_scheduler(scheduler, spec.m, seed=seed), metrics=metrics)
    controller = (
        RebalanceController(placement, config=config) if policy == "adaptive" else None
    )
    fault_events = list(faults.events()) if faults is not None else []
    fi = 0

    def current_placement() -> IntervalPlacement:
        return controller.placement if controller is not None else placement

    def advance(until: float) -> None:
        """Process fault transitions and cadence checks owed at or
        before ``until``, in time order (faults first on ties — a
        cadence check sees the cluster state of its instant)."""
        nonlocal fi
        while True:
            fault_t = fault_events[fi][0] if fi < len(fault_events) else None
            check_t = (
                controller.next_due
                if controller is not None and controller.due(until)
                else None
            )
            take_fault = fault_t is not None and fault_t <= until and (
                check_t is None or fault_t <= check_t
            )
            if take_fault:
                t, kind, j = fault_events[fi]
                fi += 1
                if not (1 <= j <= spec.m):
                    continue
                if kind == "down":
                    dispatcher.kill(j)
                    _drain_dead(dispatcher, j, t)
                else:
                    dispatcher.revive(j, t)
                continue
            if check_t is not None and check_t <= until:
                old_sets = controller.placement.sets()
                decision = controller.step(check_t)
                if decision.triggered:
                    dispatcher.apply_placement(
                        old_sets,
                        controller.placement.sets(),
                        check_t,
                        warmup=config.warmup,
                        version=decision.version,
                    )
                continue
            break

    for i in range(stream.n):
        release = float(stream.releases[i])
        home = int(stream.homes[i])
        proc = float(stream.sizes[i])
        advance(release)
        task = Task(
            tid=i,
            release=release,
            proc=proc,
            machines=current_placement().replicas(home),
            key=home,
        )
        dispatcher.submit(task)
        if controller is not None:
            controller.observe(release, home, proc)

    flows = [
        dispatcher.placements[tid][1] + dispatcher._tasks[tid].proc - dispatcher._tasks[tid].release
        for tid in sorted(dispatcher.placements)
    ]
    flow = (
        {
            "p50": percentile(flows, 0.50),
            "p95": percentile(flows, 0.95),
            "p99": percentile(flows, 0.99),
            "max": max(flows),
            "mean": sum(flows) / len(flows),
        }
        if flows
        else {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0, "mean": 0.0}
    )
    digest = _assignments_digest(dispatcher.placements)
    decisions = tuple(controller.decisions) if controller is not None else ()
    trace = RebalanceTrace(
        m=spec.m,
        policy=policy,
        scheduler=scheduler,
        seed=seed,
        decisions=decisions,
        meta={
            "spec": spec.to_dict(),
            "config": config.to_dict(),
            "faults": None if faults is None else faults.to_json().strip(),
            "digest": digest,
        },
    )
    return RebalanceResult(
        policy=policy,
        scheduler=scheduler,
        seed=seed,
        n=stream.n,
        flow=flow,
        digest=digest,
        n_rebalances=sum(1 for d in decisions if d.triggered),
        n_migrated=sum(
            1 for d in dispatcher.decisions if d.reason == "rebalance"
        ),
        n_requeued=dispatcher.n_requeued,
        final_version=controller.version if controller is not None else 0,
        trace=trace,
        metrics=metrics.registry.snapshot(),
    )


def replay_rebalance(trace: RebalanceTrace) -> tuple[RebalanceResult, bool]:
    """Re-run a recorded rebalance experiment from its header meta.

    Returns the fresh result and whether its re-serialised trace is
    byte-identical to the input — the determinism check behind
    ``repro replay`` on rebalance traces.
    """
    meta = trace.meta
    spec = DynamicWorkloadSpec.from_dict(meta["spec"])
    config = RebalanceConfig.from_dict(meta.get("config") or {})
    faults_doc = meta.get("faults")
    faults = FaultSchedule.from_json(faults_doc) if faults_doc else None
    result = run_rebalance(
        spec,
        policy=trace.policy,
        config=config,
        scheduler=trace.scheduler,
        seed=trace.seed,
        faults=faults,
    )
    return result, dump_trace(result.trace) == dump_trace(trace)
