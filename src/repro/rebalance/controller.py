"""The LP-driven rebalance control loop.

The paper's Equation (15) LP computes, for a popularity vector and a
placement, the largest arrival rate :math:`\\lambda^*` the cluster can
absorb.  Offline that is Figure 10; *online* it is a saturation
signal: estimate the popularity from what actually arrived, solve the
LP against the **live** placement, and compare the observed offered
work rate against :math:`\\lambda^*`.  When the observed rate climbs
past ``headroom * lambda^*`` the placement is about to saturate, and
the controller proposes a new one.

The proposal search is deliberately small and deterministic — a
greedy widen loop.  Each round picks the home with the highest
*pressure* (estimated popularity divided by current replica count,
i.e. the per-replica share of its work; ties to the smallest home) and
extends its interval one machine clockwise, re-solving the LP (cached,
:func:`repro.maxload.max_load_lp_cached`) until the headroom test
passes or ``max_rounds``/``max_k`` bounds the growth.  Every proposal
stays inside the paper's consecutive-interval family by construction
(:class:`~repro.rebalance.placement.IntervalPlacement`), so the
Section 5/6 structure results keep applying to the *rebalanced*
system.  Optionally, a ``low_water`` mark narrows the coldest
oversized home when utilisation falls far below capacity — hysteresis
(``low_water < headroom``) keeps widen/narrow from oscillating.

The controller only *proposes*; enacting a proposal (migrating queued
work, charging warmup) is the serve layer's ``apply_placement``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..maxload.lp import max_load_lp_cached
from .estimator import PopularityEstimator
from .placement import IntervalPlacement

__all__ = ["RebalanceConfig", "RebalanceController", "RebalanceDecision"]


@dataclass(frozen=True)
class RebalanceConfig:
    """Tuning of the control loop.

    ``headroom`` is the trigger fraction: rebalance when the observed
    work rate exceeds ``headroom * lambda*`` (0.8 = act at 80 % of LP
    capacity).  ``math.inf`` (or any huge value) disables triggering
    while keeping the cadence observable — the no-trigger path the
    byte-identity tests pin.  ``warmup`` is the virtual-time penalty a
    newly added replica pays before serving (a setup time in the sense
    of Mäcker et al.).
    """

    cadence: float = 50.0
    window: float = 100.0
    headroom: float = 0.8
    warmup: float = 5.0
    max_k: int | None = None
    max_rounds: int = 8
    low_water: float | None = None

    def __post_init__(self) -> None:
        if self.cadence <= 0:
            raise ValueError("cadence must be > 0")
        if self.window <= 0:
            raise ValueError("window must be > 0")
        if self.headroom <= 0:
            raise ValueError("headroom must be > 0")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.low_water is not None and not (0 < self.low_water < self.headroom):
            raise ValueError("low_water must lie in (0, headroom)")

    def to_dict(self) -> dict[str, Any]:
        return {
            "cadence": self.cadence,
            "window": self.window,
            "headroom": self.headroom,
            "warmup": self.warmup,
            "max_k": self.max_k,
            "max_rounds": self.max_rounds,
            "low_water": self.low_water,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RebalanceConfig":
        return RebalanceConfig(
            cadence=float(data.get("cadence", 50.0)),
            window=float(data.get("window", 100.0)),
            headroom=float(data.get("headroom", 0.8)),
            warmup=float(data.get("warmup", 5.0)),
            max_k=None if data.get("max_k") is None else int(data["max_k"]),
            max_rounds=int(data.get("max_rounds", 8)),
            low_water=None if data.get("low_water") is None else float(data["low_water"]),
        )


@dataclass(frozen=True)
class RebalanceDecision:
    """Outcome of one cadence check — triggered or not, every check is
    a versioned trace event, so replay can verify the *absence* of
    placement changes too."""

    version: int  #: placement version after this decision
    time: float
    triggered: bool
    work_rate: float
    lam_star: float  #: LP capacity of the placement entering the check
    lam_star_after: float | None  #: capacity of the proposal (triggered only)
    changes: tuple[tuple[int, tuple[int, int], tuple[int, int]], ...]
    added: tuple[int, ...]  #: machines owing warmup

    @property
    def n_changed(self) -> int:
        return len(self.changes)


class RebalanceController:
    """Cadenced estimate → solve → propose loop over a live placement.

    The controller owns the authoritative placement (``.placement``)
    and its monotone ``.version``; the serve layer reads the proposal
    off each triggered :class:`RebalanceDecision` and enacts it.
    """

    def __init__(
        self,
        placement: IntervalPlacement,
        config: RebalanceConfig | None = None,
        estimator: PopularityEstimator | None = None,
    ) -> None:
        self.config = config if config is not None else RebalanceConfig()
        self.placement = placement
        self.estimator = (
            estimator
            if estimator is not None
            else PopularityEstimator(placement.m, self.config.window)
        )
        if self.estimator.m != placement.m:
            raise ValueError(
                f"estimator has m={self.estimator.m}, placement has m={placement.m}"
            )
        self.version = 0
        self.decisions: list[RebalanceDecision] = []
        self._next_due = self.config.cadence

    # -- observation ----------------------------------------------------------
    def observe(self, now: float, home: int, proc: float) -> None:
        """Feed one admitted arrival (dispatch order)."""
        self.estimator.observe(now, home, proc)

    def due(self, now: float) -> bool:
        """Whether a cadence check is owed at or before ``now``."""
        return now >= self._next_due

    @property
    def next_due(self) -> float:
        """Virtual time of the next owed cadence check."""
        return self._next_due

    # -- the control step ------------------------------------------------------
    def step(self, now: float) -> RebalanceDecision:
        """Run one cadence check at ``now``.  Always returns a
        decision (``triggered=False`` when the placement holds); the
        next check is owed one cadence after this one's slot."""
        while self._next_due <= now:
            self._next_due += self.config.cadence
        weights = self.estimator.estimate(now)
        rate = self.estimator.work_rate(now)
        base = max_load_lp_cached(weights, self.placement)
        proposal = self._propose(weights, rate, base.lam)
        if proposal is None:
            decision = RebalanceDecision(
                version=self.version,
                time=now,
                triggered=False,
                work_rate=rate,
                lam_star=base.lam,
                lam_star_after=None,
                changes=(),
                added=(),
            )
            self.decisions.append(decision)
            return decision
        new_placement, lam_after = proposal
        changes = tuple(self.placement.diff(new_placement))
        added = tuple(sorted(self.placement.added_machines(new_placement)))
        self.version += 1
        self.placement = new_placement
        decision = RebalanceDecision(
            version=self.version,
            time=now,
            triggered=True,
            work_rate=rate,
            lam_star=base.lam,
            lam_star_after=lam_after,
            changes=changes,
            added=added,
        )
        self.decisions.append(decision)
        return decision

    def _propose(
        self, weights: np.ndarray, rate: float, lam_base: float
    ) -> tuple[IntervalPlacement, float] | None:
        """Greedy proposal, or ``None`` when the placement holds."""
        cfg = self.config
        if rate > cfg.headroom * lam_base:
            return self._widen(weights, rate, lam_base)
        if cfg.low_water is not None and rate < cfg.low_water * lam_base:
            return self._narrow(weights, rate)
        return None

    def _widen(
        self, weights: np.ndarray, rate: float, lam_base: float
    ) -> tuple[IntervalPlacement, float] | None:
        cfg = self.config
        cap = min(self.placement.m, cfg.max_k) if cfg.max_k is not None else self.placement.m
        cur = self.placement
        lam_cur = lam_base
        improved = False
        for _ in range(cfg.max_rounds):
            candidates = [
                u for u in range(1, cur.m + 1) if cur.interval(u)[1] < cap
            ]
            if not candidates:
                break
            # Hottest per-replica share first; smallest home on ties.
            u = max(candidates, key=lambda h: (weights[h - 1] / cur.interval(h)[1], -h))
            nxt = cur.widen(u)
            lam_next = max_load_lp_cached(weights, nxt).lam
            if lam_next <= lam_cur + 1e-12:
                break
            cur, lam_cur, improved = nxt, lam_next, True
            if rate <= cfg.headroom * lam_cur:
                break
        return (cur, lam_cur) if improved else None

    def _narrow(
        self, weights: np.ndarray, rate: float
    ) -> tuple[IntervalPlacement, float] | None:
        cfg = self.config
        cur = self.placement
        # Coldest over-replicated home; largest interval on ties.
        candidates = [u for u in range(1, cur.m + 1) if cur.interval(u)[1] > 1]
        if not candidates:
            return None
        u = min(candidates, key=lambda h: (weights[h - 1] / cur.interval(h)[1], -cur.interval(h)[1], h))
        nxt = cur.narrow(u)
        lam_next = max_load_lp_cached(weights, nxt).lam
        # Only shed the replica if the shrunk placement still clears
        # the headroom test — narrowing must never cause the next
        # check to immediately widen back.
        if rate > cfg.headroom * lam_next:
            return None
        return (nxt, lam_next)
