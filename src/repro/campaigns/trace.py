"""Versioned workload traces: record, load, replay.

A *trace* captures everything needed to rerun a scheduling experiment
bit-for-bit: every task's ``(tid, release, proc, machine_set, key)``
plus the placement ``(machine, start)`` the recorded scheduler chose.
Any immediate-dispatch scheduler can then :func:`replay_into` the same
workload — the apples-to-apples comparison setup of the SRPT and
unrelated-machines baselines in PAPERS.md — and the recorded
placements double as a regression fixture (see
:mod:`repro.campaigns.goldens`).

Format (JSONL, one JSON document per line)::

    {"format": "repro-trace", "version": 1, "m": 4, "scheduler": "EFT-Min",
     "n": 2, "meta": {...}}
    {"tid": 0, "release": 0.0, "proc": 1.0, "machine_set": [1, 2],
     "key": null, "machine": 1, "start": 0.0}
    {"tid": 1, ...}

Guarantees:

* **round trip** — ``loads(dumps(t)) == t`` and ``dumps(loads(s)) == s``
  for any trace ``s`` produced by :func:`dumps` (floats are emitted
  with ``repr``, which round-trips IEEE doubles exactly);
* **stable bytes** — the line layout is fixed (no hash randomisation,
  no dict-order dependence), so equal traces serialise to equal bytes,
  which is what lets golden traces assert byte-identical placements.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.schedule import Schedule
from ..core.task import Instance, Task

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceRecord",
    "dump",
    "dumps",
    "load",
    "loads",
    "make_scheduler",
    "record",
    "replay_into",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceRecord:
    """One task of a trace: the workload fields plus the recorded
    placement.  ``machine_set`` is a sorted tuple of 1-based machine
    indices, or ``None`` for an unrestricted task."""

    tid: int
    release: float
    proc: float
    machine_set: tuple[int, ...] | None
    key: int | None
    machine: int
    start: float

    def task(self) -> Task:
        """The workload task (placement stripped)."""
        machines = None if self.machine_set is None else frozenset(self.machine_set)
        return Task(tid=self.tid, release=self.release, proc=self.proc, machines=machines, key=self.key)


@dataclass(frozen=True)
class Trace:
    """A recorded schedule: workload plus placements plus provenance."""

    m: int
    scheduler: str
    records: tuple[TraceRecord, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.records)

    def instance(self) -> Instance:
        """The workload as an :class:`Instance` (placements stripped)."""
        return Instance(m=self.m, tasks=tuple(r.task() for r in self.records))

    def schedule(self) -> Schedule:
        """The recorded schedule, reconstructed and validated."""
        placements = {r.tid: (r.machine, r.start) for r in self.records}
        sched = Schedule(self.instance(), placements)
        sched.validate()
        return sched


def record(
    schedule: Schedule, scheduler: str = "", meta: Mapping[str, Any] | None = None
) -> Trace:
    """Capture ``schedule`` (workload + placements) as a trace.

    Records are emitted in release order — the order any online
    scheduler observes the tasks.
    """
    records = tuple(
        TraceRecord(
            tid=t.tid,
            release=float(t.release),
            proc=float(t.proc),
            machine_set=None if t.machines is None else tuple(sorted(t.machines)),
            key=t.key,
            machine=schedule[t.tid].machine,
            start=float(schedule[t.tid].start),
        )
        for t in schedule.instance
    )
    return Trace(
        m=schedule.m, scheduler=scheduler, records=records, meta=dict(meta or {})
    )


def _record_line(r: TraceRecord) -> str:
    payload = {
        "tid": r.tid,
        "release": r.release,
        "proc": r.proc,
        "machine_set": None if r.machine_set is None else list(r.machine_set),
        "key": r.key,
        "machine": r.machine,
        "start": r.start,
    }
    return json.dumps(payload, separators=(", ", ": "))


def dumps(trace: Trace) -> str:
    """Serialise to the JSONL format (ends with a newline)."""
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "m": trace.m,
        "scheduler": trace.scheduler,
        "n": trace.n,
        "meta": dict(trace.meta),
    }
    lines = [json.dumps(header, sort_keys=True, separators=(", ", ": "))]
    lines.extend(_record_line(r) for r in trace.records)
    return "\n".join(lines) + "\n"


def loads(text: str) -> Trace:
    """Parse the JSONL format; inverse of :func:`dumps`."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty trace")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(f"not a {TRACE_FORMAT} file (header: {lines[0][:80]!r})")
    version = header.get("version")
    if version != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {version!r} (supported: {TRACE_VERSION})")
    records = []
    for ln in lines[1:]:
        d = json.loads(ln)
        records.append(
            TraceRecord(
                tid=int(d["tid"]),
                release=float(d["release"]),
                proc=float(d["proc"]),
                machine_set=None if d["machine_set"] is None else tuple(int(j) for j in d["machine_set"]),
                key=d.get("key"),
                machine=int(d["machine"]),
                start=float(d["start"]),
            )
        )
    n = header.get("n")
    if n is not None and n != len(records):
        raise ValueError(f"trace header declares n={n} but {len(records)} records follow")
    return Trace(
        m=int(header["m"]),
        scheduler=str(header.get("scheduler", "")),
        records=tuple(records),
        meta=dict(header.get("meta", {})),
    )


def dump(trace: Trace, path: str | Path) -> Path:
    """Write the trace to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps(trace))
    return path


def load(path: str | Path) -> Trace:
    """Read a trace from disk."""
    return loads(Path(path).read_text())


def replay_into(scheduler: ImmediateDispatchScheduler, trace: Trace) -> Schedule:
    """Replay the trace's workload through a **fresh** scheduler.

    Tasks are submitted in release order, exactly as the recorded run
    observed them; the trace's placements are ignored — only the
    workload is replayed.  Returns the schedule the scheduler
    produced; compare with ``trace.schedule().same_placements(...)``
    to check reproduction.
    """
    if scheduler.m != trace.m:
        raise ValueError(f"trace has m={trace.m}, scheduler has m={scheduler.m}")
    if scheduler.n_dispatched:
        raise ValueError("replay_into needs a fresh scheduler (tasks already dispatched)")
    return scheduler.run(trace.instance())


def make_scheduler(name: str, m: int, seed: int | None = 0) -> ImmediateDispatchScheduler:
    """Build a named immediate-dispatch scheduler for replay.

    Delegates to the :mod:`repro.schedulers` registry, so every zoo
    policy (``eft-min``, ``eft-max``, ``eft-rand``, ``least-work``,
    ``round-robin``, ``random``, ``lor``, ``c3``, ``srpt-ps``,
    ``nc-setup``, ``speed-eft``, plus anything registered at runtime)
    resolves here; the recorded display spellings (``EFT-Min`` etc.)
    are accepted too.
    """
    # Function-level import: campaigns is a lower layer than the zoo
    # package, which itself builds campaign units.
    from ..schedulers.registry import get_scheduler

    return get_scheduler(name, m, seed=seed)
