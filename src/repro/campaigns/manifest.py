"""Run manifests: what ran, from which spec, on which code, how long.

A manifest is written next to a campaign's results and makes the run
reproducible after the fact: it pins the spec hash (so a later rerun
can prove it executed the same units), the git revision of the code,
wall-clock timings, worker count and the per-unit statuses (executed /
cached / failed with durations).
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .runner import CampaignResult

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "RunManifest",
    "build_manifest",
    "git_describe",
    "load_manifest",
    "write_manifest",
]

MANIFEST_FORMAT = "repro-manifest"
#: v3 added ``n_interrupted`` / ``interrupted`` and per-unit
#: ``attempts`` (retry accounting) — a v3 manifest with
#: ``interrupted: true`` is the resume point of ``campaign --resume``;
#: v2 added the ``timings`` span table (runner wall-clock breakdown);
#: v1 files load with empty timings.
MANIFEST_VERSION = 3


def git_describe(cwd: str | Path | None = None) -> str:
    """``git describe --always --dirty`` of the working tree, or
    ``"unknown"`` outside a repository / without git."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() or "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Provenance record of one campaign invocation."""

    campaign: str
    spec_hash: str
    git: str
    started_at: str  # ISO-8601 UTC
    wall_time: float
    n_jobs: int
    n_units: int
    n_executed: int
    n_cached: int
    n_failed: int
    units: tuple[Mapping[str, Any], ...]  # {hash, label, status, duration, attempts}
    #: distinct units left unresolved by an interrupted run (v3).
    n_interrupted: int = 0
    #: True when the run was cut short — this manifest is partial and
    #: is the input of ``repro campaign --resume`` (v3).
    interrupted: bool = False
    meta: Mapping[str, Any] = field(default_factory=dict)
    #: runner span totals in seconds (cache_lookup / execute /
    #: unit_execute) — see :class:`repro.campaigns.runner.CampaignResult`.
    timings: Mapping[str, float] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"format": MANIFEST_FORMAT, "version": MANIFEST_VERSION}
        payload.update(asdict(self))
        payload["units"] = [dict(u) for u in self.units]
        payload["meta"] = dict(self.meta)
        payload["timings"] = dict(self.timings)
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def build_manifest(
    result: CampaignResult, started_at: float | None = None
) -> RunManifest:
    """Build a manifest from a finished :class:`CampaignResult`.

    ``started_at`` is a POSIX timestamp (defaults to "now minus the
    run's wall time").
    """
    if started_at is None:
        started_at = time.time() - result.wall_time
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(started_at))
    return RunManifest(
        campaign=result.spec.name,
        spec_hash=result.spec.spec_hash(),
        git=git_describe(),
        started_at=stamp,
        wall_time=round(result.wall_time, 6),
        n_jobs=result.n_jobs,
        n_units=len(result.outcomes),
        n_executed=result.n_executed,
        n_cached=result.n_cached,
        n_failed=result.n_failed,
        n_interrupted=result.n_interrupted,
        interrupted=result.interrupted,
        units=tuple(
            {
                "hash": o.unit_hash,
                "label": o.unit.label,
                "status": o.status,
                "duration": round(o.duration, 6),
                "attempts": o.attempts,
            }
            for o in result.outcomes
        ),
        meta=dict(result.spec.meta),
        timings=dict(result.timings),
    )


def write_manifest(manifest: RunManifest, path: str | Path) -> Path:
    """Write the manifest as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(manifest.to_json())
    return path


def load_manifest(path: str | Path) -> RunManifest:
    """Read a manifest back; validates format and version."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"not a {MANIFEST_FORMAT} file: {path}")
    if data.get("version") not in (1, 2, MANIFEST_VERSION):
        raise ValueError(f"unsupported manifest version {data.get('version')!r}")
    fields = {k: data[k] for k in (
        "campaign", "spec_hash", "git", "started_at", "wall_time", "n_jobs",
        "n_units", "n_executed", "n_cached", "n_failed",
    )}
    return RunManifest(
        units=tuple(data.get("units", ())),
        meta=dict(data.get("meta", {})),
        timings=dict(data.get("timings", {})),  # absent in v1 files
        n_interrupted=int(data.get("n_interrupted", 0)),  # pre-v3 files
        interrupted=bool(data.get("interrupted", False)),
        **fields,
    )
