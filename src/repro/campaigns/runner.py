"""Parallel campaign execution with crash isolation and retry.

:func:`run_campaign` takes a :class:`~repro.campaigns.spec.CampaignSpec`
and executes its units on worker processes (``n_jobs=1`` with no
timeout/retry runs serially in-process — no pool, easier to debug and
profile).  Results are deterministic and independent of worker count or
completion order: they are re-assembled in unit order, and every unit
carries its own seed, so

    ``run_campaign(spec, n_jobs=1) == run_campaign(spec, n_jobs=8)``

for any pure unit executor.  With a :class:`ResultCache`, units whose
content hash is already on disk are served from cache without
executing; identical units within one spec execute once.

Resilience (the degraded-operation contract):

* **crash isolation** — every unit runs in its *own* worker process;
  a unit that raises, calls ``os._exit`` or is SIGKILLed yields a
  ``failed`` outcome for that unit only, never aborts the pool (the
  classic ``multiprocessing.Pool`` would hang or poison neighbours);
* **per-unit wall-clock timeout** (``timeout=``) — hung units are
  terminated and reported as failed;
* **bounded retry with exponential backoff** (``retry=``) — failed
  attempts are re-queued after a deterministic delay
  (:meth:`RetryPolicy.delay` derives its jitter from the unit hash and
  attempt number via :func:`~repro.campaigns.spec.stable_seed`, so a
  seeded campaign retries on the same schedule every run);
* **interruption with a usable partial state** — SIGINT raises
  :class:`CampaignInterrupted` carrying a valid partial
  :class:`CampaignResult` (finished units are already in the cache),
  from which the CLI flushes a partial manifest; re-running the same
  spec against the same cache resumes exactly where it stopped.
"""

from __future__ import annotations

import heapq
import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from ..obs.spans import SpanSet
from .cache import ResultCache
from .spec import CampaignSpec, Unit, get_unit_kind, stable_seed

__all__ = [
    "CampaignError",
    "CampaignInterrupted",
    "CampaignResult",
    "RetryPolicy",
    "UnitOutcome",
    "run_campaign",
]

#: ``progress(done, total, outcome)`` — called after every unit resolves.
ProgressCallback = Callable[[int, int, "UnitOutcome"], None]


class CampaignError(RuntimeError):
    """Raised when one or more units fail and ``raise_on_error`` is set."""


class CampaignInterrupted(RuntimeError):
    """Raised when the run is interrupted (SIGINT / KeyboardInterrupt).

    Carries the partial :class:`CampaignResult`: every resolved unit
    keeps its outcome, unresolved units are marked ``"interrupted"``.
    Executed units are already in the cache, so re-running the same
    spec with the same cache resumes from where the run stopped.
    """

    def __init__(self, result: "CampaignResult") -> None:
        super().__init__(
            f"campaign {result.spec.name} interrupted with "
            f"{result.n_interrupted} unit(s) unresolved"
        )
        self.result = result


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attempt ``a`` (1-based count of failures so far) is re-queued after
    ``min(backoff * 2**(a-1), max_backoff) * (1 + jitter * u)`` seconds,
    where ``u in [0, 1)`` is derived from the unit hash and attempt via
    :func:`stable_seed` — decorrelated across units, identical across
    runs.
    """

    retries: int = 0
    backoff: float = 0.25
    max_backoff: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0 or self.max_backoff < 0 or self.jitter < 0:
            raise ValueError("backoff, max_backoff and jitter must be >= 0")

    def delay(self, unit_hash: str, attempt: int) -> float:
        """Deterministic delay before retrying ``unit_hash`` after its
        ``attempt``-th failure."""
        base = min(self.backoff * 2 ** (attempt - 1), self.max_backoff)
        frac = (stable_seed(unit_hash, attempt) % 10_000) / 10_000.0
        return base * (1.0 + self.jitter * frac)


@dataclass(frozen=True)
class UnitOutcome:
    """How one unit was resolved.

    ``status`` is ``"executed"`` (ran in this invocation), ``"cached"``
    (served from the on-disk cache), ``"failed"`` (executor raised,
    worker crashed, or timed out — ``error`` holds the rendered cause)
    or ``"interrupted"`` (the campaign was stopped before the unit
    resolved).  ``attempts`` counts execution attempts (> 1 after
    retries; 0 for cached/interrupted units).
    """

    unit: Unit
    unit_hash: str
    status: str
    result: Mapping[str, Any] | None = None
    error: str | None = None
    duration: float = 0.0
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in ("executed", "cached")


@dataclass
class CampaignResult:
    """Outcome of a whole campaign run, in unit order.

    ``timings`` holds the runner's wall-clock span totals (seconds):
    ``cache_lookup`` (cache scan), ``execute`` (dispatch + absorb of
    missing units) and ``unit_execute`` (sum of worker-side unit
    durations, cache hits excluded).  They are provenance, not data —
    the manifest records them; the deterministic ``--metrics`` snapshot
    does not.
    """

    spec: CampaignSpec
    outcomes: list[UnitOutcome] = field(default_factory=list)
    n_jobs: int = 1
    wall_time: float = 0.0
    timings: dict[str, float] = field(default_factory=dict)
    #: True when the run was cut short (SIGINT); unresolved units carry
    #: status ``"interrupted"`` and the manifest written from this
    #: result is the resume point.
    interrupted: bool = False

    def _count(self, status: str) -> int:
        # Count distinct units: duplicates share one execution/cache hit,
        # so they must not inflate the work counters.
        return len({o.unit_hash for o in self.outcomes if o.status == status})

    @property
    def n_executed(self) -> int:
        return self._count("executed")

    @property
    def n_cached(self) -> int:
        return self._count("cached")

    @property
    def n_failed(self) -> int:
        return self._count("failed")

    @property
    def n_interrupted(self) -> int:
        return self._count("interrupted")

    @property
    def all_cached(self) -> bool:
        """Whether the run did no work at all (every unit was a hit)."""
        return bool(self.outcomes) and self.n_cached == len(
            {o.unit_hash for o in self.outcomes}
        )

    def results(self) -> list[Mapping[str, Any]]:
        """Unit results in unit order; raises if any unit failed."""
        bad = [o for o in self.outcomes if not o.ok]
        if bad:
            raise CampaignError(
                f"{len(bad)} unit(s) failed; first: "
                f"{bad[0].unit.label or bad[0].unit_hash}: {bad[0].error}"
            )
        return [o.result for o in self.outcomes]  # type: ignore[misc]

    def failures(self) -> list[UnitOutcome]:
        """Failed outcomes in unit order (distinct hashes may repeat
        through duplicate units)."""
        return [o for o in self.outcomes if o.status == "failed"]

    def summary(self) -> str:
        """One-line human summary for CLI output and logs."""
        tail = f", {self.n_interrupted} interrupted" if self.interrupted else ""
        return (
            f"campaign {self.spec.name} [{self.spec.spec_hash()}]: "
            f"{len(self.outcomes)} units — {self.n_executed} executed, "
            f"{self.n_cached} cached, {self.n_failed} failed{tail} "
            f"({self.wall_time:.2f}s, {self.n_jobs} job(s))"
        )


def _execute_payload(payload: tuple[str, dict, int, str]) -> tuple[str, str, Any, float]:
    """Run one unit in the current process, never raise.

    Returns ``(unit_hash, status, result_or_error, duration)`` where
    status is ``"ok"`` or ``"error"``.  Module-level so it pickles
    under any multiprocessing start method.
    """
    kind, params, seed, unit_hash = payload
    t0 = time.perf_counter()
    try:
        fn = get_unit_kind(kind)
        result = fn(params, seed)
        return unit_hash, "ok", dict(result), time.perf_counter() - t0
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        err = f"{type(exc).__name__}: {exc}"
        return unit_hash, "error", err, time.perf_counter() - t0


def _unit_worker(payload: tuple[str, dict, int, str], conn) -> None:
    """Isolated-worker entry point: execute one unit and ship the
    outcome over ``conn``.  A crash (``os._exit``, SIGKILL, segfault)
    simply closes the pipe — the parent observes the empty pipe plus
    the exit code and records a failure for this unit alone."""
    conn.send(_execute_payload(payload))
    conn.close()


@dataclass
class _Running:
    """Parent-side bookkeeping for one in-flight worker."""

    proc: multiprocessing.Process
    conn: multiprocessing.connection.Connection
    payload: tuple[str, dict, int, str]
    attempt: int  # 1-based attempt number this execution is
    started: float  # time.monotonic() at launch
    deadline: float | None  # monotonic instant the timeout strikes


def _resolve_jobs(n_jobs: int | None, n_pending: int) -> int:
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or None, got {n_jobs}")
    return max(1, min(n_jobs, n_pending))


def _reap(item: _Running, timeout: float | None) -> tuple[str, str, Any, float]:
    """Collect the outcome of a finished (or killed) worker."""
    unit_hash = item.payload[3]
    elapsed = time.monotonic() - item.started
    raw = None
    try:
        if item.conn.poll():
            raw = item.conn.recv()
    except (EOFError, OSError):
        raw = None  # pipe torn mid-send: treat as a crash
    finally:
        item.conn.close()
    item.proc.join()
    if raw is not None:
        return raw
    return (
        unit_hash,
        "error",
        f"worker crashed (exit code {item.proc.exitcode})",
        elapsed,
    )


def _kill(item: _Running) -> None:
    """Terminate a worker (timeout or interrupt), escalating to SIGKILL."""
    item.proc.terminate()
    item.proc.join(timeout=5.0)
    if item.proc.is_alive():  # pragma: no cover - stubborn worker
        item.proc.kill()
        item.proc.join()
    try:
        item.conn.close()
    except OSError:  # pragma: no cover - already closed
        pass


def _run_isolated(
    payloads: list[tuple[str, dict, int, str]],
    jobs: int,
    timeout: float | None,
    retry: RetryPolicy,
    absorb: Callable[[tuple[str, str, Any, float], int], None],
) -> None:
    """Process-per-unit pool: launch up to ``jobs`` workers, reap by
    sentinel, enforce deadlines, schedule retries.  Calls ``absorb(raw,
    attempts)`` in the parent as each unit finally resolves.  On
    KeyboardInterrupt, kills every worker and re-raises with the set of
    resolved hashes intact (the caller marks the rest interrupted)."""
    ctx = multiprocessing.get_context()
    ready: deque[tuple[tuple[str, dict, int, str], int]] = deque(
        (p, 1) for p in payloads
    )
    delayed: list[tuple[float, int, tuple[str, dict, int, str], int]] = []
    delayed_seq = 0  # tie-break so heap never compares payloads
    running: dict[Any, _Running] = {}

    def _finish(item: _Running) -> None:
        nonlocal delayed_seq
        raw = _reap(item, timeout)
        if raw[1] == "error" and item.attempt <= retry.retries:
            when = time.monotonic() + retry.delay(raw[0], item.attempt)
            heapq.heappush(delayed, (when, delayed_seq, item.payload, item.attempt + 1))
            delayed_seq += 1
            return
        absorb(raw, item.attempt)

    try:
        while ready or delayed or running:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, _, payload, attempt = heapq.heappop(delayed)
                ready.append((payload, attempt))
            while ready and len(running) < jobs:
                payload, attempt = ready.popleft()
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_unit_worker, args=(payload, send))
                proc.start()
                send.close()  # child holds the write end now
                launched = time.monotonic()
                running[proc.sentinel] = _Running(
                    proc=proc,
                    conn=recv,
                    payload=payload,
                    attempt=attempt,
                    started=launched,
                    deadline=None if timeout is None else launched + timeout,
                )
            if not running:
                # Nothing in flight: sleep until the next retry is due.
                if delayed:
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            # Wake on the first worker exit, the earliest deadline, or
            # the earliest retry coming due — whichever is soonest.
            wake_ats = [i.deadline for i in running.values() if i.deadline is not None]
            if delayed:
                wake_ats.append(delayed[0][0])
            wait_for = (
                max(0.0, min(wake_ats) - time.monotonic()) if wake_ats else None
            )
            done = multiprocessing.connection.wait(list(running), timeout=wait_for)
            for sentinel in done:
                _finish(running.pop(sentinel))
            if timeout is not None:
                now = time.monotonic()
                for sentinel, item in list(running.items()):
                    if item.deadline is not None and now >= item.deadline:
                        del running[sentinel]
                        _kill(item)
                        raw = (
                            item.payload[3],
                            "error",
                            f"timeout after {timeout:g}s (attempt {item.attempt})",
                            now - item.started,
                        )
                        if item.attempt <= retry.retries:
                            when = time.monotonic() + retry.delay(raw[0], item.attempt)
                            heapq.heappush(
                                delayed, (when, delayed_seq, item.payload, item.attempt + 1)
                            )
                            delayed_seq += 1
                        else:
                            absorb(raw, item.attempt)
    except KeyboardInterrupt:
        for item in running.values():
            _kill(item)
        raise


def run_campaign(
    spec: CampaignSpec,
    n_jobs: int | None = 1,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    raise_on_error: bool = True,
    timeout: float | None = None,
    retry: RetryPolicy | int | None = None,
) -> CampaignResult:
    """Execute every unit of ``spec``.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` (the default) runs serially and
        ``None`` means ``os.cpu_count()``.
    cache:
        Optional :class:`ResultCache`; hits skip execution, fresh
        results are stored back.
    progress:
        Optional ``progress(done, total, outcome)`` callback, invoked
        in the parent process as units resolve (cached units first,
        then executed units in completion order).
    raise_on_error:
        Raise :class:`CampaignError` if any unit failed (after all
        units resolved).  With ``False`` the failures are reported in
        the outcomes and it is the caller's job to check.
    timeout:
        Per-unit wall-clock budget in seconds; a unit still running
        after that is terminated and reported as failed (or retried).
        Requires worker isolation, so it forces the process-per-unit
        path even with ``n_jobs=1``.
    retry:
        A :class:`RetryPolicy` (or a plain int, shorthand for
        ``RetryPolicy(retries=n)``); failed attempts are re-queued with
        exponential backoff and deterministic jitter.

    Raises
    ------
    CampaignInterrupted
        On SIGINT, carrying the valid partial result (see the class
        docs); everything executed so far is already in the cache.
    """
    t0 = time.perf_counter()
    spans = SpanSet()
    if retry is None:
        retry = RetryPolicy()
    elif isinstance(retry, int):
        retry = RetryPolicy(retries=retry)
    hashes = spec.unit_hashes()
    # Identical units collapse onto one computation (intra-spec dedup).
    distinct: dict[str, Unit] = {}
    for unit, h in zip(spec.units, hashes):
        distinct.setdefault(h, unit)
    total = len(distinct)
    by_hash: dict[str, UnitOutcome] = {}
    done = 0

    def _resolve(outcome: UnitOutcome) -> None:
        nonlocal done
        by_hash[outcome.unit_hash] = outcome
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    def _build_result(interrupted: bool, jobs: int) -> CampaignResult:
        outcomes = []
        for unit, h in zip(spec.units, hashes):
            hit = by_hash.get(h)
            if hit is None:
                hit = UnitOutcome(
                    unit=unit, unit_hash=h, status="interrupted", attempts=0
                )
                by_hash[h] = hit
            elif hit.unit is not unit:
                hit = replace(hit, unit=unit)
            outcomes.append(hit)
        return CampaignResult(
            spec=spec,
            outcomes=outcomes,
            n_jobs=jobs,
            wall_time=time.perf_counter() - t0,
            timings=spans.as_dict(),
            interrupted=interrupted,
        )

    # Pass 1: cache hits.
    pending: list[tuple[Unit, str]] = []
    with spans.span("cache_lookup"):
        for h, unit in distinct.items():
            hit = cache.get(h) if cache is not None else None
            if hit is not None:
                _resolve(
                    UnitOutcome(
                        unit=unit, unit_hash=h, status="cached", result=hit, attempts=0
                    )
                )
            else:
                pending.append((unit, h))

    # Pass 2: execute what's missing.
    units_by_hash = {h: u for u, h in pending}
    payloads = [(u.kind, dict(u.params), u.seed, h) for u, h in pending]
    jobs = _resolve_jobs(n_jobs, len(pending))

    def _absorb(raw: tuple[str, str, Any, float], attempts: int = 1) -> None:
        h, status, value, duration = raw
        unit = units_by_hash[h]
        spans.add("unit_execute", duration)
        if status == "ok":
            if cache is not None:
                cache.put(h, value, unit=unit)
            _resolve(
                UnitOutcome(
                    unit=unit,
                    unit_hash=h,
                    status="executed",
                    result=value,
                    duration=duration,
                    attempts=attempts,
                )
            )
        else:
            _resolve(
                UnitOutcome(
                    unit=unit,
                    unit_hash=h,
                    status="failed",
                    error=value,
                    duration=duration,
                    attempts=attempts,
                )
            )

    # Timeouts and retries need a killable worker per unit, so they
    # force isolation; only an explicitly serial run (n_jobs=1, no
    # timeout, no retry) stays in-process.  Keyed off the *requested*
    # n_jobs, not the clamped count: asking for workers is asking for
    # isolation even when a single unit remains to execute.
    isolated = n_jobs != 1 or timeout is not None or retry.retries > 0
    try:
        with spans.span("execute"):
            if not isolated:
                for payload in payloads:
                    _absorb(_execute_payload(payload))
            else:
                _run_isolated(payloads, jobs, timeout, retry, _absorb)
    except KeyboardInterrupt:
        raise CampaignInterrupted(_build_result(interrupted=True, jobs=jobs)) from None

    result = _build_result(interrupted=False, jobs=jobs)
    if raise_on_error and result.n_failed:
        result.results()  # raises CampaignError with the first failure
    return result
