"""Parallel campaign execution.

:func:`run_campaign` takes a :class:`~repro.campaigns.spec.CampaignSpec`
and executes its units on a ``multiprocessing`` worker pool sized to
``os.cpu_count()`` by default (``n_jobs=1`` runs serially in-process —
no pool, easier to debug and profile).  Results are deterministic and
independent of worker count or completion order: they are re-assembled
in unit order, and every unit carries its own seed, so

    ``run_campaign(spec, n_jobs=1) == run_campaign(spec, n_jobs=8)``

for any pure unit executor.  With a :class:`ResultCache`, units whose
content hash is already on disk are served from cache without
executing; identical units within one spec execute once.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..obs.spans import SpanSet
from .cache import ResultCache
from .spec import CampaignSpec, Unit, get_unit_kind

__all__ = ["CampaignError", "CampaignResult", "UnitOutcome", "run_campaign"]

#: ``progress(done, total, outcome)`` — called after every unit resolves.
ProgressCallback = Callable[[int, int, "UnitOutcome"], None]


class CampaignError(RuntimeError):
    """Raised when one or more units fail and ``raise_on_error`` is set."""


@dataclass(frozen=True)
class UnitOutcome:
    """How one unit was resolved.

    ``status`` is ``"executed"`` (ran in this invocation), ``"cached"``
    (served from the on-disk cache) or ``"failed"`` (executor raised;
    ``error`` holds the rendered exception).
    """

    unit: Unit
    unit_hash: str
    status: str
    result: Mapping[str, Any] | None = None
    error: str | None = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("executed", "cached")


@dataclass
class CampaignResult:
    """Outcome of a whole campaign run, in unit order.

    ``timings`` holds the runner's wall-clock span totals (seconds):
    ``cache_lookup`` (cache scan), ``execute`` (dispatch + absorb of
    missing units) and ``unit_execute`` (sum of worker-side unit
    durations, cache hits excluded).  They are provenance, not data —
    the manifest records them; the deterministic ``--metrics`` snapshot
    does not.
    """

    spec: CampaignSpec
    outcomes: list[UnitOutcome] = field(default_factory=list)
    n_jobs: int = 1
    wall_time: float = 0.0
    timings: dict[str, float] = field(default_factory=dict)

    def _count(self, status: str) -> int:
        # Count distinct units: duplicates share one execution/cache hit,
        # so they must not inflate the work counters.
        return len({o.unit_hash for o in self.outcomes if o.status == status})

    @property
    def n_executed(self) -> int:
        return self._count("executed")

    @property
    def n_cached(self) -> int:
        return self._count("cached")

    @property
    def n_failed(self) -> int:
        return self._count("failed")

    @property
    def all_cached(self) -> bool:
        """Whether the run did no work at all (every unit was a hit)."""
        return bool(self.outcomes) and self.n_cached == len(
            {o.unit_hash for o in self.outcomes}
        )

    def results(self) -> list[Mapping[str, Any]]:
        """Unit results in unit order; raises if any unit failed."""
        bad = [o for o in self.outcomes if not o.ok]
        if bad:
            raise CampaignError(
                f"{len(bad)} unit(s) failed; first: "
                f"{bad[0].unit.label or bad[0].unit_hash}: {bad[0].error}"
            )
        return [o.result for o in self.outcomes]  # type: ignore[misc]

    def summary(self) -> str:
        """One-line human summary for CLI output and logs."""
        return (
            f"campaign {self.spec.name} [{self.spec.spec_hash()}]: "
            f"{len(self.outcomes)} units — {self.n_executed} executed, "
            f"{self.n_cached} cached, {self.n_failed} failed "
            f"({self.wall_time:.2f}s, {self.n_jobs} job(s))"
        )


def _execute_payload(payload: tuple[str, dict, int, str]) -> tuple[str, str, Any, float]:
    """Worker entry point: run one unit, never raise.

    Returns ``(unit_hash, status, result_or_error, duration)`` where
    status is ``"ok"`` or ``"error"``.  Module-level so it pickles
    under any multiprocessing start method.
    """
    kind, params, seed, unit_hash = payload
    t0 = time.perf_counter()
    try:
        fn = get_unit_kind(kind)
        result = fn(params, seed)
        return unit_hash, "ok", dict(result), time.perf_counter() - t0
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        err = f"{type(exc).__name__}: {exc}"
        return unit_hash, "error", err, time.perf_counter() - t0


def _resolve_jobs(n_jobs: int | None, n_pending: int) -> int:
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or None, got {n_jobs}")
    return max(1, min(n_jobs, n_pending))


def run_campaign(
    spec: CampaignSpec,
    n_jobs: int | None = 1,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    raise_on_error: bool = True,
) -> CampaignResult:
    """Execute every unit of ``spec``.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` (the default) runs serially in-process
        and ``None`` means ``os.cpu_count()``.
    cache:
        Optional :class:`ResultCache`; hits skip execution, fresh
        results are stored back.
    progress:
        Optional ``progress(done, total, outcome)`` callback, invoked
        in the parent process as units resolve (cached units first,
        then executed units in completion order).
    raise_on_error:
        Raise :class:`CampaignError` if any unit failed (after all
        units resolved).  With ``False`` the failures are reported in
        the outcomes and it is the caller's job to check.
    """
    t0 = time.perf_counter()
    spans = SpanSet()
    hashes = spec.unit_hashes()
    # Identical units collapse onto one computation (intra-spec dedup).
    distinct: dict[str, Unit] = {}
    for unit, h in zip(spec.units, hashes):
        distinct.setdefault(h, unit)
    total = len(distinct)
    by_hash: dict[str, UnitOutcome] = {}
    done = 0

    def _resolve(outcome: UnitOutcome) -> None:
        nonlocal done
        by_hash[outcome.unit_hash] = outcome
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    # Pass 1: cache hits.
    pending: list[tuple[Unit, str]] = []
    with spans.span("cache_lookup"):
        for h, unit in distinct.items():
            hit = cache.get(h) if cache is not None else None
            if hit is not None:
                _resolve(UnitOutcome(unit=unit, unit_hash=h, status="cached", result=hit))
            else:
                pending.append((unit, h))

    # Pass 2: execute what's missing.
    units_by_hash = {h: u for u, h in pending}
    payloads = [(u.kind, dict(u.params), u.seed, h) for u, h in pending]
    jobs = _resolve_jobs(n_jobs, len(pending))

    def _absorb(raw: tuple[str, str, Any, float]) -> None:
        h, status, value, duration = raw
        unit = units_by_hash[h]
        spans.add("unit_execute", duration)
        if status == "ok":
            if cache is not None:
                cache.put(h, value, unit=unit)
            _resolve(
                UnitOutcome(
                    unit=unit, unit_hash=h, status="executed", result=value, duration=duration
                )
            )
        else:
            _resolve(
                UnitOutcome(unit=unit, unit_hash=h, status="failed", error=value, duration=duration)
            )

    with spans.span("execute"):
        if jobs <= 1:
            for payload in payloads:
                _absorb(_execute_payload(payload))
        else:
            with multiprocessing.Pool(processes=jobs) as pool:
                for raw in pool.imap_unordered(_execute_payload, payloads):
                    _absorb(raw)

    outcomes = [by_hash[h] for h in hashes]
    result = CampaignResult(
        spec=spec,
        outcomes=outcomes,
        n_jobs=jobs,
        wall_time=time.perf_counter() - t0,
        timings=spans.as_dict(),
    )
    if raise_on_error and result.n_failed:
        result.results()  # raises CampaignError with the first failure
    return result
