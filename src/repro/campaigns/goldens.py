"""Golden traces: checked-in regression fixtures for scheduler output.

Each golden case pairs a deterministic workload generator with a
deterministic scheduler; the recorded trace is checked into
``src/repro/campaigns/goldens/`` and the test suite asserts that
re-running the scheduler today reproduces the checked-in file
**byte-identically** — any change to EFT's decision logic, tie-break
order, or the trace serialisation shows up as a golden diff.

Regenerate after an intentional behaviour change with::

    python -c "from repro.campaigns import goldens; goldens.write_goldens()"
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..core.dispatch import ImmediateDispatchScheduler
from ..core.eft import EFT
from ..core.task import Instance
from ..simulation.workload import WorkloadSpec, generate_workload
from .trace import Trace, dump, dumps, load, record, replay_into

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_CASES",
    "GoldenCase",
    "GoldenMismatch",
    "check_golden",
    "generate",
    "golden_path",
    "load_golden",
    "write_goldens",
]

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"


class GoldenMismatch(AssertionError):
    """Raised when a regenerated trace differs from the checked-in one."""


@dataclass(frozen=True)
class GoldenCase:
    """One golden fixture: a workload and the scheduler that ran it."""

    name: str
    description: str
    make_instance: Callable[[], Instance]
    make_scheduler: Callable[[], ImmediateDispatchScheduler]


def _instance_eft_min_m4() -> Instance:
    spec = WorkloadSpec(m=4, n=24, lam=3.0, k=2, strategy="overlapping", case="shuffled", s=1.0)
    return generate_workload(spec, rng=np.random.default_rng(7))


def _instance_eft_min_m6_disjoint() -> Instance:
    spec = WorkloadSpec(m=6, n=36, lam=4.0, k=2, strategy="disjoint", case="shuffled", s=1.0)
    return generate_workload(spec, rng=np.random.default_rng(17))


def _instance_eft_rand_m5() -> Instance:
    spec = WorkloadSpec(m=5, n=30, lam=4.0, k=2, strategy="disjoint", case="worst", s=1.0)
    return generate_workload(spec, rng=np.random.default_rng(11))


GOLDEN_CASES: dict[str, GoldenCase] = {
    "eft-min-m4": GoldenCase(
        name="eft-min-m4",
        description="EFT-Min on 24 overlapping-replicated tasks, m=4, k=2 (seed 7)",
        make_instance=_instance_eft_min_m4,
        make_scheduler=lambda: EFT(4, tiebreak="min"),
    ),
    # Disjoint replication admits an exact multi-shard cut (Theorem 6),
    # so this case doubles as the sharded-tier byte-identity oracle
    # (repro.serve.shard.shadow checks it on a 3-shard plan).
    "eft-min-m6-disjoint": GoldenCase(
        name="eft-min-m6-disjoint",
        description="EFT-Min on 36 disjoint-replicated tasks, m=6, k=2 (seed 17)",
        make_instance=_instance_eft_min_m6_disjoint,
        make_scheduler=lambda: EFT(6, tiebreak="min"),
    ),
    "eft-rand-m5": GoldenCase(
        name="eft-rand-m5",
        description="EFT-Rand (seed 123) on 30 disjoint-replicated tasks, m=5, k=2 (seed 11)",
        make_instance=_instance_eft_rand_m5,
        make_scheduler=lambda: EFT(5, tiebreak="rand", rng=123),
    ),
}


def golden_path(name: str) -> Path:
    """On-disk location of the golden trace ``name``."""
    if name not in GOLDEN_CASES:
        raise KeyError(f"unknown golden case {name!r}; known: {sorted(GOLDEN_CASES)}")
    return GOLDEN_DIR / f"{name}.trace.jsonl"


def generate(name: str, backend: str = "analytic") -> Trace:
    """Regenerate the golden trace ``name`` from scratch.

    ``backend="analytic"`` (the default, and what the checked-in files
    were recorded with) replays through the scheduler's own driver;
    any :data:`repro.simulation.BACKENDS` name replays through
    ``Simulator(backend=...)`` instead.  Every route must serialise
    byte-identically — the array-engine regression oracle
    (``tests/simulation/test_vec_backend.py``, ``repro vec-check``).
    """
    case = GOLDEN_CASES[name]
    instance = case.make_instance()
    scheduler = case.make_scheduler()
    if backend == "analytic":
        schedule = scheduler.run(instance)
    else:
        from ..simulation.engine import Simulator

        sim = Simulator(scheduler, backend=backend)
        sim.add_instance(instance)
        schedule = sim.run().schedule
    return record(schedule, scheduler=scheduler.name, meta={"golden": name, "description": case.description})


def load_golden(name: str) -> Trace:
    """Load the checked-in golden trace ``name``."""
    return load(golden_path(name))


def check_golden(name: str, backend: str = "analytic") -> Trace:
    """Assert the checked-in golden still reproduces byte-identically.

    Regenerates the trace (optionally through a ``Simulator`` backend
    — see :func:`generate`), compares its serialisation to the
    checked-in file, and additionally replays the stored workload
    through a fresh scheduler, asserting identical placements.
    Returns the checked-in trace on success; raises
    :class:`GoldenMismatch` otherwise.
    """
    path = golden_path(name)
    if not path.is_file():
        raise GoldenMismatch(f"golden {name!r} missing on disk: {path}")
    stored_text = path.read_text()
    fresh_text = dumps(generate(name, backend=backend))
    if fresh_text != stored_text:
        raise GoldenMismatch(
            f"golden {name!r} drifted: {backend} regeneration is not "
            f"byte-identical to {path}"
        )
    stored = load(path)
    replayed = replay_into(GOLDEN_CASES[name].make_scheduler(), stored)
    if not stored.schedule().same_placements(replayed):
        raise GoldenMismatch(f"golden {name!r}: replay does not reproduce recorded placements")
    return stored


def write_goldens(names: list[str] | None = None) -> list[Path]:
    """(Re)write golden trace files; returns the written paths.

    Only for intentional regeneration — goldens are fixtures, not
    build artifacts.
    """
    paths = []
    for name in names or sorted(GOLDEN_CASES):
        paths.append(dump(generate(name), golden_path(name)))
    return paths
