"""Campaign execution substrate: parallel runs, caching, traces.

The experiment layer (``repro.experiments``) describes Monte-Carlo
campaigns as grids of independent, seeded units; this package executes
them:

* :mod:`~repro.campaigns.spec` — declarative :class:`CampaignSpec` /
  :class:`Unit` with stable content hashes;
* :mod:`~repro.campaigns.runner` — crash-isolated multiprocessing
  executor (:func:`run_campaign`) with a serial ``n_jobs=1`` fallback,
  per-unit timeouts, bounded retry (:class:`RetryPolicy`), interruption
  with a resumable partial result (:class:`CampaignInterrupted`) and
  deterministic, order-independent results;
* :mod:`~repro.campaigns.cache` — on-disk :class:`ResultCache` under
  ``results/.cache/`` keyed by unit hash (reruns only execute
  missing/changed units);
* :mod:`~repro.campaigns.trace` — versioned JSONL workload traces with
  :func:`record` / :func:`load` / :func:`replay_into`;
* :mod:`~repro.campaigns.manifest` — run provenance
  (:class:`RunManifest`) written next to the results;
* :mod:`~repro.campaigns.goldens` — checked-in golden traces guarding
  scheduler behaviour byte-for-byte.
"""

from .cache import DEFAULT_CACHE_ROOT, ResultCache
from .manifest import RunManifest, build_manifest, git_describe, load_manifest, write_manifest
from .runner import (
    CampaignError,
    CampaignInterrupted,
    CampaignResult,
    RetryPolicy,
    UnitOutcome,
    run_campaign,
)
from .spec import (
    CampaignSpec,
    Unit,
    canonical_json,
    get_unit_kind,
    register_unit_kind,
    stable_seed,
)
from .trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    Trace,
    TraceRecord,
    make_scheduler,
    record,
    replay_into,
)
from .trace import dump as dump_trace
from .trace import dumps as dumps_trace
from .trace import load as load_trace
from .trace import loads as loads_trace

__all__ = [
    "CampaignError",
    "CampaignInterrupted",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_CACHE_ROOT",
    "ResultCache",
    "RetryPolicy",
    "RunManifest",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "TraceRecord",
    "Unit",
    "UnitOutcome",
    "build_manifest",
    "canonical_json",
    "dump_trace",
    "dumps_trace",
    "get_unit_kind",
    "git_describe",
    "load_manifest",
    "load_trace",
    "loads_trace",
    "make_scheduler",
    "record",
    "register_unit_kind",
    "replay_into",
    "run_campaign",
    "stable_seed",
    "write_manifest",
]
