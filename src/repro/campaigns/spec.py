"""Declarative campaign specifications.

A *campaign* is a grid of independent work units — one unit per
(scheduler, workload parameters, seed) combination — that can be
executed in any order, on any number of workers, and cached on disk.
Section 7's Monte-Carlo experiments (Figures 10–11) are campaigns:
every cell of the ``(s, k)`` sweep and every ``(case, strategy,
heuristic, load)`` measurement is a unit.

Every :class:`Unit` has a *stable content hash*: the SHA-256 of the
canonical JSON encoding of its ``(kind, params, seed)`` triple.  Two
units with the same hash compute the same result, which is what makes
the on-disk cache of :mod:`repro.campaigns.cache` sound.

Unit *kinds* name the function that executes the unit.  A kind is
either a registered alias (see :func:`register_unit_kind`) or an
importable ``"package.module:function"`` path; the latter needs no
registration and therefore works in any worker process.  Executors
have the signature ``fn(params: dict, seed: int) -> dict`` and must be
pure: same inputs, same (JSON-serialisable) output.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "CampaignSpec",
    "Unit",
    "UnitExecutor",
    "canonical_json",
    "get_unit_kind",
    "register_unit_kind",
    "stable_seed",
]

UnitExecutor = Callable[[Mapping[str, Any], int], Mapping[str, Any]]

#: Registered short aliases for unit executors.
_KIND_REGISTRY: dict[str, UnitExecutor] = {}


def register_unit_kind(name: str, fn: UnitExecutor | None = None):
    """Register ``fn`` as the executor of unit kind ``name``.

    Usable directly or as a decorator.  Aliases only resolve in
    processes that imported the registering module (fork workers
    inherit them); prefer ``"module:function"`` kinds for units that
    must survive any worker start method.
    """

    def _register(f: UnitExecutor) -> UnitExecutor:
        _KIND_REGISTRY[name] = f
        return f

    return _register(fn) if fn is not None else _register


def get_unit_kind(kind: str) -> UnitExecutor:
    """Resolve a unit kind to its executor.

    Registered aliases win; otherwise ``kind`` must be an importable
    ``"package.module:function"`` path.
    """
    if kind in _KIND_REGISTRY:
        return _KIND_REGISTRY[kind]
    if ":" in kind:
        module_name, _, attr = kind.partition(":")
        module = importlib.import_module(module_name)
        fn = getattr(module, attr, None)
        if fn is None:
            raise ValueError(f"unit kind {kind!r}: {module_name} has no attribute {attr!r}")
        if not callable(fn):
            raise ValueError(f"unit kind {kind!r} does not resolve to a callable")
        return fn
    raise ValueError(
        f"unknown unit kind {kind!r} (not registered and not a 'module:function' path)"
    )


def _jsonable(obj: Any) -> Any:
    """Convert ``obj`` to plain JSON types with a deterministic layout."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, Mapping):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (frozenset, set)):
        return sorted(_jsonable(v) for v in obj)
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    # numpy scalars / arrays without importing numpy eagerly
    if hasattr(obj, "tolist"):
        return _jsonable(obj.tolist())
    if hasattr(obj, "item"):
        return _jsonable(obj.item())
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for hashing: {obj!r}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, compact separators,
    numpy scalars and arrays converted to plain Python types.  Equal
    inputs encode to equal bytes across processes and platforms."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def stable_seed(*parts: Any) -> int:
    """A process-independent 63-bit seed derived from ``parts``
    (hash-based; unlike :func:`hash` it is stable across runs)."""
    digest = hashlib.sha256(canonical_json(list(parts)).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Unit:
    """One independent work unit of a campaign.

    Parameters
    ----------
    kind:
        Executor name (registered alias or ``"module:function"``).
    params:
        JSON-serialisable keyword parameters of the executor.  Treat
        as immutable once the unit is built.
    seed:
        Base RNG seed for this unit; the executor derives all its
        randomness from it so results are reproducible.
    label:
        Human-readable tag for progress output (not part of the hash).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    label: str = ""

    def content_hash(self) -> str:
        """Stable identity of the unit's computation (first 16 hex
        chars of the SHA-256 of the canonical encoding)."""
        payload = canonical_json({"kind": self.kind, "params": self.params, "seed": self.seed})
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def execute(self) -> Mapping[str, Any]:
        """Run the unit in-process (the serial path of the runner)."""
        return get_unit_kind(self.kind)(dict(self.params), self.seed)


@dataclass(frozen=True)
class CampaignSpec:
    """A named collection of units plus free-form metadata.

    Units are independent: the runner may execute them in any order
    and on any worker.  ``meta`` documents how the campaign was built
    (experiment name, scale parameters) and feeds the run manifest.
    """

    name: str
    units: tuple[Unit, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.units, tuple):
            object.__setattr__(self, "units", tuple(self.units))

    @property
    def n_units(self) -> int:
        return len(self.units)

    def unit_hashes(self) -> list[str]:
        """Content hash of every unit, in unit order."""
        return [u.content_hash() for u in self.units]

    def spec_hash(self) -> str:
        """Stable identity of the whole campaign (name + unit hashes +
        meta); recorded in the run manifest."""
        payload = canonical_json(
            {"name": self.name, "units": self.unit_hashes(), "meta": self.meta}
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @staticmethod
    def build(name: str, units: Iterable[Unit], **meta: Any) -> "CampaignSpec":
        """Convenience constructor with keyword metadata."""
        return CampaignSpec(name=name, units=tuple(units), meta=meta)
