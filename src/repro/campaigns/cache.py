"""On-disk result cache keyed by unit content hash.

Layout (under ``results/.cache/`` by default)::

    results/.cache/<h[:2]>/<hash>.json

Each entry is a small JSON document ``{"format": "repro-unit-cache",
"version": 1, "unit_hash": ..., "kind": ..., "label": ...,
"result": {...}}``.  Because the key is the :meth:`Unit.content_hash`
— a digest of the unit's kind, parameters and seed — a hit is only
possible for an identical computation, so re-running a campaign after
editing its parameters executes exactly the changed units.

Writes are atomic and durable (temp file + ``fsync`` + ``os.replace``)
so a crashed or killed worker — or a machine crash right after the
rename — never leaves a truncated entry behind; corrupted or
foreign-format entries are treated as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from .spec import Unit

__all__ = ["CACHE_FORMAT", "CACHE_VERSION", "DEFAULT_CACHE_ROOT", "ResultCache"]

CACHE_FORMAT = "repro-unit-cache"
CACHE_VERSION = 1

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_ROOT = Path("results") / ".cache"


class ResultCache:
    """A content-addressed store of unit results.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_ROOT) -> None:
        self.root = Path(root)

    def path_for(self, unit_hash: str) -> Path:
        """On-disk location of the entry for ``unit_hash``."""
        return self.root / unit_hash[:2] / f"{unit_hash}.json"

    def get(self, unit_hash: str) -> dict[str, Any] | None:
        """Return the cached result for ``unit_hash``, or ``None`` on a
        miss (including unreadable/corrupted/foreign entries)."""
        path = self.path_for(unit_hash)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("format") != CACHE_FORMAT
            or data.get("unit_hash") != unit_hash
            or "result" not in data
        ):
            return None
        return data["result"]

    def put(
        self, unit_hash: str, result: Mapping[str, Any], unit: Unit | None = None
    ) -> Path:
        """Store ``result`` for ``unit_hash`` atomically; returns the
        entry path."""
        path = self.path_for(unit_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "unit_hash": unit_hash,
            "kind": None if unit is None else unit.kind,
            "label": None if unit is None else unit.label,
            "result": dict(result),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
                # Durability, not just atomicity: without the fsync a
                # machine crash can promote an empty/truncated temp file
                # into place (os.replace orders metadata, not data).
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, unit_hash: str) -> bool:
        return self.get(unit_hash) is not None

    def entries(self) -> Iterator[Path]:
        """Paths of every entry currently on disk."""
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"
