"""Tests for the Theorem 10 staggered adversary (EFT, any tie-break)."""

import pytest

from repro.adversaries import AnyTiebreakAdversary, EFTIntervalAdversary
from repro.core import EFT, FunctionTieBreak


class TestConstruction:
    def test_small_volume(self):
        adv = AnyTiebreakAdversary(5, 2, steps=50)
        result = adv.run(lambda m: EFT(m, tiebreak="max"))
        # opt_fmax = 1 + total small volume, kept tiny by construction
        assert result.opt_fmax < 1.02

    def test_all_sets_size_k(self):
        adv = AnyTiebreakAdversary(5, 2, steps=5)
        result = adv.run(lambda m: EFT(m, tiebreak="max"))
        assert all(len(t.machines) == 2 for t in result.instance)

    def test_schedule_feasible(self):
        adv = AnyTiebreakAdversary(5, 2, steps=20)
        result = adv.run(lambda m: EFT(m, tiebreak="min"))
        result.schedule.validate()

    def test_delta_constraint(self):
        with pytest.raises(ValueError, match="delta"):
            AnyTiebreakAdversary(5, 2, steps=5, delta=0.5)

    def test_k_bounds(self):
        with pytest.raises(ValueError, match="1 < k < m"):
            AnyTiebreakAdversary(5, 5)


class TestTheorem10:
    @pytest.mark.parametrize("tiebreak", ["min", "max", "least_loaded"])
    def test_forces_all_tiebreaks(self, tiebreak):
        """Theorem 10: with the stagger, EFT reaches m - k + 1 whatever
        the tie-break (the plain instance only traps Min)."""
        m, k = 5, 2
        adv = AnyTiebreakAdversary(m, k, steps=m**3)
        result = adv.run(lambda mm: EFT(mm, tiebreak=tiebreak))
        assert adv.regular_max_flow(result) >= m - k + 1 - 1e-6

    def test_forces_adversarial_custom_tiebreak(self):
        """Even a tie-break crafted to dodge EFT-Min's trap (pick the
        largest index) cannot escape: ties never happen."""
        m, k = 5, 3
        adv = AnyTiebreakAdversary(m, k, steps=m**3)
        policy = FunctionTieBreak(lambda cands, comps: max(cands), name="evader")
        result = adv.run(lambda mm: EFT(mm, tiebreak=policy))
        assert adv.regular_max_flow(result) >= m - k + 1 - 1e-6

    def test_plain_instance_does_not_force_max(self):
        """Contrast: EFT-Max escapes the un-staggered instance."""
        m, k = 5, 2
        plain = EFTIntervalAdversary(m, k, steps=m**3).run(lambda mm: EFT(mm, tiebreak="max"))
        assert plain.fmax < m - k + 1

    def test_ratio_close_to_bound(self):
        m, k = 6, 3
        adv = AnyTiebreakAdversary(m, k, steps=m**3)
        result = adv.run(lambda mm: EFT(mm, tiebreak="max"))
        ratio = adv.regular_max_flow(result) / result.opt_fmax
        assert ratio > (m - k + 1) * 0.98
