"""Every adversary must produce the processing-set structure its
theorem assumes — otherwise the lower bound would be vacuous."""

import pytest

from repro.adversaries import (
    AnyTiebreakAdversary,
    EFTIntervalAdversary,
    FixedKAdversary,
    InclusiveAdversary,
    IntervalTwoAdversary,
    NestedAdversary,
    eftmin_adversary_instance,
)
from repro.core import EFT
from repro.psets import classify_family, is_interval_family, specializes


def family_of(instance):
    return [t.eligible(instance.m) for t in instance]


def eft_min(m):
    return EFT(m, tiebreak="min")


class TestStructures:
    def test_theorem3_family_inclusive(self):
        result = InclusiveAdversary(8, p=100).run(eft_min)
        assert classify_family(family_of(result.instance), result.instance.m) == "inclusive"

    def test_theorem4_family_fixed_size(self):
        adv = FixedKAdversary(9, 3, p=100)
        result = adv.run(eft_min)
        assert all(len(s) == 3 for s in family_of(result.instance))

    def test_theorem5_family_nested(self):
        result = NestedAdversary(8).run(eft_min)
        structure = classify_family(family_of(result.instance), result.instance.m)
        # nested by construction (may degenerate to a subtype on tiny runs)
        assert specializes(structure, "nested")

    def test_theorem7_family_fixed_intervals(self):
        result = IntervalTwoAdversary(p=10).run(eft_min)
        fam = family_of(result.instance)
        assert all(len(s) == 2 for s in fam)
        assert is_interval_family(fam, result.instance.m)

    def test_theorem8_family_fixed_intervals(self):
        inst = eftmin_adversary_instance(7, 3, steps=2)
        fam = family_of(inst)
        assert all(len(s) == 3 for s in fam)
        assert is_interval_family(fam, 7, allow_ring=False)
        structure = classify_family(fam, 7)
        assert specializes(structure, "interval")

    def test_theorem10_family_fixed_intervals(self):
        adv = AnyTiebreakAdversary(5, 2, steps=6)
        result = adv.run(lambda m: EFT(m, tiebreak="max"))
        fam = family_of(result.instance)
        assert all(len(s) == 2 for s in fam)
        assert is_interval_family(fam, 5, allow_ring=False)

    @pytest.mark.parametrize("m,k", [(5, 2), (6, 3), (8, 4)])
    def test_theorem8_serialization_roundtrip(self, m, k):
        """Adversary instances survive the JSON round-trip (so they can
        be archived as reproduction artifacts)."""
        from repro.core import Instance

        inst = eftmin_adversary_instance(m, k, steps=3)
        back = Instance.from_json(inst.to_json())
        assert back.n == inst.n
        result_a = EFTIntervalAdversary(m, k, steps=3).run(eft_min)
        sched_b = EFT(m, tiebreak="min").run(back)
        # same instance -> same EFT behaviour
        direct = EFT(m, tiebreak="min").run(inst)
        assert sched_b.same_placements(direct)
