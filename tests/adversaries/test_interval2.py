"""Tests for the Theorem 7 adversary (any online, ratio 2)."""

import pytest

from repro.adversaries import IntervalTwoAdversary
from repro.core import EFT, RandomAssign


class TestIntervalTwo:
    def test_three_tasks_emitted(self):
        result = IntervalTwoAdversary(p=50).run(lambda m: EFT(m, tiebreak="min"))
        assert result.instance.n == 3

    def test_sets_size_two(self):
        result = IntervalTwoAdversary(p=50).run(lambda m: EFT(m, tiebreak="min"))
        assert all(len(t.machines) == 2 for t in result.instance)

    @pytest.mark.parametrize("tiebreak", ["min", "max"])
    def test_ratio_approaches_two(self, tiebreak):
        adv = IntervalTwoAdversary(p=10_000)
        result = adv.run(lambda m: EFT(m, tiebreak=tiebreak))
        assert result.ratio > 2 - 1e-3
        assert result.ratio <= 2.0

    def test_adapts_to_first_placement(self):
        """The follow-up pair targets whichever side the algorithm
        chose for T1."""
        res_min = IntervalTwoAdversary(p=10).run(lambda m: EFT(m, tiebreak="min"))
        res_max = IntervalTwoAdversary(p=10).run(lambda m: EFT(m, tiebreak="max"))
        sets_min = {t.machines for t in res_min.instance}
        sets_max = {t.machines for t in res_max.instance}
        assert frozenset({1, 2}) in sets_min  # T1 went to M2
        assert frozenset({3, 4}) in sets_max  # T1 went to M3

    def test_binds_random_dispatch(self):
        adv = IntervalTwoAdversary(p=1000)
        result = adv.run(lambda m: RandomAssign(m, rng=0))
        # random dispatch can be even worse than EFT, never better than
        # the construction's floor
        assert result.ratio > 2 - 1e-2

    def test_small_p_rejected(self):
        with pytest.raises(ValueError):
            IntervalTwoAdversary(p=0.5)
