"""Tests for the Theorem 8/9 adversary and EFT's collapse on it."""

import numpy as np
import pytest

from repro.adversaries import (
    EFTIntervalAdversary,
    eftmin_adversary_instance,
    optimal_adversary_schedule,
    run_with_profiles,
    task_type,
    type_interval,
)
from repro.core import EFT
from repro.theory import is_nonincreasing, stable_profile


class TestInstanceStructure:
    def test_types_match_paper(self):
        """For m=6, k=3 the batch types are 4,3,2 then 1,1,1 (Figure 3)."""
        m, k = 6, 3
        assert [task_type(i, m, k) for i in range(1, m + 1)] == [4, 3, 2, 1, 1, 1]

    def test_type_interval(self):
        assert type_interval(4, 6, 3) == {4, 5, 6}
        assert type_interval(1, 6, 3) == {1, 2, 3}

    def test_invalid_type(self):
        with pytest.raises(ValueError):
            type_interval(5, 6, 3)  # would exceed m

    def test_instance_size(self):
        inst = eftmin_adversary_instance(6, 3, steps=4)
        assert inst.n == 24
        assert inst.all_unit

    def test_all_sets_size_k(self):
        inst = eftmin_adversary_instance(7, 4, steps=2)
        assert all(len(t.machines) == 4 for t in inst)

    def test_sets_are_linear_intervals(self):
        from repro.psets import is_contiguous

        inst = eftmin_adversary_instance(8, 3, steps=2)
        assert all(is_contiguous(t.machines) for t in inst)

    def test_k_bounds_enforced(self):
        with pytest.raises(ValueError, match="1 < k < m"):
            eftmin_adversary_instance(6, 1, 2)
        with pytest.raises(ValueError, match="1 < k < m"):
            eftmin_adversary_instance(6, 6, 2)


class TestOptimalSchedule:
    @pytest.mark.parametrize("m,k", [(4, 2), (6, 3), (8, 5)])
    def test_opt_flow_is_one(self, m, k):
        sched = optimal_adversary_schedule(m, k, steps=6)
        sched.validate()
        assert sched.max_flow == 1.0

    def test_one_task_per_machine_per_step(self):
        sched = optimal_adversary_schedule(6, 3, steps=3)
        loads = sched.machine_loads()
        assert np.allclose(loads, 3.0)


class TestEFTMinCollapse:
    @pytest.mark.parametrize("m,k", [(4, 2), (5, 3), (6, 3), (7, 2)])
    def test_reaches_m_minus_k_plus_1(self, m, k):
        """Theorem 8: EFT-Min's Fmax reaches exactly m - k + 1."""
        result = EFTIntervalAdversary(m, k).run(lambda mm: EFT(mm, tiebreak="min"))
        assert result.fmax == m - k + 1
        assert result.ratio == m - k + 1

    def test_profile_converges_to_stable(self):
        m, k = 6, 3
        _, profiles = run_with_profiles(m, k, 40, EFT(m, tiebreak="min"))
        wtau = stable_profile(m, k)
        assert np.allclose(profiles[-1], wtau)
        # once reached, the profile stays
        reached = [t for t in range(40) if np.allclose(profiles[t], wtau)]
        assert reached
        assert np.allclose(profiles[reached[0] :], wtau)

    def test_lemma2_profiles_nonincreasing(self):
        """Lemma 2: w_t(j+1) <= w_t(j) at every step under EFT-Min."""
        _, profiles = run_with_profiles(7, 3, 60, EFT(7, tiebreak="min"))
        for t in range(profiles.shape[0]):
            assert is_nonincreasing(profiles[t])

    def test_lemma4_profiles_behind_stable(self):
        """Lemma 4(ii): before convergence the profile never exceeds
        w_tau (no machine accumulates more than m-k waiting work)."""
        m, k = 6, 3
        _, profiles = run_with_profiles(m, k, 50, EFT(m, tiebreak="min"))
        wtau = stable_profile(m, k)
        assert np.all(profiles <= wtau + 1e-9)

    def test_schedule_remains_feasible(self):
        result = EFTIntervalAdversary(5, 2, steps=30).run(lambda mm: EFT(mm, tiebreak="min"))
        result.schedule.validate()


class TestEFTRand:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_theorem9_reaches_bound_with_high_probability(self, seed):
        """Theorem 9 (almost surely in the limit): with a long enough
        horizon, EFT-Rand's Fmax reaches m - k + 1."""
        m, k = 5, 2
        result = EFTIntervalAdversary(m, k, steps=6 * m**3).run(
            lambda mm: EFT(mm, tiebreak="rand", rng=seed)
        )
        assert result.fmax >= m - k + 1

    def test_eft_max_escapes_plain_instance(self):
        """EFT-Max stays at Fmax = 1 on the *plain* instance — the
        reason Theorem 10 needs the staggered construction."""
        result = EFTIntervalAdversary(6, 3, steps=100).run(lambda mm: EFT(mm, tiebreak="max"))
        assert result.fmax == 1.0
